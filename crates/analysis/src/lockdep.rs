//! Lock-order deadlock detection (lockdep).
//!
//! Every lock in the workspace is constructed through the tracked shims
//! in this module ([`TrackedMutex`] / [`TrackedRwLock`], thin wrappers
//! over the vendored `parking_lot`), each tagged with a static **lock
//! class** — one class per logical lock role (`store.txs`,
//! `engine.lane-state`, ...), declared at the construction site with
//! [`lock_class!`](crate::lock_class).  Instances of the same role share a class; the
//! dozens of per-shard `store.txs` mutexes are one node in the analysis.
//!
//! At every *blocking* acquisition the calling thread records, for each
//! lock it already holds, an arc `held-class → acquired-class` into a
//! global **lock-order graph**, together with a witness (the full held
//! chain and the acquisition site, via `#[track_caller]`).  A cycle in
//! that graph is a potential deadlock: two threads can interleave the
//! witnessed chains and block on each other forever, even if no test run
//! ever produced the fatal interleaving.  [`check_prefixes`] re-uses
//! `mvcc-graph`'s cycle machinery to search the graph and renders both
//! offending acquisition chains on failure — the same move the offline
//! classifiers make for histories (don't trust the sampled run, check
//! the recorded relation), applied to the locking hierarchy itself.
//!
//! Deliberate exceptions are *declared*, never silently ignored:
//!
//! * [`allow_same_class`] sanctions ordered same-class re-acquisition
//!   (e.g. per-shard store locks taken in shard-index order), which
//!   would otherwise be a self-arc and thus a cycle;
//! * [`declare_order`] documents a sanctioned nesting with a reason; the
//!   declared arcs are excluded from the cycle search but listed in
//!   every [`LockOrderReport`], so an intentional inversion stays
//!   visible in the analysis output instead of vanishing.
//!
//! `try_lock` acquisitions record no ordering arc — a try-lock cannot
//! block, so it can never be the waiting edge of a deadlock — but a
//! try-acquired lock still joins the held chain, because *later*
//! blocking acquisitions under it are real ordering commitments.
//!
//! Cost: one thread-local push/pop per acquisition plus, for each held
//! lock, one probe of a thread-local seen-edge set; the global registry
//! mutex is touched only the first time a thread observes a given arc
//! (the standard lockdep trick), so steady-state tracking stays off any
//! shared cache line.

use mvcc_graph::{cycle, DiGraph, NodeId};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
// The registry guarding the lock-order graph cannot itself be a tracked
// lock (it would recurse into its own bookkeeping); it is the one
// sanctioned raw lock in the workspace, and it is never acquired while
// any tracked lock's *registry path* is active.
// lint: allow(raw-lock)
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

/// A static lock class: one per logical lock role.  Create with
/// [`lock_class!`](crate::lock_class); identity is the class *name* (two statics with the
/// same name are the same class).
#[derive(Debug)]
pub struct LockClass {
    name: &'static str,
    /// Cached registry id + 1 (0 = not yet registered).
    slot: AtomicU32,
}

impl LockClass {
    /// Creates an unregistered class (use through [`lock_class!`](crate::lock_class)).
    pub const fn new(name: &'static str) -> Self {
        LockClass {
            name,
            slot: AtomicU32::new(0),
        }
    }

    /// The class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The dense registry id, registering on first use.
    fn id(&self) -> u32 {
        let cached = self.slot.load(Ordering::Relaxed);
        if cached != 0 {
            return cached - 1;
        }
        let id = registry().class_id(self.name);
        self.slot.store(id + 1, Ordering::Relaxed);
        id
    }
}

/// Declares a static [`LockClass`] in place and evaluates to a
/// `&'static LockClass` — the `lock_class!("store.txs")` idiom tags an
/// acquisition role at its construction site.
#[macro_export]
macro_rules! lock_class {
    ($name:expr) => {{
        static CLASS: $crate::lockdep::LockClass = $crate::lockdep::LockClass::new($name);
        &CLASS
    }};
}

/// One recorded arc of the lock-order graph, with its first witness.
#[derive(Debug, Clone)]
struct Edge {
    /// The held chain (outermost first) at the moment the target class
    /// was acquired, rendered as `class @ file:line`.
    holder_chain: Vec<String>,
    /// Where the target class was being acquired.
    acquire_site: String,
}

#[derive(Default)]
struct Inner {
    ids: BTreeMap<&'static str, u32>,
    names: Vec<&'static str>,
    edges: BTreeMap<(u32, u32), Edge>,
    /// Classes sanctioned for ordered same-class re-acquisition.
    self_nesting: BTreeMap<u32, &'static str>,
    /// Sanctioned `outer → inner` orders, with the documented reason.
    declared: BTreeMap<(u32, u32), &'static str>,
}

struct Registry {
    inner: StdMutex<Inner>,
}

impl Registry {
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn class_id(&self, name: &'static str) -> u32 {
        let mut inner = self.locked();
        if let Some(&id) = inner.ids.get(name) {
            return id;
        }
        let id = inner.names.len() as u32;
        inner.names.push(name);
        inner.ids.insert(name, id);
        id
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: StdMutex::new(Inner::default()), // lint: allow(raw-lock)
    })
}

/// One lock currently held by the calling thread.
struct Held {
    class: u32,
    name: &'static str,
    site: &'static Location<'static>,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Arcs this thread has already pushed to the registry — the
    /// fast-path filter that keeps the global mutex off the hot path.
    static SEEN: RefCell<HashSet<(u32, u32)>> = RefCell::new(HashSet::new());
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn next_instance() -> u64 {
    NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
}

/// Records an acquisition: order arcs against every held lock (blocking
/// acquisitions only), then joins the held chain.  Returns the token the
/// matching release must present.
fn on_acquire(
    class: &'static LockClass,
    instance: u64,
    site: &'static Location<'static>,
    blocking: bool,
) -> u64 {
    let class_id = class.id();
    let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if blocking && !held.is_empty() {
            SEEN.with(|seen| {
                let mut seen = seen.borrow_mut();
                for h in held.iter() {
                    if seen.insert((h.class, class_id)) {
                        record_edge(&held, h.class, class_id, site);
                    }
                }
            });
        }
        held.push(Held {
            class: class_id,
            name: class.name,
            site,
            token,
        });
    });
    crate::hb::lock_acquired(class.name, instance);
    token
}

/// Records the arc `from → to` with a witness built from the current
/// held chain.  A same-class arc is skipped when the class is sanctioned
/// via [`allow_same_class`]; a declared order is recorded but excluded
/// from the cycle search (see [`check_prefixes`]).
fn record_edge(held: &[Held], from: u32, to: u32, site: &'static Location<'static>) {
    let mut inner = registry().locked();
    if from == to && inner.self_nesting.contains_key(&from) {
        return;
    }
    let witness = Edge {
        holder_chain: held
            .iter()
            .map(|h| format!("{} @ {}:{}", h.name, h.site.file(), h.site.line()))
            .collect(),
        acquire_site: format!("{}:{}", site.file(), site.line()),
    };
    inner.edges.entry((from, to)).or_insert(witness);
}

/// Removes the held-chain entry for `token` (out-of-order guard drops
/// are legal, so removal is by token, not stack discipline).
fn on_release(token: u64, class_name: &'static str, instance: u64) {
    crate::hb::lock_released(class_name, instance);
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.token == token) {
            held.remove(pos);
        }
    });
}

/// Sanctions ordered same-class re-acquisition for `class` (e.g.
/// per-shard stores locked in shard-index order).  Without this, holding
/// one instance of a class while blocking on another records a self-arc
/// — reported as a deadlock cycle, which for *ordered* acquisition would
/// be a false positive.
pub fn allow_same_class(class: &'static str, reason: &'static str) {
    let id = registry().class_id(class);
    registry().locked().self_nesting.insert(id, reason);
}

/// Declares a sanctioned `outer → inner` nesting with its reason.  The
/// declared arc is excluded from the cycle search but listed in every
/// [`LockOrderReport`]: the checker *documents* the intentional order
/// instead of silently ignoring it.
pub fn declare_order(outer: &'static str, inner: &'static str, reason: &'static str) {
    let from = registry().class_id(outer);
    let to = registry().class_id(inner);
    registry().locked().declared.insert((from, to), reason);
}

/// A clean bill of health from [`check_prefixes`]: what the analysis
/// covered, rendered deterministically (sorted by class id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderReport {
    /// Class names in the checked subgraph, in registration order.
    pub classes: Vec<String>,
    /// Observed (undeclared) arcs `outer → inner`, as rendered strings.
    pub arcs: Vec<String>,
    /// Declared nestings `outer → inner: reason` (documented, excluded
    /// from the cycle search).
    pub documented: Vec<String>,
}

impl fmt::Display for LockOrderReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lock-order graph: {} classes, {} arcs, acyclic",
            self.classes.len(),
            self.arcs.len()
        )?;
        for arc in &self.arcs {
            writeln!(f, "  {arc}")?;
        }
        for doc in &self.documented {
            writeln!(f, "  [declared] {doc}")?;
        }
        Ok(())
    }
}

/// Checks the lock-order graph restricted to classes whose name starts
/// with any of `prefixes` (empty slice = the whole graph).  Returns the
/// acyclic report, or — on a potential deadlock — an error rendering the
/// cycle with both (or all) offending acquisition chains.
///
/// The restriction is what lets deliberately cyclic *test* scenarios
/// (class names prefixed `test.`) coexist in one process with the
/// engine-hierarchy check: each caller scopes the search to the
/// namespaces it owns.  Output is deterministic across runs: classes and
/// arcs are kept in `BTreeMap`s and rendered in id order.
pub fn check_prefixes(prefixes: &[&str]) -> Result<LockOrderReport, String> {
    let inner = registry().locked();
    let included: Vec<u32> = (0..inner.names.len() as u32)
        .filter(|&id| {
            let name = inner.names[id as usize];
            prefixes.is_empty() || prefixes.iter().any(|p| name.starts_with(p))
        })
        .collect();
    let mut graph = DiGraph::new();
    let mut node_of: BTreeMap<u32, NodeId> = BTreeMap::new();
    for &id in &included {
        node_of.insert(id, graph.add_node(inner.names[id as usize]));
    }
    let mut arcs = Vec::new();
    for (&(from, to), edge) in &inner.edges {
        let (Some(&a), Some(&b)) = (node_of.get(&from), node_of.get(&to)) else {
            continue;
        };
        if inner.declared.contains_key(&(from, to)) {
            continue;
        }
        graph.add_arc(a, b);
        arcs.push(format!(
            "{} -> {} (acquired at {})",
            inner.names[from as usize], inner.names[to as usize], edge.acquire_site
        ));
    }
    if let Some(cycle_nodes) = cycle::find_cycle(&graph) {
        let mut msg = String::from("potential deadlock: lock-order cycle\n  ");
        for node in &cycle_nodes {
            msg.push_str(graph.label(*node));
            msg.push_str(" -> ");
        }
        msg.push_str(graph.label(cycle_nodes[0]));
        msg.push('\n');
        // Render the witness of every arc along the cycle — the
        // offending acquisition chains, one per edge.
        let ids: Vec<u32> = cycle_nodes
            .iter()
            .map(|n| {
                included
                    .iter()
                    .copied()
                    .find(|id| inner.names[*id as usize] == graph.label(*n))
                    .unwrap_or(0)
            })
            .collect();
        for i in 0..ids.len() {
            let from = ids[i];
            let to = ids[(i + 1) % ids.len()];
            if let Some(edge) = inner.edges.get(&(from, to)) {
                msg.push_str(&format!(
                    "  chain for {} -> {}: acquiring {} at {} while holding [{}]\n",
                    inner.names[from as usize],
                    inner.names[to as usize],
                    inner.names[to as usize],
                    edge.acquire_site,
                    edge.holder_chain.join(", "),
                ));
            }
        }
        return Err(msg);
    }
    let documented = inner
        .declared
        .iter()
        .filter(|((from, to), _)| node_of.contains_key(from) && node_of.contains_key(to))
        .map(|((from, to), reason)| {
            format!(
                "{} -> {}: {}",
                inner.names[*from as usize], inner.names[*to as usize], reason
            )
        })
        .collect();
    Ok(LockOrderReport {
        classes: included
            .iter()
            .map(|&id| inner.names[id as usize].to_string())
            .collect(),
        arcs,
        documented,
    })
}

/// [`check_prefixes`] over the entire recorded graph.
pub fn check_all() -> Result<LockOrderReport, String> {
    check_prefixes(&[])
}

/// A mutex whose every acquisition feeds the lock-order graph and (when
/// a happens-before recording is active) the sync-event trace.
pub struct TrackedMutex<T: ?Sized> {
    class: &'static LockClass,
    instance: u64,
    inner: parking_lot::Mutex<T>, // lint: allow(raw-lock)
}

impl<T> TrackedMutex<T> {
    /// Creates a tracked mutex of the given class.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        TrackedMutex {
            class,
            instance: next_instance(),
            inner: parking_lot::Mutex::new(value), // lint: allow(raw-lock)
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    /// Acquires the mutex, recording the ordering arc against every lock
    /// the calling thread already holds.
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let site = Location::caller();
        let guard = self.inner.lock();
        let token = on_acquire(self.class, self.instance, site, true);
        TrackedMutexGuard {
            guard,
            class: self.class,
            instance: self.instance,
            token,
        }
    }

    /// Attempts the mutex without blocking.  No ordering arc is recorded
    /// — a try-lock cannot be the waiting edge of a deadlock — but on
    /// success the lock joins the held chain like any other.
    #[track_caller]
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let site = Location::caller();
        let guard = self.inner.try_lock()?;
        let token = on_acquire(self.class, self.instance, site, false);
        Some(TrackedMutexGuard {
            guard,
            class: self.class,
            instance: self.instance,
            token,
        })
    }

    /// Returns a mutable reference to the underlying data (no lock, no
    /// tracking — `&mut self` proves exclusivity statically).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> TrackedMutex<T> {
    /// A tracked mutex of the given class around `T::default()`.
    pub fn of_default(class: &'static LockClass) -> Self {
        Self::new(class, T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("class", &self.class.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`TrackedMutex::lock`]; releases the held-chain
/// entry (and records the happens-before release event) on drop.
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    guard: parking_lot::MutexGuard<'a, T>, // lint: allow(raw-lock)
    class: &'static LockClass,
    instance: u64,
    token: u64,
}

impl<T: ?Sized> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Bookkeeping runs while the inner guard is still held (fields
        // drop after this body), so the recorded release precedes the
        // real one and the trace's per-lock order is sound.
        on_release(self.token, self.class.name, self.instance);
    }
}

/// A reader-writer lock with the same tracking discipline as
/// [`TrackedMutex`].  Read and write acquisitions share the class — a
/// read-held lock still orders everything acquired under it, and
/// writer-priority interleavings make even read-read re-entry a
/// potential deadlock, so the analysis conservatively treats both modes
/// alike (the witness records the mode).
pub struct TrackedRwLock<T: ?Sized> {
    class: &'static LockClass,
    instance: u64,
    inner: parking_lot::RwLock<T>, // lint: allow(raw-lock)
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked reader-writer lock of the given class.
    pub fn new(class: &'static LockClass, value: T) -> Self {
        TrackedRwLock {
            class,
            instance: next_instance(),
            inner: parking_lot::RwLock::new(value), // lint: allow(raw-lock)
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    /// Acquires shared read access, recording ordering arcs.
    #[track_caller]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let site = Location::caller();
        let guard = self.inner.read();
        let token = on_acquire(self.class, self.instance, site, true);
        TrackedReadGuard {
            guard,
            class: self.class,
            instance: self.instance,
            token,
        }
    }

    /// Acquires exclusive write access, recording ordering arcs.
    #[track_caller]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let site = Location::caller();
        let guard = self.inner.write();
        let token = on_acquire(self.class, self.instance, site, true);
        TrackedWriteGuard {
            guard,
            class: self.class,
            instance: self.instance,
            token,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("class", &self.class.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared-read guard returned by [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockReadGuard<'a, T>, // lint: allow(raw-lock)
    class: &'static LockClass,
    instance: u64,
    token: u64,
}

impl<T: ?Sized> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        on_release(self.token, self.class.name, self.instance);
    }
}

/// Exclusive-write guard returned by [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    guard: parking_lot::RwLockWriteGuard<'a, T>, // lint: allow(raw-lock)
    class: &'static LockClass,
    instance: u64,
    token: u64,
}

impl<T: ?Sized> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        on_release(self.token, self.class.name, self.instance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn abba_is_reported_with_both_chains() {
        // The classic two-lock inversion, run *sequentially*: lockdep
        // flags the potential deadlock from the recorded orders without
        // ever needing the fatal interleaving.
        let a = Arc::new(TrackedMutex::new(lock_class!("test.abba.a"), 0u32));
        let b = Arc::new(TrackedMutex::new(lock_class!("test.abba.b"), 0u32));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        })
        .join()
        .expect("inversion thread");
        let err = check_prefixes(&["test.abba."]).expect_err("cycle must be reported");
        assert!(err.contains("potential deadlock"), "{err}");
        assert!(
            err.contains("test.abba.a") && err.contains("test.abba.b"),
            "{err}"
        );
        // Both offending acquisition chains are rendered.
        assert!(
            err.contains("chain for test.abba.a -> test.abba.b")
                && err.contains("chain for test.abba.b -> test.abba.a"),
            "{err}"
        );
        assert!(err.contains("while holding"), "{err}");
    }

    #[test]
    fn three_lock_cycle_is_reported() {
        let a = TrackedMutex::new(lock_class!("test.tri.a"), ());
        let b = TrackedMutex::new(lock_class!("test.tri.b"), ());
        let c = TrackedMutex::new(lock_class!("test.tri.c"), ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        {
            let _gc = c.lock();
            let _ga = a.lock();
        }
        let err = check_prefixes(&["test.tri."]).expect_err("3-cycle must be reported");
        for class in ["test.tri.a", "test.tri.b", "test.tri.c"] {
            assert!(err.contains(class), "{err}");
        }
    }

    #[test]
    fn declared_same_class_nesting_is_not_a_false_positive() {
        // Ordered same-class acquisition (the per-shard store pattern):
        // sanctioned via allow_same_class, so no self-arc is recorded.
        allow_same_class("test.samecls.shard", "shards locked in index order");
        let s0 = TrackedMutex::new(lock_class!("test.samecls.shard"), ());
        let s1 = TrackedMutex::new(lock_class!("test.samecls.shard"), ());
        {
            let _g0 = s0.lock();
            let _g1 = s1.lock();
        }
        let report = check_prefixes(&["test.samecls."]).expect("sanctioned nesting is clean");
        assert_eq!(report.classes, vec!["test.samecls.shard"]);
        assert!(report.arcs.is_empty(), "{report}");
    }

    #[test]
    fn undeclared_same_class_nesting_is_a_cycle() {
        let s0 = TrackedMutex::new(lock_class!("test.selfarc.shard"), ());
        let s1 = TrackedMutex::new(lock_class!("test.selfarc.shard"), ());
        let _g0 = s0.lock();
        let _g1 = s1.lock();
        drop(_g1);
        drop(_g0);
        let err = check_prefixes(&["test.selfarc."]).expect_err("self-arc is a cycle");
        assert!(err.contains("test.selfarc.shard"), "{err}");
    }

    #[test]
    fn declared_order_is_documented_not_ignored() {
        declare_order(
            "test.doc.outer",
            "test.doc.inner",
            "inner is only reachable with outer held",
        );
        let outer = TrackedMutex::new(lock_class!("test.doc.outer"), ());
        let inner = TrackedMutex::new(lock_class!("test.doc.inner"), ());
        {
            let _go = outer.lock();
            let _gi = inner.lock();
        }
        let report = check_prefixes(&["test.doc."]).expect("declared order is clean");
        assert!(report.arcs.is_empty(), "declared arc excluded: {report}");
        assert_eq!(report.documented.len(), 1);
        assert!(
            report.documented[0].contains("inner is only reachable with outer held"),
            "{report}"
        );
    }

    #[test]
    fn try_lock_records_no_waiting_arc_but_holds_the_chain() {
        let a = TrackedMutex::new(lock_class!("test.try.a"), ());
        let b = TrackedMutex::new(lock_class!("test.try.b"), ());
        {
            // try_lock(a) under b: no b->a arc (try cannot block) ...
            let _gb = b.lock();
            let _ga = a.try_lock().expect("uncontended");
        }
        {
            // ... but a blocking lock UNDER a try-held lock is an arc.
            let _ga = a.try_lock().expect("uncontended");
            let _gb = b.lock();
        }
        let report = check_prefixes(&["test.try."]).expect("one direction only");
        assert_eq!(report.arcs.len(), 1, "{report}");
        assert!(
            report.arcs[0].starts_with("test.try.a -> test.try.b"),
            "{report}"
        );
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let a = TrackedMutex::new(lock_class!("test.det.a"), ());
        let b = TrackedMutex::new(lock_class!("test.det.b"), ());
        let c = TrackedMutex::new(lock_class!("test.det.c"), ());
        let scenario = || {
            let _ga = a.lock();
            let _gb = b.lock();
            let _gc = c.lock();
        };
        scenario();
        let first = check_prefixes(&["test.det."]).expect("acyclic").to_string();
        scenario();
        scenario();
        let second = check_prefixes(&["test.det."]).expect("acyclic").to_string();
        assert_eq!(first, second, "same scenario, same report, run to run");
    }

    #[test]
    fn rwlock_read_and_write_share_the_class() {
        let rw = TrackedRwLock::new(lock_class!("test.rw.map"), 5u32);
        let m = TrackedMutex::new(lock_class!("test.rw.side"), ());
        {
            let _r = rw.read();
            let _g = m.lock();
        }
        {
            let _w = rw.write();
            let _g = m.lock();
        }
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
        let report = check_prefixes(&["test.rw."]).expect("acyclic");
        assert_eq!(report.arcs.len(), 1, "read and write collapse: {report}");
    }
}
