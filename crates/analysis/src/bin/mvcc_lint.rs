//! `mvcc-lint` — scan the workspace for repo-invariant violations.
//!
//! Usage: `mvcc-lint [ROOT]...` (default: current directory).  Prints
//! every violation as `path:line: [rule] message` and exits non-zero if
//! any rule fired.  See [`mvcc_analysis::lint`] for the rule table and
//! the `// lint: allow(<rule>)` escape.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = std::env::args_os().skip(1).map(PathBuf::from).collect();
    if roots.is_empty() {
        roots.push(PathBuf::from("."));
    }
    let mut total = 0usize;
    for root in &roots {
        match mvcc_analysis::lint::scan_workspace(root) {
            Ok(violations) => {
                for v in &violations {
                    eprintln!("{v}");
                }
                total += violations.len();
            }
            Err(err) => {
                eprintln!("mvcc-lint: failed to scan {}: {err}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if total == 0 {
        eprintln!(
            "mvcc-lint: clean ({} rules over {})",
            mvcc_analysis::lint::RULES.len(),
            roots
                .iter()
                .map(|r| r.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("mvcc-lint: {total} violation(s)");
        ExitCode::FAILURE
    }
}
