//! Vector-clock happens-before checking over recorded sync-event traces.
//!
//! A [`Recording`] captures every synchronization event the workspace
//! performs while it is active: tracked-lock acquire/release (emitted by
//! [`crate::lockdep`]), explicit channel edges ([`send`]/[`recv`], used
//! for the pipeline's outcome-slot handoffs and thread spawn/join), and
//! named [`probe`] marks placed at the program points a claim talks
//! about.  [`Recording::finish`] runs a FastTrack-style vector-clock
//! pass over the trace — per-thread clocks, joined through per-lock and
//! per-channel clocks — so that *happens-before* between any two events
//! is a decidable question about the recorded run, not an argument about
//! the code.
//!
//! This turns the repo's prose concurrency claims into executed checks:
//!
//! * `assert_ordered("wal_append", "certifier_notify")` — PR 4's
//!   "durability is prefix-shaped": the WAL append for an admission
//!   batch happens-before every certifier notification for it;
//! * `sync_events_between(..)` — PR 7's "telemetry adds no
//!   synchronization edges": a hot-path recording burst contains zero
//!   lock or channel events (meaningful because `mvcc-lint` forbids
//!   untracked locks workspace-wide, so an untracked edge can't hide);
//! * `assert_same_critical_section(..)` — the PR 3 race fix:
//!   `MvStore::begin` chooses its snapshot and registers the tx under
//!   *one* acquisition of the tx-table lock.
//!
//! The pass also produces a [`Trace::races`] report: conflicting,
//! unordered accesses to cells declared with [`cell_read`]/
//! [`cell_write`] — the dynamic data-race detector the ROADMAP-4
//! lock-free refactor will lean on.
//!
//! Recording is test-only machinery: when no recording is active every
//! hook is a single relaxed atomic load.  Recordings are serialized
//! process-wide (a global session lock) so concurrent `cargo test`
//! threads cannot interleave two traces; tracked-lock events from
//! unrelated threads may still appear in a trace and are harmless —
//! every assertion is scoped by the labels, keys, and classes the
//! asserting test itself placed.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// Recorder internals cannot use tracked locks (lockdep emits hb events
// on every tracked acquisition, which would recurse into the recorder).
// lint: allow(raw-lock)
use std::sync::{Mutex as StdMutex, MutexGuard, OnceLock, PoisonError};

/// What kind of synchronization (or observation) an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A tracked lock was acquired (read or write alike).
    Acquire,
    /// A tracked lock was released.
    Release,
    /// A happens-before edge was published on a channel key.
    Send,
    /// A happens-before edge was consumed from a channel key.
    Recv,
    /// A named program-point mark (see [`probe`]).
    Mark,
    /// A declared shared cell was read.
    CellRead,
    /// A declared shared cell was written.
    CellWrite,
}

/// One recorded synchronization event.
#[derive(Debug, Clone)]
struct Event {
    thread: u64,
    kind: EventKind,
    /// Class name for lock events, label for marks, cell name for cell
    /// accesses, empty for channel events.
    name: &'static str,
    /// Lock instance, channel key, mark key, or cell key.
    key: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn events() -> &'static StdMutex<Vec<Event>> {
    static EVENTS: OnceLock<StdMutex<Vec<Event>>> = OnceLock::new();
    EVENTS.get_or_init(|| StdMutex::new(Vec::new())) // lint: allow(raw-lock)
}

fn session() -> &'static StdMutex<()> {
    static SESSION: OnceLock<StdMutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| StdMutex::new(())) // lint: allow(raw-lock)
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static NEXT_CHANNEL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let cur = id.get();
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
        id.set(fresh);
        fresh
    })
}

fn push(kind: EventKind, name: &'static str, key: u64) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let event = Event {
        thread: thread_id(),
        kind,
        name,
        key,
    };
    events()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(event);
}

/// Hook for [`crate::lockdep`]: a tracked lock of `class` was acquired.
pub(crate) fn lock_acquired(class: &'static str, instance: u64) {
    push(EventKind::Acquire, class, instance);
}

/// Hook for [`crate::lockdep`]: a tracked lock of `class` was released.
pub(crate) fn lock_released(class: &'static str, instance: u64) {
    push(EventKind::Release, class, instance);
}

/// Allocates a fresh channel key for [`send`]/[`recv`] edges.
pub fn channel() -> u64 {
    NEXT_CHANNEL.fetch_add(1, Ordering::Relaxed)
}

/// Records that the calling thread published a happens-before edge on
/// `key`.  Recording only: the *real* synchronization (an outcome-slot
/// store, a thread spawn, a join) must exist in the program; this tells
/// the checker about it.
pub fn send(key: u64) {
    push(EventKind::Send, "", key);
}

/// Records that the calling thread consumed the happens-before edge
/// published on `key` (joins the sender's clock).
pub fn recv(key: u64) {
    push(EventKind::Recv, "", key);
}

/// Drops a named mark at the current program point.  `key`
/// disambiguates instances of the same claim (an LSN, a tx id): ordering
/// assertions pair marks label-to-label by equal key.
pub fn probe(label: &'static str, key: u64) {
    push(EventKind::Mark, label, key);
}

/// Records a read of the declared shared cell `(name, key)`.
pub fn cell_read(name: &'static str, key: u64) {
    push(EventKind::CellRead, name, key);
}

/// Records a write of the declared shared cell `(name, key)`.
pub fn cell_write(name: &'static str, key: u64) {
    push(EventKind::CellWrite, name, key);
}

/// An active trace recording.  Created with [`Recording::start`];
/// consumed by [`Recording::finish`], which returns the analyzed
/// [`Trace`].  Only one recording exists at a time process-wide.
pub struct Recording {
    _session: MutexGuard<'static, ()>,
}

impl Recording {
    /// Starts recording synchronization events, blocking until any
    /// other in-flight recording finishes.
    pub fn start() -> Recording {
        let session = session().lock().unwrap_or_else(PoisonError::into_inner);
        events()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        ACTIVE.store(true, Ordering::SeqCst);
        Recording { _session: session }
    }

    /// Stops recording and runs the vector-clock pass over the captured
    /// events.
    pub fn finish(self) -> Trace {
        ACTIVE.store(false, Ordering::SeqCst);
        let captured =
            std::mem::take(&mut *events().lock().unwrap_or_else(PoisonError::into_inner));
        Trace::analyze(captured)
    }
}

/// A vector clock: one component per thread seen in the trace.
type Clock = Vec<u32>;

fn join(into: &mut Clock, other: &Clock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

/// One lock the thread held when a mark was dropped: which class, which
/// instance, and *which acquisition* of it (so two marks can be proven
/// to sit in the same critical section, not merely under the same lock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldSection {
    /// Lock class name.
    pub class: &'static str,
    /// Lock instance id.
    pub instance: u64,
    /// Ordinal of this acquisition of this instance within the trace.
    pub acquisition: u32,
}

/// An analyzed mark: where it sat in the trace, its vector clock, and
/// the critical sections it was dropped inside.
#[derive(Debug, Clone)]
struct MarkInfo {
    index: usize,
    thread_idx: usize,
    clock: Clock,
    held: Vec<HeldSection>,
}

/// An analyzed trace: the happens-before relation over one recorded
/// run, queryable by the marks the run dropped.
pub struct Trace {
    events: Vec<Event>,
    /// Per-event clock snapshot + dense thread index, same order.
    snapshots: Vec<(usize, Clock)>,
    /// label → key → first mark with that (label, key).
    marks: BTreeMap<&'static str, BTreeMap<u64, MarkInfo>>,
}

impl Trace {
    fn analyze(events: Vec<Event>) -> Trace {
        let mut thread_idx: BTreeMap<u64, usize> = BTreeMap::new();
        let mut clocks: Vec<Clock> = Vec::new();
        let mut lock_clocks: BTreeMap<(&'static str, u64), Clock> = BTreeMap::new();
        let mut chan_clocks: BTreeMap<u64, Clock> = BTreeMap::new();
        let mut held: BTreeMap<usize, Vec<HeldSection>> = BTreeMap::new();
        let mut acq_counts: BTreeMap<(&'static str, u64), u32> = BTreeMap::new();
        let mut snapshots = Vec::with_capacity(events.len());
        let mut marks: BTreeMap<&'static str, BTreeMap<u64, MarkInfo>> = BTreeMap::new();

        for (index, event) in events.iter().enumerate() {
            let tidx = *thread_idx.entry(event.thread).or_insert_with(|| {
                clocks.push(Clock::new());
                clocks.len() - 1
            });
            if clocks[tidx].len() <= tidx {
                clocks[tidx].resize(tidx + 1, 0);
            }
            clocks[tidx][tidx] += 1;
            match event.kind {
                EventKind::Acquire => {
                    if let Some(lc) = lock_clocks.get(&(event.name, event.key)) {
                        let lc = lc.clone();
                        join(&mut clocks[tidx], &lc);
                    }
                    let count = acq_counts.entry((event.name, event.key)).or_insert(0);
                    *count += 1;
                    held.entry(tidx).or_default().push(HeldSection {
                        class: event.name,
                        instance: event.key,
                        acquisition: *count,
                    });
                }
                EventKind::Recv => {
                    if let Some(cc) = chan_clocks.get(&event.key) {
                        let cc = cc.clone();
                        join(&mut clocks[tidx], &cc);
                    }
                }
                _ => {}
            }
            let snapshot = clocks[tidx].clone();
            match event.kind {
                EventKind::Release => {
                    lock_clocks.insert((event.name, event.key), snapshot.clone());
                    if let Some(stack) = held.get_mut(&tidx) {
                        if let Some(pos) = stack
                            .iter()
                            .rposition(|h| h.class == event.name && h.instance == event.key)
                        {
                            stack.remove(pos);
                        }
                    }
                }
                EventKind::Send => {
                    let cc = chan_clocks.entry(event.key).or_default();
                    join(cc, &snapshot);
                }
                EventKind::Mark => {
                    marks
                        .entry(event.name)
                        .or_default()
                        .entry(event.key)
                        .or_insert_with(|| MarkInfo {
                            index,
                            thread_idx: tidx,
                            clock: snapshot.clone(),
                            held: held.get(&tidx).cloned().unwrap_or_default(),
                        });
                }
                _ => {}
            }
            snapshots.push((tidx, snapshot));
        }
        Trace {
            events,
            snapshots,
            marks,
        }
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace captured nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The keys recorded for marks of `label`, in key order.
    pub fn mark_keys(&self, label: &str) -> Vec<u64> {
        self.marks
            .get(label)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    fn mark(&self, label: &str, key: u64) -> Result<&MarkInfo, String> {
        self.marks
            .get(label)
            .and_then(|m| m.get(&key))
            .ok_or_else(|| format!("no mark `{label}` with key {key} in trace"))
    }

    fn hb(&self, a: &MarkInfo, b: &MarkInfo) -> bool {
        let own = a.clock[a.thread_idx];
        b.clock.get(a.thread_idx).copied().unwrap_or(0) >= own && a.index < b.index
    }

    /// Checks that for every key carried by *both* labels, the
    /// `earlier` mark happens-before the `later` mark.  Errors if no
    /// key is shared (a vacuous pass would hide a missing probe) or if
    /// any pair is unordered or inverted.
    pub fn require_ordered(&self, earlier: &str, later: &str) -> Result<usize, String> {
        let (Some(first), Some(second)) = (self.marks.get(earlier), self.marks.get(later)) else {
            return Err(format!(
                "require_ordered({earlier}, {later}): a label has no marks in this trace"
            ));
        };
        let mut checked = 0;
        for (key, a) in first {
            let Some(b) = second.get(key) else { continue };
            if !self.hb(a, b) {
                return Err(format!(
                    "happens-before violation: `{earlier}` (key {key}) is not ordered \
                     before `{later}` (key {key})"
                ));
            }
            checked += 1;
        }
        if checked == 0 {
            return Err(format!(
                "require_ordered({earlier}, {later}): no shared keys — check is vacuous"
            ));
        }
        Ok(checked)
    }

    /// Panicking form of [`Trace::require_ordered`].
    pub fn assert_ordered(&self, earlier: &str, later: &str) {
        if let Err(msg) = self.require_ordered(earlier, later) {
            panic!("{msg}");
        }
    }

    /// Checks that for every key carried by both labels, the two marks
    /// were dropped inside the *same acquisition* of a lock of `class`
    /// — the "atomic with respect to that lock" claim (e.g. `begin`
    /// chooses its snapshot and registers under one tx-table section).
    pub fn require_same_critical_section(
        &self,
        first: &str,
        second: &str,
        class: &str,
    ) -> Result<usize, String> {
        let (Some(a_marks), Some(b_marks)) = (self.marks.get(first), self.marks.get(second)) else {
            return Err(format!(
                "require_same_critical_section({first}, {second}): a label has no marks"
            ));
        };
        let mut checked = 0;
        for (key, a) in a_marks {
            let Some(b) = b_marks.get(key) else { continue };
            let shared = a.held.iter().any(|ha| {
                ha.class == class
                    && b.held.iter().any(|hb| {
                        hb.class == class
                            && hb.instance == ha.instance
                            && hb.acquisition == ha.acquisition
                    })
            });
            if !shared {
                return Err(format!(
                    "`{first}` and `{second}` (key {key}) are not inside the same \
                     `{class}` critical section: first holds {:?}, second holds {:?}",
                    a.held, b.held
                ));
            }
            checked += 1;
        }
        if checked == 0 {
            return Err(format!(
                "require_same_critical_section({first}, {second}): no shared keys"
            ));
        }
        Ok(checked)
    }

    /// Panicking form of [`Trace::require_same_critical_section`].
    pub fn assert_same_critical_section(&self, first: &str, second: &str, class: &str) {
        if let Err(msg) = self.require_same_critical_section(first, second, class) {
            panic!("{msg}");
        }
    }

    /// Counts synchronization events (lock acquire/release, channel
    /// send/recv) performed *by the marking thread* strictly between the
    /// `from` and `to` marks of `key`.  The "no sync edges" claim is
    /// this count being zero.
    pub fn sync_events_between(&self, from: &str, to: &str, key: u64) -> Result<usize, String> {
        let a = self.mark(from, key)?;
        let b = self.mark(to, key)?;
        if a.thread_idx != b.thread_idx {
            return Err(format!(
                "sync_events_between({from}, {to}): marks are on different threads"
            ));
        }
        if a.index >= b.index {
            return Err(format!(
                "sync_events_between({from}, {to}): `{from}` does not precede `{to}`"
            ));
        }
        Ok(self.events[a.index + 1..b.index]
            .iter()
            .zip(&self.snapshots[a.index + 1..b.index])
            .filter(|(e, (tidx, _))| {
                *tidx == a.thread_idx
                    && matches!(
                        e.kind,
                        EventKind::Acquire | EventKind::Release | EventKind::Send | EventKind::Recv
                    )
            })
            .count())
    }

    /// Reports every pair of conflicting, unordered accesses to a
    /// declared shared cell: same `(name, key)`, at least one write,
    /// different threads, neither access happens-before the other.
    /// Deterministic: reports are emitted in trace order.
    pub fn races(&self) -> Vec<String> {
        let mut cells: BTreeMap<(&'static str, u64), Vec<usize>> = BTreeMap::new();
        for (index, event) in self.events.iter().enumerate() {
            if matches!(event.kind, EventKind::CellRead | EventKind::CellWrite) {
                cells
                    .entry((event.name, event.key))
                    .or_default()
                    .push(index);
            }
        }
        let mut reports = Vec::new();
        for ((name, key), accesses) in &cells {
            for (i, &ai) in accesses.iter().enumerate() {
                for &bi in &accesses[i + 1..] {
                    let (a, b) = (&self.events[ai], &self.events[bi]);
                    if a.kind == EventKind::CellRead && b.kind == EventKind::CellRead {
                        continue;
                    }
                    let (a_tidx, a_clock) = &self.snapshots[ai];
                    let (b_tidx, b_clock) = &self.snapshots[bi];
                    if a_tidx == b_tidx {
                        continue;
                    }
                    let ordered = b_clock.get(*a_tidx).copied().unwrap_or(0) >= a_clock[*a_tidx];
                    if !ordered {
                        reports.push(format!(
                            "race on cell `{name}` (key {key}): {:?} at event {ai} and \
                             {:?} at event {bi} are unordered",
                            a.kind, b.kind
                        ));
                    }
                }
            }
        }
        reports
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("events", &self.events.len())
            .field("labels", &self.marks.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock_class;
    use crate::lockdep::TrackedMutex;
    use std::sync::Arc;

    #[test]
    fn lock_handoff_orders_marks_across_threads() {
        let recording = Recording::start();
        let m = Arc::new(TrackedMutex::new(lock_class!("test.hb.handoff"), 0u64));
        {
            let mut g = m.lock();
            *g = 7;
            probe("hb.write", 1);
        }
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let g = m2.lock();
            assert_eq!(*g, 7);
            probe("hb.read", 1);
        })
        .join()
        .expect("reader thread");
        let trace = recording.finish();
        trace.assert_ordered("hb.write", "hb.read");
    }

    #[test]
    fn unsynchronized_marks_are_not_ordered() {
        let recording = Recording::start();
        probe("hb.solo.a", 1);
        std::thread::spawn(|| probe("hb.solo.b", 1))
            .join()
            .expect("thread");
        let trace = recording.finish();
        let err = trace
            .require_ordered("hb.solo.a", "hb.solo.b")
            .expect_err("no sync edge between the threads");
        assert!(err.contains("not ordered"), "{err}");
    }

    #[test]
    fn channel_edges_order_spawn_style_handoffs() {
        let recording = Recording::start();
        let ch = channel();
        probe("hb.chan.before", 1);
        send(ch);
        std::thread::spawn(move || {
            recv(ch);
            probe("hb.chan.after", 1);
        })
        .join()
        .expect("child");
        let trace = recording.finish();
        trace.assert_ordered("hb.chan.before", "hb.chan.after");
    }

    #[test]
    fn same_critical_section_is_distinguished_from_same_lock() {
        let recording = Recording::start();
        let m = TrackedMutex::new(lock_class!("test.hb.section"), ());
        {
            // One acquisition, both marks inside it: atomic.
            let _g = m.lock();
            probe("hb.sec.a", 1);
            probe("hb.sec.b", 1);
        }
        {
            // Same lock, split across two acquisitions: NOT atomic.
            let _g = m.lock();
            probe("hb.split.a", 2);
        }
        {
            let _g = m.lock();
            probe("hb.split.b", 2);
        }
        let trace = recording.finish();
        trace.assert_same_critical_section("hb.sec.a", "hb.sec.b", "test.hb.section");
        let err = trace
            .require_same_critical_section("hb.split.a", "hb.split.b", "test.hb.section")
            .expect_err("separate acquisitions are not one critical section");
        assert!(err.contains("not inside the same"), "{err}");
    }

    #[test]
    fn sync_event_counting_sees_lock_traffic() {
        let recording = Recording::start();
        let m = TrackedMutex::new(lock_class!("test.hb.burst"), ());
        probe("hb.burst.start", 9);
        {
            let _g = m.lock();
        }
        probe("hb.burst.end", 9);
        probe("hb.quiet.start", 9);
        probe("hb.quiet.end", 9);
        let trace = recording.finish();
        assert_eq!(
            trace
                .sync_events_between("hb.burst.start", "hb.burst.end", 9)
                .expect("same thread"),
            2,
            "one acquire + one release"
        );
        assert_eq!(
            trace
                .sync_events_between("hb.quiet.start", "hb.quiet.end", 9)
                .expect("same thread"),
            0
        );
    }

    #[test]
    fn race_report_flags_unordered_conflicts_only() {
        let recording = Recording::start();
        let m = Arc::new(TrackedMutex::new(lock_class!("test.hb.race"), ()));
        {
            // Guarded cell: both accesses inside critical sections of
            // the same lock — the release/acquire edge orders them.
            let _g = m.lock();
            cell_write("cell.guarded", 1);
        }
        cell_write("cell.racy", 2);
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            // Racy write happens before this thread joins any clock:
            // unordered with the parent's write to the same cell.
            cell_write("cell.racy", 2);
            let _g = m2.lock();
            cell_read("cell.guarded", 1);
        })
        .join()
        .expect("thread");
        let trace = recording.finish();
        let races = trace.races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert!(races[0].contains("cell.racy"), "{races:?}");
    }
}
