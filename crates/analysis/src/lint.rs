//! `mvcc-lint`: repo-invariant enforcement by source scanning.
//!
//! A hand-rolled line/token-level scanner (no external parser — the
//! build container is offline) that walks every `.rs` file in the
//! workspace and enforces the invariants the analysis layer depends on:
//!
//! | rule            | invariant                                                        |
//! |-----------------|------------------------------------------------------------------|
//! | `raw-lock`      | no raw `std::sync`/`parking_lot` lock construction outside the tracked shims — untracked locks are invisible to lockdep and the hb checker |
//! | `clock`         | no `Instant::now`/`SystemTime::now` outside `crates/telemetry` and bench code — wall-clock reads on the hot path broke determinism twice before PR 7 centralized them |
//! | `unwrap`        | no `.unwrap()`/`.expect()` in non-test library code — library panics tear down pipeline worker threads holding lane locks |
//! | `static-mut`    | no `static mut` anywhere — unsynchronized globals defeat both analyses |
//! | `unsafe-safety` | every `unsafe` appearance carries a `// SAFETY:` comment within five lines above |
//!
//! Before matching, each line is split into *code* and *comment* text by
//! a small state machine that strips string literals (including raw
//! strings), char literals, line comments, and nested block comments —
//! so prose that mentions `Mutex` never trips the gate, and the
//! `// SAFETY:`/escape detection reads only real comments.  A violation
//! is suppressed by `// lint: allow(<rule>)` on the same line or the
//! line directly above; every sanctioned exception is thereby visible
//! at the site it excuses.
//!
//! Context is derived from the path: files under `tests/`, `benches/`,
//! or `examples/` (and `#[cfg(test)]` regions inside library files,
//! tracked by brace counting) are *test* context; `src/bin/` and
//! `src/main.rs` are *bin* context; everything else is library.  The
//! `unwrap` rule applies to library context only; `raw-lock` and
//! `clock` to library and bin; `static-mut` and `unsafe-safety`
//! everywhere.  `vendor/`, `target/`, and `fixtures/` directories are
//! never scanned.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rule identifiers accepted by `// lint: allow(<rule>)`.
pub const RULES: [&str; 5] = ["raw-lock", "clock", "unwrap", "static-mut", "unsafe-safety"];

/// What kind of code a file (or region) is, for rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Context {
    /// Non-test, non-binary library source.
    Library,
    /// Binary targets: `src/bin/*`, `src/main.rs`, `build.rs`.
    Bin,
    /// Test code: `tests/`, `benches/`, `examples/` trees.
    Test,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description with the offending excerpt.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source line split into executable text and comment text.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    code: String,
    comment: String,
}

/// Splits `source` into per-line code/comment text, stripping string
/// and char literals from the code channel.  Handles nested block
/// comments, raw strings (`r#"..."#`), byte strings, and the
/// char-literal-vs-lifetime ambiguity (`'a'` vs `'a`).
fn split_lines(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let mut state = State::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push(' ');
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&cur.code)
                    && raw_str_hashes(&chars, i).is_some()
                {
                    let (hashes, skip) = raw_str_hashes(&chars, i).unwrap_or((0, 1));
                    cur.code.push(' ');
                    state = State::RawStr(hashes);
                    i += skip;
                } else if c == '\'' {
                    // Char literal or lifetime?  A literal is `'\...'`
                    // or `'X'`; anything else is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        i += 2;
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                        cur.code.push(' ');
                        i += 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push(' ');
                        i += 3;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped character — except a newline
                    // (string continuation), which must stay visible to
                    // the line counter at the top of the loop or every
                    // diagnostic below it drifts up a line.
                    if chars.get(i + 1) == Some(&'\n') {
                        i += 1;
                    } else {
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If position `i` (at `r`/`b`) starts a raw or byte string, returns
/// `(hash_count, chars_to_skip_to_content)`.
fn raw_str_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i + 1;
    if chars.get(i) == Some(&'b') && chars.get(j) == Some(&'r') {
        j += 1;
    } else if chars.get(i) == Some(&'b') && chars.get(j) == Some(&'"') {
        return Some((0, 2));
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + 1 || chars.get(i) == Some(&'r')) {
        if chars.get(i) == Some(&'r') && j == i + 1 && hashes == 0 {
            return Some((0, 2));
        }
        if hashes > 0 || chars.get(i) == Some(&'b') {
            return Some((hashes, j - i + 1));
        }
    }
    None
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// True when `needle` occurs in `haystack` with no identifier character
/// on either side (so `Mutex::new(` does not match inside
/// `TrackedMutex::new(`, `Mutex` does not match inside `MutexGuard`,
/// and `unsafe` does not match inside `unsafe_code`).
fn token_match(haystack: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let needle_ends_ident = needle.chars().next_back().is_some_and(is_ident);
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !haystack[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !needle_ends_ident
            || !haystack[at + needle.len()..]
                .chars()
                .next()
                .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// True when the comment text of `line` (or the line above) carries the
/// `lint: allow(<rule>)` escape for `rule`.
fn allowed(lines: &[LineInfo], line: usize, rule: &str) -> bool {
    let tag = format!("lint: allow({rule})");
    lines[line].comment.contains(&tag) || (line > 0 && lines[line - 1].comment.contains(&tag))
}

/// Per-line test-region flags for `#[cfg(test)]` items in library
/// files, tracked by brace counting from the attribute.
fn cfg_test_regions(lines: &[LineInfo]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut pending = false;
    let mut depth: i64 = 0;
    let mut in_region = false;
    for (idx, line) in lines.iter().enumerate() {
        if !in_region && line.code.contains("#[cfg(test)]") {
            pending = true;
        }
        if in_region || pending {
            flags[idx] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        pending = false;
                        in_region = true;
                        depth = 1;
                    } else if in_region {
                        depth += 1;
                    }
                }
                '}' if in_region => {
                    depth -= 1;
                    if depth == 0 {
                        in_region = false;
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// Derives the scanning [`Context`] from a file path.
pub fn context_for(path: &Path) -> Context {
    let s = path.to_string_lossy().replace('\\', "/");
    let in_tree =
        |tree: &str| s.contains(&format!("/{tree}/")) || s.starts_with(&format!("{tree}/"));
    if in_tree("tests") || in_tree("benches") || in_tree("examples") {
        return Context::Test;
    }
    if s.contains("/src/bin/") || s.ends_with("/src/main.rs") || s.ends_with("build.rs") {
        return Context::Bin;
    }
    Context::Library
}

/// True when the `clock` rule exempts this path (the telemetry crate
/// owns the clock; the bench crate measures with it).
fn clock_exempt(path: &Path) -> bool {
    let s = path.to_string_lossy().replace('\\', "/");
    s.contains("crates/telemetry/") || s.contains("crates/bench/")
}

/// Scans one file's source, returning every violation.
pub fn scan_file(path: &Path, source: &str) -> Vec<Violation> {
    let file_ctx = context_for(path);
    let lines = split_lines(source);
    let test_region = if file_ctx == Context::Library {
        cfg_test_regions(&lines)
    } else {
        vec![false; lines.len()]
    };
    let clock_ok = clock_exempt(path);
    let mut out = Vec::new();
    let mut emit = |line: usize, rule: &'static str, message: String| {
        if !allowed(&lines, line, rule) {
            out.push(Violation {
                path: path.to_path_buf(),
                line: line + 1,
                rule,
                message,
            });
        }
    };
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let ctx = if test_region[idx] {
            Context::Test
        } else {
            file_ctx
        };
        let excerpt = || code.trim().to_string();

        // static-mut and unsafe-safety apply in every context.
        if token_match(code, "static mut") {
            emit(
                idx,
                "static-mut",
                format!(
                "`static mut` is forbidden (unsynchronized global state defeats the analyses): {}",
                excerpt()
            ),
            );
        }
        if token_match(code, "unsafe") {
            let documented =
                (idx.saturating_sub(5)..=idx).any(|j| lines[j].comment.contains("SAFETY:"));
            if !documented {
                emit(
                    idx,
                    "unsafe-safety",
                    format!(
                        "`unsafe` without a `// SAFETY:` comment within five lines above: {}",
                        excerpt()
                    ),
                );
            }
        }
        if ctx == Context::Test {
            continue;
        }

        // raw-lock: library + bin.
        let raw_lock = token_match(code, "parking_lot::")
            || token_match(code, "Mutex::new(")
            || token_match(code, "RwLock::new(")
            || token_match(code, "Condvar")
            || (code.contains("std::sync::")
                && (token_match(code, "Mutex") || token_match(code, "RwLock")));
        if raw_lock {
            emit(
                idx,
                "raw-lock",
                format!(
                    "raw lock construction/import outside the tracked shims (use \
                 mvcc_analysis::lockdep::TrackedMutex/TrackedRwLock): {}",
                    excerpt()
                ),
            );
        }

        // clock: library + bin, telemetry/bench exempt.
        if !clock_ok && (token_match(code, "Instant::now") || token_match(code, "SystemTime::now"))
        {
            emit(
                idx,
                "clock",
                format!(
                    "clock read outside crates/telemetry and bench code: {}",
                    excerpt()
                ),
            );
        }

        // unwrap: library only.
        if ctx == Context::Library && (code.contains(".unwrap()") || code.contains(".expect(")) {
            emit(
                idx,
                "unwrap",
                format!(
                    "`.unwrap()`/`.expect()` in non-test library code (panics tear down \
                 worker threads holding locks): {}",
                    excerpt()
                ),
            );
        }
    }
    out
}

/// Directory names never descended into.
fn skip_dir(name: &str) -> bool {
    matches!(
        name,
        "vendor" | "target" | ".git" | "fixtures" | "node_modules" | ".github"
    )
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under `root` (skipping `vendor/`, `target/`,
/// `fixtures/`, and VCS metadata), returning all violations in
/// deterministic path order.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut violations = Vec::new();
    for file in files {
        let source = fs::read_to_string(&file)?;
        violations.extend(scan_file(&file, &source));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Violation> {
        scan_file(Path::new(path), src)
    }

    #[test]
    fn raw_lock_in_library_is_flagged_and_allow_escapes() {
        let v = scan(
            "crates/x/src/lib.rs",
            "use std::sync::Mutex;\nfn f() { let _m = Mutex::new(0); }\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "raw-lock"));
        let v = scan(
            "crates/x/src/lib.rs",
            "// lint: allow(raw-lock)\nuse std::sync::Mutex;\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn string_continuations_do_not_shift_line_numbers() {
        // Regression: the lexer used to consume `\` + newline as one
        // escape pair inside string literals, so every multi-line string
        // continuation above a site shifted its reported line up by one
        // — and `// lint: allow(...)` escapes stopped lining up.
        let lib = "fn f() -> &'static str {\n    \"a \\\n     b \\\n     c\"\n}\nfn g() { None::<u32>.unwrap(); }\n";
        let v = scan("crates/x/src/lib.rs", lib);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6, "{v:?}");
    }

    #[test]
    fn tracked_shims_do_not_match() {
        let v = scan(
            "crates/x/src/lib.rs",
            "fn f() { let _m = TrackedMutex::new(class, 0); }\n\
             fn g(x: &std::sync::MutexGuard<u32>) {}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn comments_and_strings_never_trip_rules() {
        let v = scan(
            "crates/x/src/lib.rs",
            "// the old code used Mutex::new( and Instant::now here\n\
             /* static mut was\n   considered */\n\
             fn f() -> &'static str { \"Mutex::new( .unwrap() Instant::now\" }\n\
             fn g() -> &'static str { r#\"static mut inside raw \"quoted\" text\"# }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn clock_rule_exempts_telemetry_and_tests() {
        let src = "fn f() { let _t = Instant::now(); }\n";
        assert_eq!(scan("crates/engine/src/lib.rs", src).len(), 1);
        assert!(scan("crates/telemetry/src/clock.rs", src).is_empty());
        assert!(scan("crates/engine/tests/t.rs", src).is_empty());
        assert!(scan("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_rule_spares_tests_bins_and_cfg_test_regions() {
        let src = "fn f() { None::<u32>.unwrap(); }\n";
        assert_eq!(scan("crates/x/src/lib.rs", src).len(), 1);
        assert!(scan("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(scan("crates/x/tests/t.rs", src).is_empty());
        let lib = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { None::<u32>.unwrap(); }\n}\nfn h() { None::<u32>.expect(\"x\"); }\n";
        let v = scan("crates/x/src/lib.rs", lib);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn static_mut_and_unsafe_rules_apply_everywhere() {
        let v = scan("crates/x/tests/t.rs", "static mut X: u32 = 0;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "static-mut");
        let v = scan(
            "crates/x/src/lib.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-safety");
        let v = scan(
            "crates/x/src/lib.rs",
            "// SAFETY: provably unreachable by the match above\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = scan(
            "crates/x/src/lib.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() -> char { 'x' }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violations_render_with_file_line_and_rule() {
        let v = scan(
            "crates/x/src/lib.rs",
            "fn f() { let _ = Instant::now(); }\n",
        );
        let rendered = v[0].to_string();
        assert!(rendered.contains("crates/x/src/lib.rs:1"), "{rendered}");
        assert!(rendered.contains("[clock]"), "{rendered}");
    }
}
