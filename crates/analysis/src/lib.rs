//! mvcc-analysis: the concurrency-safety analysis layer.
//!
//! Every other crate in this workspace *runs* concurrent code; this one
//! checks it.  Three cooperating passes, all exercised by the ordinary
//! test suite and gated in CI:
//!
//! 1. [`lockdep`] — tracked lock shims feed a global lock-order graph;
//!    a cycle is a potential deadlock, reported with the offending
//!    acquisition chains (re-using `mvcc-graph`'s cycle machinery, the
//!    same code that classifies transaction histories).
//! 2. [`hb`] — a FastTrack-style vector-clock pass over recorded
//!    sync-event traces, turning the repo's prose happens-before claims
//!    (WAL-append-before-notify, telemetry-adds-no-edges,
//!    begin-atomic-with-snapshot) into executed assertions, plus a
//!    data-race report over declared shared cells.
//! 3. [`lint`] — the `mvcc-lint` binary: a hand-rolled source scanner
//!    enforcing the invariants the other two passes depend on (no
//!    untracked locks, no stray clock reads, no library panics, no
//!    `static mut`, `// SAFETY:` on every `unsafe`).
//!
//! The paper's central move — don't trust the run, check the recorded
//! history against the class definition (Hadzilacos & Papadimitriou,
//! PODS '85) — applied to the engine's own locking and ordering.

#![forbid(unsafe_code)]

pub mod hb;
pub mod lint;
pub mod lockdep;

pub use lockdep::{LockClass, LockOrderReport, TrackedMutex, TrackedRwLock};
