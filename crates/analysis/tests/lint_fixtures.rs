//! The lint gate's own gate: every rule must fire on its negative
//! fixture (so a regression that silences a rule fails CI loudly), and
//! the workspace itself must scan clean.
//!
//! The fixtures live under `tests/fixtures/` — a directory the
//! workspace walker skips — and are scanned as if they were library
//! sources (`crates/x/src/lib.rs`), the strictest context.

use mvcc_analysis::lint::{scan_file, scan_workspace, RULES};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Scans a fixture in library context and returns the rules that fired.
fn rules_fired(name: &str) -> Vec<&'static str> {
    let source = fixture(name);
    let mut rules: Vec<&'static str> = scan_file(Path::new("crates/x/src/lib.rs"), &source)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn every_rule_has_a_firing_fixture() {
    let fixtures = [
        ("raw_lock.rs", "raw-lock"),
        ("clock.rs", "clock"),
        ("unwrap.rs", "unwrap"),
        ("static_mut.rs", "static-mut"),
        ("unsafe_safety.rs", "unsafe-safety"),
    ];
    assert_eq!(fixtures.len(), RULES.len(), "one fixture per rule");
    for (file, rule) in fixtures {
        let fired = rules_fired(file);
        assert!(
            fired.contains(&rule),
            "fixture {file} did not trip `{rule}` (fired: {fired:?})"
        );
    }
}

#[test]
fn raw_lock_fixture_flags_both_construction_sites() {
    let source = fixture("raw_lock.rs");
    let v = scan_file(Path::new("crates/x/src/lib.rs"), &source);
    let raw: Vec<_> = v.iter().filter(|v| v.rule == "raw-lock").collect();
    assert!(
        raw.len() >= 3,
        "std::sync use, parking_lot field, Mutex::new: {raw:?}"
    );
}

#[test]
fn static_mut_fixture_also_trips_unsafe_safety() {
    // The fixture's unsafe block has no SAFETY: comment, so the two
    // "everywhere" rules fire together — they are independent checks.
    let fired = rules_fired("static_mut.rs");
    assert!(fired.contains(&"static-mut"), "{fired:?}");
    assert!(fired.contains(&"unsafe-safety"), "{fired:?}");
}

#[test]
fn fixtures_are_silent_in_test_context_where_rules_permit() {
    // unwrap is a library-only rule: the same source under tests/ is
    // clean.  clock and raw-lock still apply to bin context, and
    // static-mut everywhere — scope creep in either direction is a bug.
    let source = fixture("unwrap.rs");
    let v = scan_file(Path::new("crates/x/tests/t.rs"), &source);
    assert!(v.is_empty(), "{v:?}");
    let source = fixture("static_mut.rs");
    let v = scan_file(Path::new("crates/x/tests/t.rs"), &source);
    assert!(v.iter().any(|v| v.rule == "static-mut"), "{v:?}");
}

#[test]
fn workspace_scans_clean() {
    // The gate CI runs via the mvcc-lint binary; this is the same scan
    // as a test, so `cargo test` alone catches a violating commit.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root).expect("workspace scan");
    assert!(
        violations.is_empty(),
        "mvcc-lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
