// Negative fixture for the `unwrap` rule: panicking accessors in
// non-test library code.  Never compiled.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn named(xs: &[u32]) -> u32 {
    *xs.last().expect("xs is non-empty")
}
