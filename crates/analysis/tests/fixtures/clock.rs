// Negative fixture for the `clock` rule: wall-clock reads in library
// context outside the telemetry/bench exemption.  Never compiled.
use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
