// Negative fixture for the `raw-lock` rule: raw lock construction in
// library context.  Never compiled — scanned by tests/lint_fixtures.rs.
use std::sync::Mutex;

pub struct Cache {
    slots: parking_lot::RwLock<Vec<u8>>,
}

pub fn make() -> Mutex<u32> {
    Mutex::new(0)
}
