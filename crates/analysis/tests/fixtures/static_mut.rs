// Negative fixture for the `static-mut` rule.  Never compiled.
static mut COUNTER: u64 = 0;

pub fn bump() {
    // (the unsafe block below is also an `unsafe-safety` violation,
    // which the fixture test accounts for)
    unsafe {
        COUNTER += 1;
    }
}
