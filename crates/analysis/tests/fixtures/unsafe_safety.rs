// Negative fixture for the `unsafe-safety` rule: an unsafe block whose
// soundness argument comment is missing.  Never compiled.
pub fn transmute_len(v: &[u8]) -> usize {
    let p = v.as_ptr();
    unsafe { *p as usize }
}
