//! Sharded storage: one [`MvStore`] per key range.
//!
//! A single `MvStore` guards its chain map with one `RwLock`, so every
//! write serializes on it.  The engine instead hashes entities over N
//! independent stores ("shard per key range", the pod/sharded-topology
//! scaling argument): threads touching disjoint shards never contend on a
//! storage lock.  Cross-shard transactions begin lazily on each shard they
//! touch and commit shard by shard; the engine's admission layer
//! ([`crate::session`]) is what makes the multi-shard commit appear atomic
//! to other transactions.

use bytes::Bytes;
use mvcc_core::EntityId;
use mvcc_store::{MvStore, StoreError, TxHandle};

/// A fixed-size array of independent [`MvStore`] shards.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<MvStore>,
}

impl ShardedStore {
    /// Creates `shards` stores, pre-populating each with the initial
    /// version of every entity in `0..entities` that maps to it.
    pub fn new(shards: usize, entities: usize, initial: Bytes) -> Self {
        assert!(shards > 0, "at least one shard");
        let stores = (0..shards)
            .map(|s| {
                MvStore::with_entities(
                    (0..entities as u32)
                        .map(EntityId)
                        .filter(|e| e.index() % shards == s),
                    initial.clone(),
                )
            })
            .collect();
        ShardedStore { shards: stores }
    }

    /// Rebuilds the sharded store from crash-recovered state: one
    /// [`MvStore::from_recovered`] per shard, with each shard's commit
    /// counter floored at the GC watermark its checkpoint was cut at.
    pub fn from_recovered(shards: &[mvcc_durability::RecoveredShard]) -> Self {
        assert!(!shards.is_empty(), "at least one shard");
        let stores = shards
            .iter()
            .map(|shard| {
                MvStore::from_recovered(
                    shard.commit_counter,
                    shard.watermark,
                    shard.chains.iter().map(|(entity, versions)| {
                        (
                            *entity,
                            versions
                                .iter()
                                .map(|v| (v.writer, v.commit_ts, v.value.clone()))
                                .collect(),
                        )
                    }),
                )
            })
            .collect();
        ShardedStore { shards: stores }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if there are no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index owning `entity`.
    pub fn shard_of(&self, entity: EntityId) -> usize {
        entity.index() % self.shards.len()
    }

    /// The store owning `entity`.
    pub fn store_for(&self, entity: EntityId) -> &MvStore {
        &self.shards[self.shard_of(entity)]
    }

    /// The store at shard index `idx`.
    pub fn store(&self, idx: usize) -> &MvStore {
        &self.shards[idx]
    }

    /// Iterates over all shards.
    pub fn iter(&self) -> impl Iterator<Item = &MvStore> {
        self.shards.iter()
    }

    /// Total number of versions across all shards (GC observability).
    pub fn total_versions(&self) -> usize {
        self.shards.iter().map(|s| s.total_versions()).sum()
    }

    /// Commits a whole group of transactions, shard by shard: for each
    /// shard, every group member that touched it is committed in one
    /// [`MvStore::commit_many`] pass (one transaction-table lock and one
    /// chain-map lock per shard per *group* instead of per transaction —
    /// the storage half of the engine's group-commit pipeline).
    ///
    /// `group` pairs each transaction with its touched-shard mask (as kept
    /// by the engine's sessions).  Returns one result per group member, in
    /// order: the `(shard index, commit timestamp)` pairs the member was
    /// assigned (the WAL's commit record needs them — shards keep
    /// independent commit counters).  A member fails if any of its shards
    /// refused the commit (a bug upstream — members are expected to be
    /// active everywhere they begun).
    pub fn commit_group(
        &self,
        group: &[(TxHandle, &[bool])],
    ) -> Vec<Result<Vec<(usize, u64)>, StoreError>> {
        let mut results: Vec<Result<Vec<(usize, u64)>, StoreError>> =
            vec![Ok(Vec::new()); group.len()];
        for (idx, store) in self.shards.iter().enumerate() {
            let members: Vec<usize> = group
                .iter()
                .enumerate()
                .filter(|(_, (_, begun))| begun.get(idx).copied().unwrap_or(false))
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            let handles: Vec<TxHandle> = members.iter().map(|&i| group[i].0).collect();
            for (&i, result) in members.iter().zip(store.commit_many(&handles)) {
                match (&mut results[i], result) {
                    (Ok(shards), Ok(ts)) => shards.push((idx, ts)),
                    (slot @ Ok(_), Err(e)) => *slot = Err(e),
                    (Err(_), _) => {}
                }
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::TxId;

    #[test]
    fn entities_partition_across_shards() {
        let sharded = ShardedStore::new(3, 10, Bytes::from_static(b"0"));
        assert_eq!(sharded.len(), 3);
        // Every entity lives in exactly the shard its index hashes to.
        for e in 0..10u32 {
            let entity = EntityId(e);
            let owner = sharded.shard_of(entity);
            for s in 0..3 {
                let expect = if s == owner { 1 } else { 0 };
                assert_eq!(sharded.store(s).version_count(entity), expect);
            }
        }
        // 10 initial versions in total.
        assert_eq!(sharded.total_versions(), 10);
    }

    #[test]
    fn shards_are_independent_stores() {
        let sharded = ShardedStore::new(2, 4, Bytes::from_static(b"0"));
        let (x, y) = (EntityId(0), EntityId(1)); // different shards
        assert_ne!(sharded.shard_of(x), sharded.shard_of(y));
        // The same TxId can be begun independently on each shard (the
        // engine's cross-shard path relies on this).
        let hx = sharded.store_for(x).begin(TxId(1)).unwrap();
        let hy = sharded.store_for(y).begin(TxId(1)).unwrap();
        sharded
            .store_for(x)
            .write(hx, x, Bytes::from_static(b"a"))
            .unwrap();
        sharded.store_for(x).commit(hx, false).unwrap();
        // Shard of y never heard of the write, and its commit counter is
        // untouched.
        assert_eq!(sharded.store_for(y).current_ts(), 0);
        sharded.store_for(y).abort(hy).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedStore::new(0, 4, Bytes::from_static(b"0"));
    }

    #[test]
    fn commit_group_commits_each_member_on_its_touched_shards() {
        let sharded = ShardedStore::new(2, 4, Bytes::from_static(b"0"));
        let (x, y) = (EntityId(0), EntityId(1)); // different shards
                                                 // T1 touches both shards, T2 only y's shard; T3 was never begun.
        let t1 = TxHandle { id: TxId(1) };
        let t2 = TxHandle { id: TxId(2) };
        let t3 = TxHandle { id: TxId(3) };
        for store_of in [x, y] {
            sharded.store_for(store_of).begin(t1.id).unwrap();
        }
        sharded.store_for(y).begin(t2.id).unwrap();
        sharded
            .store_for(x)
            .write(t1, x, Bytes::from_static(b"t1"))
            .unwrap();
        sharded
            .store_for(y)
            .write(t2, y, Bytes::from_static(b"t2"))
            .unwrap();
        let group: Vec<(TxHandle, &[bool])> = vec![
            (t1, &[true, true][..]),
            (t2, &[false, true][..]),
            (t3, &[true, false][..]),
        ];
        let results = sharded.commit_group(&group);
        // Each committed member reports its per-shard commit timestamps
        // (consecutive per shard, in batch order).
        assert_eq!(results[0], Ok(vec![(0, 1), (1, 1)]));
        assert_eq!(results[1], Ok(vec![(1, 2)]));
        // T3 was never begun on shard 0: its commit is refused.
        assert!(matches!(results[2], Err(StoreError::NotActive(tx)) if tx == t3.id));
        // Both commits are visible.
        let reader = TxHandle { id: TxId(9) };
        sharded.store_for(x).begin(reader.id).unwrap();
        assert_eq!(
            sharded.store_for(x).read_latest(reader, x).unwrap(),
            Bytes::from_static(b"t1")
        );
    }
}
