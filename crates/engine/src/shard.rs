//! Sharded storage: one [`MvStore`] per key range.
//!
//! A single `MvStore` guards its chain map with one `RwLock`, so every
//! write serializes on it.  The engine instead hashes entities over N
//! independent stores ("shard per key range", the pod/sharded-topology
//! scaling argument): threads touching disjoint shards never contend on a
//! storage lock.  Cross-shard transactions begin lazily on each shard they
//! touch and commit shard by shard; the engine's admission layer
//! ([`crate::session`]) is what makes the multi-shard commit appear atomic
//! to other transactions.

use bytes::Bytes;
use mvcc_core::EntityId;
use mvcc_store::MvStore;

/// A fixed-size array of independent [`MvStore`] shards.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<MvStore>,
}

impl ShardedStore {
    /// Creates `shards` stores, pre-populating each with the initial
    /// version of every entity in `0..entities` that maps to it.
    pub fn new(shards: usize, entities: usize, initial: Bytes) -> Self {
        assert!(shards > 0, "at least one shard");
        let stores = (0..shards)
            .map(|s| {
                MvStore::with_entities(
                    (0..entities as u32)
                        .map(EntityId)
                        .filter(|e| e.index() % shards == s),
                    initial.clone(),
                )
            })
            .collect();
        ShardedStore { shards: stores }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if there are no shards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index owning `entity`.
    pub fn shard_of(&self, entity: EntityId) -> usize {
        entity.index() % self.shards.len()
    }

    /// The store owning `entity`.
    pub fn store_for(&self, entity: EntityId) -> &MvStore {
        &self.shards[self.shard_of(entity)]
    }

    /// The store at shard index `idx`.
    pub fn store(&self, idx: usize) -> &MvStore {
        &self.shards[idx]
    }

    /// Iterates over all shards.
    pub fn iter(&self) -> impl Iterator<Item = &MvStore> {
        self.shards.iter()
    }

    /// Total number of versions across all shards (GC observability).
    pub fn total_versions(&self) -> usize {
        self.shards.iter().map(|s| s.total_versions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::TxId;

    #[test]
    fn entities_partition_across_shards() {
        let sharded = ShardedStore::new(3, 10, Bytes::from_static(b"0"));
        assert_eq!(sharded.len(), 3);
        // Every entity lives in exactly the shard its index hashes to.
        for e in 0..10u32 {
            let entity = EntityId(e);
            let owner = sharded.shard_of(entity);
            for s in 0..3 {
                let expect = if s == owner { 1 } else { 0 };
                assert_eq!(sharded.store(s).version_count(entity), expect);
            }
        }
        // 10 initial versions in total.
        assert_eq!(sharded.total_versions(), 10);
    }

    #[test]
    fn shards_are_independent_stores() {
        let sharded = ShardedStore::new(2, 4, Bytes::from_static(b"0"));
        let (x, y) = (EntityId(0), EntityId(1)); // different shards
        assert_ne!(sharded.shard_of(x), sharded.shard_of(y));
        // The same TxId can be begun independently on each shard (the
        // engine's cross-shard path relies on this).
        let hx = sharded.store_for(x).begin(TxId(1)).unwrap();
        let hy = sharded.store_for(y).begin(TxId(1)).unwrap();
        sharded
            .store_for(x)
            .write(hx, x, Bytes::from_static(b"a"))
            .unwrap();
        sharded.store_for(x).commit(hx, false).unwrap();
        // Shard of y never heard of the write, and its commit counter is
        // untouched.
        assert_eq!(sharded.store_for(y).current_ts(), 0);
        sharded.store_for(y).abort(hy).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedStore::new(0, 4, Bytes::from_static(b"0"));
    }
}
