//! Pluggable online admission control.
//!
//! A [`Certifier`] is the engine-facing form of the paper's on-line
//! scheduler: it sees every step in arrival order, accepts or rejects it,
//! and for accepted reads says *how* the read is served (latest committed
//! version, snapshot-visible version, or an explicitly chosen version — the
//! version function made operational).  Unlike the schedule-level
//! [`Scheduler`] trait it is also told about commits, because an
//! interactive engine knows ends of transactions only when sessions
//! announce them.
//!
//! Two implementations cover the whole of Figure 1:
//!
//! * [`SchedulerCertifier`] wraps any [`mvcc_scheduler::Scheduler`] — the
//!   zoo's 2PL (dynamic strict mode), TSO, SGT, MV-SGT and MVTO — behind
//!   the engine's admission lock;
//! * [`SnapshotCertifier`] implements snapshot isolation: reads are served
//!   by snapshot visibility, writes always admitted, and the write-write
//!   rule (first committer wins) is enforced at commit time by the store.
//!
//! [`CertifierKind`] enumerates the shipped configurations and names the
//! correctness class ([`HistoryClass`]) each one guarantees for its
//! committed histories, which is exactly what the end-to-end loop test
//! verifies with the offline classifiers.

use mvcc_core::{Schedule, Step, TxId, VersionSource};
use mvcc_scheduler::{
    MvSgtScheduler, MvtoScheduler, Scheduler, SgtScheduler, TimestampScheduler,
    TwoPhaseLockingScheduler,
};
use std::fmt;

/// How an admitted read is served by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPlan {
    /// The latest committed version (single-version semantics).
    Latest,
    /// The version visible to the transaction's snapshot.
    Snapshot,
    /// The version written by an explicitly chosen writer (multiversion
    /// schedulers computing the version function online).
    Version(VersionSource),
}

/// The certifier's verdict on one offered step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The step is rejected; the engine aborts the issuing transaction.
    Reject,
    /// A read step is admitted and will be served per the plan.
    Read(ReadPlan),
    /// A write step is admitted.
    Write,
}

impl Admission {
    /// `true` unless the step was rejected.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, Admission::Reject)
    }
}

/// How admission must be serialized for a certifier to stay correct.
///
/// The engine's batched pipeline routes steps through admission *lanes*;
/// the scope says how many lanes the certifier tolerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionScope {
    /// Every step must be ruled in one global order (a single lane): the
    /// certifier's state spans entities, so cross-entity arrival order
    /// matters.  This is what makes the recorded history a single total
    /// order the offline classifiers can check.
    Global,
    /// The certifier only constrains steps *per entity* (its per-entity
    /// rulings are independent and commit-time validation handles the
    /// rest, as in snapshot isolation's first-committer-wins).  The engine
    /// may then run one admission lane per shard, so sessions touching
    /// disjoint key ranges never share an admission lock.
    PerShard,
}

/// The correctness class a certifier guarantees for the committed
/// projection of its admission history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryClass {
    /// Conflict-serializable (single-version schedulers).
    Csr,
    /// Multiversion-conflict-serializable (Theorem 1's class).
    Mvcsr,
    /// Multiversion view-serializable (the outer limit of Figure 1).
    Mvsr,
    /// Snapshot isolation: not serializable in general (write skew), so
    /// no Figure 1 class is claimed.
    SnapshotIsolation,
}

impl HistoryClass {
    /// Checks a committed history against the class with the offline
    /// `mvcc-classify` checkers.  [`HistoryClass::Mvsr`] runs the exact
    /// NP-complete search — keep such histories small.
    /// [`HistoryClass::SnapshotIsolation`] claims nothing and always
    /// passes.
    pub fn check(&self, history: &Schedule) -> bool {
        match self {
            HistoryClass::Csr => mvcc_classify::is_csr(history),
            HistoryClass::Mvcsr => mvcc_classify::is_mvcsr(history),
            HistoryClass::Mvsr => mvcc_classify::is_mvsr(history),
            HistoryClass::SnapshotIsolation => true,
        }
    }
}

impl fmt::Display for HistoryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryClass::Csr => write!(f, "CSR"),
            HistoryClass::Mvcsr => write!(f, "MVCSR"),
            HistoryClass::Mvsr => write!(f, "MVSR"),
            HistoryClass::SnapshotIsolation => write!(f, "SI"),
        }
    }
}

/// Online admission control for the engine.
///
/// Implementations must be `Send`: the engine moves the certifier behind
/// its admission mutex and calls it from every session thread.
pub trait Certifier: Send {
    /// Human-readable name used in tables and reports.
    fn name(&self) -> &'static str;

    /// The class guaranteed for committed histories.
    fn class(&self) -> HistoryClass;

    /// Offers the next step in arrival order.
    fn admit(&mut self, step: Step) -> Admission;

    /// Rules on a whole batch of steps at once, one verdict per step in
    /// order.
    ///
    /// The batched admission pipeline drains its queue into this hook, so
    /// a contended engine pays one virtual dispatch (and one lock
    /// acquisition) per *batch* instead of per step.  Semantically the
    /// batch MUST be ruled exactly as if [`Certifier::admit`] had been
    /// called on each step in sequence — the default does that loop, and
    /// the differential tests hold every override to it.
    fn admit_batch(&mut self, steps: &[Step]) -> Vec<Admission> {
        steps.iter().map(|&step| self.admit(step)).collect()
    }

    /// How admission may be partitioned (see [`AdmissionScope`]).  Default:
    /// one global lane, the safe choice for any stateful certifier.
    fn admission_scope(&self) -> AdmissionScope {
        AdmissionScope::Global
    }

    /// Notifies the certifier that `tx` committed.
    fn on_commit(&mut self, tx: TxId);

    /// Notifies the certifier that `tx` aborted; its admitted steps are
    /// undone.
    fn on_abort(&mut self, tx: TxId);

    /// `true` if commits must additionally pass the store-level
    /// first-committer-wins validation (snapshot isolation).
    fn validates_writes_at_commit(&self) -> bool {
        false
    }
}

/// Adapts a schedule-level [`Scheduler`] into a [`Certifier`].
///
/// Single-version schedulers (those with `is_multiversion() == false`)
/// never assign versions, so their admitted reads are served
/// [`ReadPlan::Latest`]; multiversion schedulers' version assignments are
/// forwarded as [`ReadPlan::Version`].
#[derive(Debug)]
pub struct SchedulerCertifier<S: Scheduler> {
    inner: S,
    name: &'static str,
    class: HistoryClass,
}

impl<S: Scheduler> SchedulerCertifier<S> {
    /// Wraps `scheduler`, declaring the class its committed histories
    /// belong to.
    pub fn new(scheduler: S, name: &'static str, class: HistoryClass) -> Self {
        SchedulerCertifier {
            inner: scheduler,
            name,
            class,
        }
    }
}

impl<S: Scheduler + Send> Certifier for SchedulerCertifier<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn class(&self) -> HistoryClass {
        self.class
    }

    fn admit(&mut self, step: Step) -> Admission {
        let decision = self.inner.offer(step);
        decision_to_admission(step, decision)
    }

    fn admit_batch(&mut self, steps: &[Step]) -> Vec<Admission> {
        // One dispatch into the scheduler for the whole batch; schedulers
        // with a real batch rule (TO's per-entity pass) take over here.
        self.inner
            .offer_batch(steps)
            .into_iter()
            .zip(steps)
            .map(|(decision, &step)| decision_to_admission(step, decision))
            .collect()
    }

    fn on_commit(&mut self, tx: TxId) {
        self.inner.commit(tx);
    }

    fn on_abort(&mut self, tx: TxId) {
        self.inner.abort(tx);
    }
}

/// Maps a scheduler [`Decision`](mvcc_scheduler::Decision) on `step` to the
/// engine's [`Admission`].
fn decision_to_admission(step: Step, decision: mvcc_scheduler::Decision) -> Admission {
    if !decision.is_accept() {
        return Admission::Reject;
    }
    if step.is_read() {
        match decision.read_from() {
            Some(source) => Admission::Read(ReadPlan::Version(source)),
            None => Admission::Read(ReadPlan::Latest),
        }
    } else {
        Admission::Write
    }
}

/// Snapshot isolation: every read is served from the transaction's
/// snapshot, every write is admitted, and write-write conflicts are caught
/// at commit by the store's first-committer-wins validation.
#[derive(Debug, Default)]
pub struct SnapshotCertifier;

impl SnapshotCertifier {
    /// Creates a snapshot-isolation certifier.
    pub fn new() -> Self {
        SnapshotCertifier
    }
}

impl Certifier for SnapshotCertifier {
    fn name(&self) -> &'static str {
        "si"
    }

    fn class(&self) -> HistoryClass {
        HistoryClass::SnapshotIsolation
    }

    fn admit(&mut self, step: Step) -> Admission {
        if step.is_read() {
            Admission::Read(ReadPlan::Snapshot)
        } else {
            Admission::Write
        }
    }

    fn admit_batch(&mut self, steps: &[Step]) -> Vec<Admission> {
        // SI admits everything and never consults admission state, so a
        // batch is validated in one stateless pass.
        steps
            .iter()
            .map(|step| {
                if step.is_read() {
                    Admission::Read(ReadPlan::Snapshot)
                } else {
                    Admission::Write
                }
            })
            .collect()
    }

    fn admission_scope(&self) -> AdmissionScope {
        // FCW only needs per-entity ordering (validation happens at commit
        // against committed versions), so disjoint key ranges can be
        // admitted on disjoint lanes.
        AdmissionScope::PerShard
    }

    fn on_commit(&mut self, _tx: TxId) {}

    fn on_abort(&mut self, _tx: TxId) {}

    fn validates_writes_at_commit(&self) -> bool {
        true
    }
}

/// The certifier configurations the engine ships, one per row of the
/// paper's scheduler comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifierKind {
    /// Strict two-phase locking (dynamic mode: locks released at commit).
    TwoPhaseLocking,
    /// Single-version timestamp ordering.
    Timestamp,
    /// Serialization-graph testing.
    Sgt,
    /// Multiversion serialization-graph testing (the paper's generic
    /// MVCSR scheduler).
    MvSgt,
    /// Multiversion timestamp ordering (Reed's scheme).
    Mvto,
    /// Snapshot isolation with first-committer-wins.
    SnapshotIsolation,
}

impl CertifierKind {
    /// All shipped configurations, in comparison-table order.
    pub fn all() -> [CertifierKind; 6] {
        [
            CertifierKind::TwoPhaseLocking,
            CertifierKind::Timestamp,
            CertifierKind::Sgt,
            CertifierKind::MvSgt,
            CertifierKind::Mvto,
            CertifierKind::SnapshotIsolation,
        ]
    }

    /// The class the configuration guarantees for committed histories.
    pub fn class(&self) -> HistoryClass {
        match self {
            CertifierKind::TwoPhaseLocking | CertifierKind::Timestamp | CertifierKind::Sgt => {
                HistoryClass::Csr
            }
            CertifierKind::MvSgt => HistoryClass::Mvcsr,
            CertifierKind::Mvto => HistoryClass::Mvsr,
            CertifierKind::SnapshotIsolation => HistoryClass::SnapshotIsolation,
        }
    }

    /// The certifier's short name (matches `Certifier::name`).
    pub fn name(&self) -> &'static str {
        match self {
            CertifierKind::TwoPhaseLocking => "2pl",
            CertifierKind::Timestamp => "tso",
            CertifierKind::Sgt => "sgt",
            CertifierKind::MvSgt => "mv-sgt",
            CertifierKind::Mvto => "mvto",
            CertifierKind::SnapshotIsolation => "si",
        }
    }

    /// Builds a fresh certifier of this kind.
    pub fn build(&self) -> Box<dyn Certifier> {
        match self {
            CertifierKind::TwoPhaseLocking => Box::new(SchedulerCertifier::new(
                TwoPhaseLockingScheduler::new_dynamic(),
                "2pl",
                HistoryClass::Csr,
            )),
            CertifierKind::Timestamp => Box::new(SchedulerCertifier::new(
                TimestampScheduler::new(),
                "tso",
                HistoryClass::Csr,
            )),
            CertifierKind::Sgt => Box::new(SchedulerCertifier::new(
                SgtScheduler::new(),
                "sgt",
                HistoryClass::Csr,
            )),
            CertifierKind::MvSgt => Box::new(SchedulerCertifier::new(
                MvSgtScheduler::new(),
                "mv-sgt",
                HistoryClass::Mvcsr,
            )),
            CertifierKind::Mvto => Box::new(SchedulerCertifier::new(
                MvtoScheduler::new(),
                "mvto",
                HistoryClass::Mvsr,
            )),
            CertifierKind::SnapshotIsolation => Box::new(SnapshotCertifier::new()),
        }
    }
}

impl fmt::Display for CertifierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::{EntityId, Schedule};

    const X: EntityId = EntityId(0);

    #[test]
    fn scheduler_certifier_forwards_decisions_and_versions() {
        let mut c = CertifierKind::Mvto.build();
        // An old reader gets the initial version explicitly (MVTO's version
        // function surfacing through the certifier).
        let s = Schedule::parse("Ra(y) Wb(x) Ra(x)").unwrap();
        assert!(matches!(
            c.admit(s.steps()[0]),
            Admission::Read(ReadPlan::Version(_))
        ));
        assert_eq!(c.admit(s.steps()[1]), Admission::Write);
        assert_eq!(
            c.admit(s.steps()[2]),
            Admission::Read(ReadPlan::Version(VersionSource::Initial))
        );
    }

    #[test]
    fn single_version_certifiers_read_latest() {
        for kind in [
            CertifierKind::TwoPhaseLocking,
            CertifierKind::Timestamp,
            CertifierKind::Sgt,
        ] {
            let mut c = kind.build();
            assert_eq!(c.class(), HistoryClass::Csr);
            assert!(!c.validates_writes_at_commit());
            assert_eq!(
                c.admit(Step::read(TxId(1), X)),
                Admission::Read(ReadPlan::Latest),
                "{kind} serves latest"
            );
        }
    }

    #[test]
    fn two_phase_certifier_releases_locks_on_commit() {
        let mut c = CertifierKind::TwoPhaseLocking.build();
        assert_eq!(c.admit(Step::write(TxId(1), X)), Admission::Write);
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Reject);
        c.on_commit(TxId(1));
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Write);
    }

    #[test]
    fn snapshot_certifier_admits_everything_until_commit() {
        let mut c = CertifierKind::SnapshotIsolation.build();
        assert!(c.validates_writes_at_commit());
        assert_eq!(
            c.admit(Step::read(TxId(1), X)),
            Admission::Read(ReadPlan::Snapshot)
        );
        assert_eq!(c.admit(Step::write(TxId(1), X)), Admission::Write);
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Write);
    }

    #[test]
    fn kinds_report_classes_and_names() {
        assert_eq!(CertifierKind::all().len(), 6);
        for kind in CertifierKind::all() {
            let c = kind.build();
            assert_eq!(c.name(), kind.name());
            assert_eq!(c.class(), kind.class());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(CertifierKind::MvSgt.class().to_string(), "MVCSR");
    }

    #[test]
    fn admit_batch_matches_sequential_admits_for_every_kind() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for kind in CertifierKind::all() {
            let mut rng = SmallRng::seed_from_u64(0xadc0 ^ kind.name().len() as u64);
            for trial in 0..24 {
                let steps: Vec<Step> = (0..18)
                    .map(|_| {
                        let tx = TxId(rng.gen_range(1..5u32));
                        let entity = mvcc_core::EntityId(rng.gen_range(0..3u32));
                        if rng.gen_bool(0.6) {
                            Step::read(tx, entity)
                        } else {
                            Step::write(tx, entity)
                        }
                    })
                    .collect();
                let mut batched = kind.build();
                let mut sequential = kind.build();
                let mut cursor = 0;
                while cursor < steps.len() {
                    let end = (cursor + rng.gen_range(1..5usize)).min(steps.len());
                    let batch = &steps[cursor..end];
                    let got = batched.admit_batch(batch);
                    let want: Vec<Admission> = batch.iter().map(|&s| sequential.admit(s)).collect();
                    assert_eq!(got, want, "{kind} trial {trial}, steps {cursor}..{end}");
                    cursor = end;
                }
            }
        }
    }

    #[test]
    fn admission_scopes_are_global_except_snapshot_isolation() {
        for kind in CertifierKind::all() {
            let expected = if kind == CertifierKind::SnapshotIsolation {
                AdmissionScope::PerShard
            } else {
                AdmissionScope::Global
            };
            assert_eq!(kind.build().admission_scope(), expected, "{kind}");
        }
    }

    #[test]
    fn history_class_checks_dispatch_to_classifiers() {
        let csr = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(HistoryClass::Csr.check(&csr));
        let not_even_mvsr = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!HistoryClass::Mvsr.check(&not_even_mvsr));
        assert!(HistoryClass::SnapshotIsolation.check(&not_even_mvsr));
    }
}
