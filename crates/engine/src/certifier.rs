//! Pluggable online admission control.
//!
//! A [`Certifier`] is the engine-facing form of the paper's on-line
//! scheduler: it sees every step in arrival order, accepts or rejects it,
//! and for accepted reads says *how* the read is served (latest committed
//! version, snapshot-visible version, or an explicitly chosen version — the
//! version function made operational).  Unlike the schedule-level
//! [`Scheduler`] trait it is also told about commits, because an
//! interactive engine knows ends of transactions only when sessions
//! announce them.
//!
//! Two implementations cover the whole of Figure 1:
//!
//! * [`SchedulerCertifier`] wraps any [`mvcc_scheduler::Scheduler`] — the
//!   zoo's 2PL (dynamic strict mode), TSO, SGT, MV-SGT and MVTO — behind
//!   the engine's admission lock;
//! * [`SnapshotCertifier`] implements snapshot isolation: reads are served
//!   by snapshot visibility, writes always admitted, and the write-write
//!   rule (first committer wins) is enforced at commit time by the store.
//!
//! [`CertifierKind`] enumerates the shipped configurations and names the
//! correctness class ([`HistoryClass`]) each one guarantees for its
//! committed histories, which is exactly what the end-to-end loop test
//! verifies with the offline classifiers.

use mvcc_core::{Schedule, Step, TxId, VersionSource};
use mvcc_scheduler::{
    MvSgtScheduler, MvtoScheduler, Scheduler, SgtScheduler, TimestampScheduler,
    TwoPhaseLockingScheduler,
};
use std::fmt;

/// How an admitted read is served by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPlan {
    /// The latest committed version (single-version semantics).
    Latest,
    /// The version visible to the transaction's snapshot.
    Snapshot,
    /// The version written by an explicitly chosen writer (multiversion
    /// schedulers computing the version function online).
    Version(VersionSource),
}

/// The certifier's verdict on one offered step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The step is rejected; the engine aborts the issuing transaction.
    Reject,
    /// A read step is admitted and will be served per the plan.
    Read(ReadPlan),
    /// A write step is admitted.
    Write,
}

impl Admission {
    /// `true` unless the step was rejected.
    pub fn is_admitted(&self) -> bool {
        !matches!(self, Admission::Reject)
    }
}

/// The correctness class a certifier guarantees for the committed
/// projection of its admission history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryClass {
    /// Conflict-serializable (single-version schedulers).
    Csr,
    /// Multiversion-conflict-serializable (Theorem 1's class).
    Mvcsr,
    /// Multiversion view-serializable (the outer limit of Figure 1).
    Mvsr,
    /// Snapshot isolation: not serializable in general (write skew), so
    /// no Figure 1 class is claimed.
    SnapshotIsolation,
}

impl HistoryClass {
    /// Checks a committed history against the class with the offline
    /// `mvcc-classify` checkers.  [`HistoryClass::Mvsr`] runs the exact
    /// NP-complete search — keep such histories small.
    /// [`HistoryClass::SnapshotIsolation`] claims nothing and always
    /// passes.
    pub fn check(&self, history: &Schedule) -> bool {
        match self {
            HistoryClass::Csr => mvcc_classify::is_csr(history),
            HistoryClass::Mvcsr => mvcc_classify::is_mvcsr(history),
            HistoryClass::Mvsr => mvcc_classify::is_mvsr(history),
            HistoryClass::SnapshotIsolation => true,
        }
    }
}

impl fmt::Display for HistoryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryClass::Csr => write!(f, "CSR"),
            HistoryClass::Mvcsr => write!(f, "MVCSR"),
            HistoryClass::Mvsr => write!(f, "MVSR"),
            HistoryClass::SnapshotIsolation => write!(f, "SI"),
        }
    }
}

/// Online admission control for the engine.
///
/// Implementations must be `Send`: the engine moves the certifier behind
/// its admission mutex and calls it from every session thread.
pub trait Certifier: Send {
    /// Human-readable name used in tables and reports.
    fn name(&self) -> &'static str;

    /// The class guaranteed for committed histories.
    fn class(&self) -> HistoryClass;

    /// Offers the next step in arrival order.
    fn admit(&mut self, step: Step) -> Admission;

    /// Notifies the certifier that `tx` committed.
    fn on_commit(&mut self, tx: TxId);

    /// Notifies the certifier that `tx` aborted; its admitted steps are
    /// undone.
    fn on_abort(&mut self, tx: TxId);

    /// `true` if commits must additionally pass the store-level
    /// first-committer-wins validation (snapshot isolation).
    fn validates_writes_at_commit(&self) -> bool {
        false
    }
}

/// Adapts a schedule-level [`Scheduler`] into a [`Certifier`].
///
/// Single-version schedulers (those with `is_multiversion() == false`)
/// never assign versions, so their admitted reads are served
/// [`ReadPlan::Latest`]; multiversion schedulers' version assignments are
/// forwarded as [`ReadPlan::Version`].
#[derive(Debug)]
pub struct SchedulerCertifier<S: Scheduler> {
    inner: S,
    name: &'static str,
    class: HistoryClass,
}

impl<S: Scheduler> SchedulerCertifier<S> {
    /// Wraps `scheduler`, declaring the class its committed histories
    /// belong to.
    pub fn new(scheduler: S, name: &'static str, class: HistoryClass) -> Self {
        SchedulerCertifier {
            inner: scheduler,
            name,
            class,
        }
    }
}

impl<S: Scheduler + Send> Certifier for SchedulerCertifier<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn class(&self) -> HistoryClass {
        self.class
    }

    fn admit(&mut self, step: Step) -> Admission {
        let decision = self.inner.offer(step);
        if !decision.is_accept() {
            return Admission::Reject;
        }
        if step.is_read() {
            match decision.read_from() {
                Some(source) => Admission::Read(ReadPlan::Version(source)),
                None => Admission::Read(ReadPlan::Latest),
            }
        } else {
            Admission::Write
        }
    }

    fn on_commit(&mut self, tx: TxId) {
        self.inner.commit(tx);
    }

    fn on_abort(&mut self, tx: TxId) {
        self.inner.abort(tx);
    }
}

/// Snapshot isolation: every read is served from the transaction's
/// snapshot, every write is admitted, and write-write conflicts are caught
/// at commit by the store's first-committer-wins validation.
#[derive(Debug, Default)]
pub struct SnapshotCertifier;

impl SnapshotCertifier {
    /// Creates a snapshot-isolation certifier.
    pub fn new() -> Self {
        SnapshotCertifier
    }
}

impl Certifier for SnapshotCertifier {
    fn name(&self) -> &'static str {
        "si"
    }

    fn class(&self) -> HistoryClass {
        HistoryClass::SnapshotIsolation
    }

    fn admit(&mut self, step: Step) -> Admission {
        if step.is_read() {
            Admission::Read(ReadPlan::Snapshot)
        } else {
            Admission::Write
        }
    }

    fn on_commit(&mut self, _tx: TxId) {}

    fn on_abort(&mut self, _tx: TxId) {}

    fn validates_writes_at_commit(&self) -> bool {
        true
    }
}

/// The certifier configurations the engine ships, one per row of the
/// paper's scheduler comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifierKind {
    /// Strict two-phase locking (dynamic mode: locks released at commit).
    TwoPhaseLocking,
    /// Single-version timestamp ordering.
    Timestamp,
    /// Serialization-graph testing.
    Sgt,
    /// Multiversion serialization-graph testing (the paper's generic
    /// MVCSR scheduler).
    MvSgt,
    /// Multiversion timestamp ordering (Reed's scheme).
    Mvto,
    /// Snapshot isolation with first-committer-wins.
    SnapshotIsolation,
}

impl CertifierKind {
    /// All shipped configurations, in comparison-table order.
    pub fn all() -> [CertifierKind; 6] {
        [
            CertifierKind::TwoPhaseLocking,
            CertifierKind::Timestamp,
            CertifierKind::Sgt,
            CertifierKind::MvSgt,
            CertifierKind::Mvto,
            CertifierKind::SnapshotIsolation,
        ]
    }

    /// The class the configuration guarantees for committed histories.
    pub fn class(&self) -> HistoryClass {
        match self {
            CertifierKind::TwoPhaseLocking | CertifierKind::Timestamp | CertifierKind::Sgt => {
                HistoryClass::Csr
            }
            CertifierKind::MvSgt => HistoryClass::Mvcsr,
            CertifierKind::Mvto => HistoryClass::Mvsr,
            CertifierKind::SnapshotIsolation => HistoryClass::SnapshotIsolation,
        }
    }

    /// The certifier's short name (matches `Certifier::name`).
    pub fn name(&self) -> &'static str {
        match self {
            CertifierKind::TwoPhaseLocking => "2pl",
            CertifierKind::Timestamp => "tso",
            CertifierKind::Sgt => "sgt",
            CertifierKind::MvSgt => "mv-sgt",
            CertifierKind::Mvto => "mvto",
            CertifierKind::SnapshotIsolation => "si",
        }
    }

    /// Builds a fresh certifier of this kind.
    pub fn build(&self) -> Box<dyn Certifier> {
        match self {
            CertifierKind::TwoPhaseLocking => Box::new(SchedulerCertifier::new(
                TwoPhaseLockingScheduler::new_dynamic(),
                "2pl",
                HistoryClass::Csr,
            )),
            CertifierKind::Timestamp => Box::new(SchedulerCertifier::new(
                TimestampScheduler::new(),
                "tso",
                HistoryClass::Csr,
            )),
            CertifierKind::Sgt => Box::new(SchedulerCertifier::new(
                SgtScheduler::new(),
                "sgt",
                HistoryClass::Csr,
            )),
            CertifierKind::MvSgt => Box::new(SchedulerCertifier::new(
                MvSgtScheduler::new(),
                "mv-sgt",
                HistoryClass::Mvcsr,
            )),
            CertifierKind::Mvto => Box::new(SchedulerCertifier::new(
                MvtoScheduler::new(),
                "mvto",
                HistoryClass::Mvsr,
            )),
            CertifierKind::SnapshotIsolation => Box::new(SnapshotCertifier::new()),
        }
    }
}

impl fmt::Display for CertifierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::{EntityId, Schedule};

    const X: EntityId = EntityId(0);

    #[test]
    fn scheduler_certifier_forwards_decisions_and_versions() {
        let mut c = CertifierKind::Mvto.build();
        // An old reader gets the initial version explicitly (MVTO's version
        // function surfacing through the certifier).
        let s = Schedule::parse("Ra(y) Wb(x) Ra(x)").unwrap();
        assert!(matches!(
            c.admit(s.steps()[0]),
            Admission::Read(ReadPlan::Version(_))
        ));
        assert_eq!(c.admit(s.steps()[1]), Admission::Write);
        assert_eq!(
            c.admit(s.steps()[2]),
            Admission::Read(ReadPlan::Version(VersionSource::Initial))
        );
    }

    #[test]
    fn single_version_certifiers_read_latest() {
        for kind in [
            CertifierKind::TwoPhaseLocking,
            CertifierKind::Timestamp,
            CertifierKind::Sgt,
        ] {
            let mut c = kind.build();
            assert_eq!(c.class(), HistoryClass::Csr);
            assert!(!c.validates_writes_at_commit());
            assert_eq!(
                c.admit(Step::read(TxId(1), X)),
                Admission::Read(ReadPlan::Latest),
                "{kind} serves latest"
            );
        }
    }

    #[test]
    fn two_phase_certifier_releases_locks_on_commit() {
        let mut c = CertifierKind::TwoPhaseLocking.build();
        assert_eq!(c.admit(Step::write(TxId(1), X)), Admission::Write);
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Reject);
        c.on_commit(TxId(1));
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Write);
    }

    #[test]
    fn snapshot_certifier_admits_everything_until_commit() {
        let mut c = CertifierKind::SnapshotIsolation.build();
        assert!(c.validates_writes_at_commit());
        assert_eq!(
            c.admit(Step::read(TxId(1), X)),
            Admission::Read(ReadPlan::Snapshot)
        );
        assert_eq!(c.admit(Step::write(TxId(1), X)), Admission::Write);
        assert_eq!(c.admit(Step::write(TxId(2), X)), Admission::Write);
    }

    #[test]
    fn kinds_report_classes_and_names() {
        assert_eq!(CertifierKind::all().len(), 6);
        for kind in CertifierKind::all() {
            let c = kind.build();
            assert_eq!(c.name(), kind.name());
            assert_eq!(c.class(), kind.class());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(CertifierKind::MvSgt.class().to_string(), "MVCSR");
    }

    #[test]
    fn history_class_checks_dispatch_to_classifiers() {
        let csr = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(HistoryClass::Csr.check(&csr));
        let not_even_mvsr = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!HistoryClass::Mvsr.check(&not_even_mvsr));
        assert!(HistoryClass::SnapshotIsolation.check(&not_even_mvsr));
    }
}
