//! # mvcc-engine
//!
//! A concurrent, sharded, multi-session MVCC transaction engine: the
//! paper's scheduling theory put under real multi-threaded load.
//!
//! The theory crates replay *one schedule at a time*; the introduction's
//! claim that multiversion schedulers buy "enhanced performance" is about
//! what happens when many transactions arrive concurrently.  This crate
//! closes that gap:
//!
//! * [`shard`] — an [`MvStore`](mvcc_store::MvStore) per key-range shard
//!   with a cross-shard commit path, so storage scales with cores instead
//!   of serializing on one chain map;
//! * [`certifier`] — the [`Certifier`] trait: pluggable online admission
//!   control.  [`SchedulerCertifier`] adapts any
//!   [`mvcc_scheduler::Scheduler`] (2PL, TSO, SGT, MV-SGT, MVTO) into the
//!   engine, and [`SnapshotCertifier`] adds snapshot isolation with
//!   first-committer-wins, so the same engine runs in every class of the
//!   paper's Figure 1;
//! * [`pipeline`] — the batched, group-commit admission pipeline: steps
//!   are enqueued and ruled in whole batches by a drain leader
//!   ([`Certifier::admit_batch`]), commits are applied to the shards in
//!   groups, and certifiers that only need per-entity ordering (snapshot
//!   isolation) get one admission lane per shard;
//! * [`session`] — the [`Engine`] itself and its multi-threaded session
//!   API (`begin` / `read` / `write` / `commit` / `abort`), plus the
//!   append-only admission [`History`] whose committed projection the
//!   offline `mvcc-classify` checkers validate — "theory checks the
//!   engine";
//! * [`gc`] — a background [`GcDriver`] reclaiming superseded versions
//!   under the active-snapshot watermark
//!   ([`mvcc_store::gc::collect_with_watermark`]);
//! * [`checkpoint`] — a background [`CheckpointDriver`] periodically
//!   snapshotting committed state into `mvcc-durability` checkpoint
//!   files; with [`DurabilityConfig`] on, the group-commit leader also
//!   appends each batch to the write-ahead log with one flush per batch,
//!   and [`Engine::recover`] rebuilds a crashed engine from newest
//!   checkpoint + log tail (class-preservingly — see `mvcc-durability`);
//! * [`metrics`] — committed/aborted counters, an abort-reason breakdown,
//!   a commit-latency histogram and per-shard contention counters;
//! * [`load`] — the closed-loop load harness driving the engine with
//!   `mvcc-workload` generators over a Zipfian θ sweep (experiment E12).
//!
//! ## Correctness model
//!
//! An admission lane is the serialization point: every step is admitted
//! (or rejected) on its lane — in batches, but a drain leader holds the
//! lane for the whole batch, so the admission order per lane is total —
//! and recorded in the history log in that order.  Certifiers whose class
//! depends on cross-entity order run one global lane.  Class guarantees —
//! CSR for 2PL/TSO/SGT, MVCSR for MV-SGT, MVSR for MVTO — are properties
//! of that admission sequence, checked offline by `mvcc-classify`.  Version payloads are applied to the shards
//! outside the admission lock; multiversion reads are served exactly the
//! version the certifier assigned, and the engine enforces *avoids
//! cascading aborts* (ACA): a read directed at a version whose writer has
//! not committed aborts the reader instead of observing dirty data, which
//! is also what makes MVTO's committed history provably MVSR.
//!
//! ## Quick example
//!
//! ```
//! use mvcc_engine::{CertifierKind, Engine, EngineConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(Engine::new(
//!     CertifierKind::Mvto,
//!     EngineConfig { shards: 2, entities: 8, ..EngineConfig::default() },
//! ));
//! let mut session = engine.begin();
//! let x = mvcc_core::EntityId(0);
//! let old = session.read(x).unwrap();
//! session.write(x, mvcc_engine::Bytes::from(format!("{old:?}+1"))).unwrap();
//! session.commit().unwrap();
//! assert_eq!(engine.metrics().snapshot().committed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certifier;
pub mod checkpoint;
pub mod gc;
pub mod health;
pub mod load;
pub mod metrics;
pub mod pipeline;
pub mod session;
pub mod shard;
pub mod watchdog;

pub use certifier::{
    Admission, AdmissionScope, Certifier, CertifierKind, HistoryClass, ReadPlan,
    SchedulerCertifier, SnapshotCertifier,
};
pub use checkpoint::CheckpointDriver;
pub use gc::GcDriver;
pub use health::{
    failover_mttr, Alarm, AnomalyDetector, AnomalyKind, ClusterHealth, DetectorConfig,
    EngineSampler, HealthConfig, HealthMonitor, MemberHealth, MemberProbe,
};
pub use load::{
    run_closed_loop, run_closed_loop_instrumented, run_closed_loop_monitored,
    run_closed_loop_traced, LoadReport,
};
pub use metrics::{AbortReason, EngineMetrics, MetricsSnapshot};
pub use pipeline::{AdmissionMode, ChaosHook, KillSite};
pub use session::{Engine, EngineConfig, EngineError, History, Session};
pub use shard::ShardedStore;
pub use watchdog::{ClassificationWatchdog, WatchdogConfig, WatchdogStats};

// Re-export the durability surface so engine users configure and recover
// without naming the durability crate directly.
pub use mvcc_durability::{DurabilityConfig, DurabilityMode, RecoveryReport};

// Re-export the telemetry surface so engine users switch tracing on and
// read per-stage snapshots without naming the telemetry crate directly.
pub use mvcc_telemetry::{
    metrics_text, parse_jsonl, write_jsonl, EventKind, ExemplarReservoir, FlightRecorder,
    FrameSource, HistogramSnapshot, QuantileSummary, ReplicaFrame, SpanRecord, Stage,
    StageSnapshot, Telemetry, TelemetryMode, TelemetrySnapshot, TimelineFrame, TimelineRecorder,
    TimelineRing, TraceEvent, TraceId, TraceLog, TraceTree,
};

// Re-export the value type so callers construct payloads with the exact
// type the store expects (same convention as `mvcc-store`).
pub use bytes::Bytes;
