//! The batched, group-commit admission pipeline.
//!
//! PR 2's engine ruled on every read/write step under one global admission
//! mutex — correct, but a serialization point that kept throughput flat no
//! matter how many threads or shards were added.  This module restructures
//! that hottest path around *batching* (flat combining):
//!
//! * sessions no longer rule on their own steps; they **enqueue** a step
//!   request into an admission lane's queue (a short critical section) and
//!   then contend for the lane's state lock;
//! * whoever acquires the state lock becomes the **drain leader**: it
//!   drains the whole backlog and rules on it in one call to
//!   [`Certifier::admit_batch`], resolves read plans / ACA / write chains
//!   for the batch, appends the admitted run to the history log, fills
//!   every waiter's outcome slot, and releases; the other sessions wake,
//!   find their verdict already computed, and proceed without ever touching
//!   the certifier.
//!
//! Under contention a lane therefore pays one lock acquisition, one
//! virtual dispatch and one history append per *batch* instead of per
//! step; uncontended it degenerates to the old per-step cost.  The
//! admitted order is still a single total order per lane — the leader
//! rules batches sequentially while holding the lane lock — so the
//! append-only history and its class guarantees carry over unchanged (the
//! end-to-end `engine_loop` test re-proves this per certifier).
//!
//! Commits take the same shape: a **group-commit lane** whose leader
//! applies a whole batch of commits to the shards in groups
//! ([`ShardedStore::commit_group`] takes each store's transaction-table
//! lock once per group) before notifying the certifiers, preserving the
//! "shard commits before the certifier hears about them" rule.
//!
//! Certifiers that only need per-entity ordering declare
//! [`AdmissionScope::PerShard`] (snapshot isolation's first-committer-wins)
//! and get one admission lane per shard, so sessions touching disjoint
//! key ranges never share an admission lock at all.
//!
//! [`AdmissionMode::PerStep`] keeps the PR 2 path alive behind the same
//! interface — one ruling per lock acquisition, no queue — so benches can
//! report pipeline-on vs. pipeline-off side by side (experiment E13).

use crate::certifier::{Admission, AdmissionScope, Certifier, CertifierKind, ReadPlan};
use crate::metrics::EngineMetrics;
use crate::session::History;
use crate::shard::ShardedStore;
use mvcc_core::{EntityId, Step, TxId, VersionSource};
use mvcc_store::{StoreError, TxHandle};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// How the engine serializes admission rulings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Every step is ruled under the lane lock by the session issuing it
    /// (the PR 2 path, kept for comparison benchmarks).
    PerStep,
    /// Steps are enqueued and ruled in batches by a drain leader via
    /// [`Certifier::admit_batch`]; commits are applied to the shards in
    /// groups.  The default.
    #[default]
    Batched,
}

impl fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionMode::PerStep => write!(f, "per-step"),
            AdmissionMode::Batched => write!(f, "batched"),
        }
    }
}

/// The engine-internal verdict on one submitted step, with read plans
/// already resolved against the admitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Admitted; `Some(plan)` for reads, `None` for writes.
    Admitted(Option<ReadPlan>),
    /// The certifier rejected the step; its lane has already been told of
    /// the abort.
    Rejected,
    /// The resolved read would have observed the uncommitted version of
    /// the contained writer (ACA); the lane has already been told of the
    /// abort.
    DirtyRead(TxId),
}

/// The engine-internal verdict on one submitted commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CommitOutcome {
    /// Committed on every touched shard; certifiers notified.
    Committed,
    /// First-committer-wins validation failed on the contained entity
    /// against the contained winner.  The session must abort itself.
    Conflict(EntityId, TxId),
    /// An unexpected store-level failure (a bug if it ever surfaces).
    Store(StoreError),
}

/// The append-only admission history, shared by all lanes.
///
/// With a single global lane the appends happen in ruling order under the
/// lane lock, so the log is exactly the certifier's admission sequence.
/// Per-shard lanes interleave their batches arbitrarily, which is only
/// offered to certifiers whose class claims nothing about cross-entity
/// order (snapshot isolation).
#[derive(Debug)]
pub(crate) struct HistoryLog {
    record: bool,
    admitted: Mutex<Vec<Step>>,
    committed: Mutex<BTreeSet<TxId>>,
}

impl HistoryLog {
    pub(crate) fn new(record: bool) -> Self {
        HistoryLog {
            record,
            admitted: Mutex::new(Vec::new()),
            committed: Mutex::new(BTreeSet::new()),
        }
    }

    /// Appends one ruled batch's admitted steps (no-op when recording is
    /// off).
    fn append_batch(&self, steps: &[Step]) {
        if self.record && !steps.is_empty() {
            self.admitted.lock().extend_from_slice(steps);
        }
    }

    /// Records a batch of commits.
    fn commit_all(&self, txs: &[TxId]) {
        if !txs.is_empty() {
            let mut committed = self.committed.lock();
            for &tx in txs {
                committed.insert(tx);
            }
        }
    }

    /// A point-in-time copy.  The committed set is cloned *before* the
    /// admitted log: steps are always appended before their transaction
    /// can commit, so this order can never observe a committed transaction
    /// whose steps are missing from the log (the opposite order could).
    pub(crate) fn snapshot(&self) -> History {
        let committed = self.committed.lock().clone();
        let admitted = self.admitted.lock().clone();
        History {
            admitted,
            committed,
        }
    }
}

/// One step request parked in a lane queue: the step plus the slot its
/// outcome is delivered through.
#[derive(Debug)]
struct StepRequest {
    step: Step,
    outcome: Mutex<Option<StepOutcome>>,
}

/// One commit request parked in the group-commit queue.
#[derive(Debug)]
struct CommitRequest {
    tx: TxId,
    begun_shards: Vec<bool>,
    outcome: Mutex<Option<CommitOutcome>>,
}

/// Everything that must change atomically with a certifier ruling on one
/// lane.
struct LaneState {
    certifier: Box<dyn Certifier>,
    /// Transactions this lane knows to have committed (mirrors the shared
    /// history; consulted by the ACA rule and write-chain pruning).
    committed: BTreeSet<TxId>,
    /// Admitted writers per entity, in admission order (aborted writers
    /// removed, committed prefixes pruned).  This is how the engine
    /// resolves [`ReadPlan::Latest`] into the version the *admitted
    /// sequence* dictates — the last admitted write — instead of whatever
    /// happens to be committed in the store when the read executes, which
    /// could tell a different story than the history the classifiers
    /// certify.
    write_chains: HashMap<EntityId, Vec<TxId>>,
}

impl LaneState {
    /// Records an admitted write of `entity` by `tx` and prunes the chain:
    /// every entry before the last *committed* one can never again be the
    /// last admitted write (commits are never undone, aborts only remove
    /// their own entries), so only the committed tail entry plus the
    /// in-flight writers after it are kept.
    fn record_write(&mut self, entity: EntityId, tx: TxId) {
        let chain = self.write_chains.entry(entity).or_default();
        chain.push(tx);
        if let Some(last_committed) = chain.iter().rposition(|w| self.committed.contains(w)) {
            chain.drain(..last_committed);
        }
    }

    /// The version the last admitted write of `entity` created, or the
    /// initial version when nothing has been admitted (store pre-seed).
    fn latest_admitted(&self, entity: EntityId) -> VersionSource {
        match self.write_chains.get(&entity).and_then(|c| c.last()) {
            Some(&w) => VersionSource::Tx(w),
            None => VersionSource::Initial,
        }
    }

    /// Removes an aborted transaction's entries from every write chain.
    fn purge_writer(&mut self, tx: TxId) {
        for chain in self.write_chains.values_mut() {
            chain.retain(|&w| w != tx);
        }
    }

    /// Tells the certifier `tx` aborted and purges its write-chain entries.
    fn on_abort(&mut self, tx: TxId) {
        self.certifier.on_abort(tx);
        self.purge_writer(tx);
    }

    /// Converts one certifier ruling into a resolved [`StepOutcome`],
    /// updating lane state exactly as the per-step path would.  Admitted
    /// steps are pushed onto `admitted` (the batch's history append).
    fn resolve(
        &mut self,
        step: Step,
        admission: Admission,
        admitted: &mut Vec<Step>,
    ) -> StepOutcome {
        match admission {
            Admission::Reject => {
                self.on_abort(step.tx);
                StepOutcome::Rejected
            }
            admitted_as if step.is_read() => {
                let Admission::Read(plan) = admitted_as else {
                    unreachable!("read step admitted as write")
                };
                // Single-version certifiers mean "the latest version" in
                // the model's sense: the last *admitted* write.  Resolve it
                // here, at the lane's serialization point, so the value
                // served always matches the history being recorded.
                let plan = match plan {
                    ReadPlan::Latest => ReadPlan::Version(self.latest_admitted(step.entity)),
                    other => other,
                };
                // ACA: refuse to observe a version whose writer has not
                // committed (reading own writes is always fine).
                if let ReadPlan::Version(VersionSource::Tx(writer)) = plan {
                    if writer != step.tx && !self.committed.contains(&writer) {
                        self.on_abort(step.tx);
                        return StepOutcome::DirtyRead(writer);
                    }
                }
                admitted.push(step);
                StepOutcome::Admitted(Some(plan))
            }
            _ => {
                self.record_write(step.entity, step.tx);
                admitted.push(step);
                StepOutcome::Admitted(None)
            }
        }
    }
}

/// One admission lane: a request queue plus the state its drain leader
/// rules under.
struct Lane {
    queue: Mutex<Vec<Arc<StepRequest>>>,
    state: Mutex<LaneState>,
}

impl Lane {
    fn new(certifier: Box<dyn Certifier>) -> Self {
        Lane {
            queue: Mutex::new(Vec::new()),
            state: Mutex::new(LaneState {
                certifier,
                committed: BTreeSet::new(),
                write_chains: HashMap::new(),
            }),
        }
    }
}

/// The group-commit lane: a commit queue plus the drain lock its leader
/// holds while applying a batch (also what makes cross-shard
/// first-committer-wins validate+commit atomic against other committers).
struct CommitLane {
    queue: Mutex<Vec<Arc<CommitRequest>>>,
    drain: Mutex<()>,
}

/// The admission pipeline: admission lanes (one, or one per shard) plus
/// the group-commit lane.
pub(crate) struct AdmissionPipeline {
    mode: AdmissionMode,
    lanes: Vec<Lane>,
    commit: CommitLane,
    /// Cached [`Certifier::validates_writes_at_commit`] (a static property
    /// of the certifier kind; caching keeps it off the commit hot path).
    validates_at_commit: bool,
}

impl fmt::Debug for AdmissionPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionPipeline")
            .field("mode", &self.mode)
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl AdmissionPipeline {
    /// Builds the pipeline for `kind`: one global lane, or one lane per
    /// shard when the certifier declares [`AdmissionScope::PerShard`].
    ///
    /// [`AdmissionMode::PerStep`] always gets a single lane: it exists to
    /// reproduce the PR 2 baseline — one global admission mutex — for the
    /// E13 on/off comparison, and per-shard lanes are part of the
    /// pipeline being compared against, not of that baseline.
    pub(crate) fn new(kind: CertifierKind, shards: usize, mode: AdmissionMode) -> Self {
        let first = kind.build();
        let validates_at_commit = first.validates_writes_at_commit();
        let lane_count = match (mode, first.admission_scope()) {
            (AdmissionMode::PerStep, _) | (_, AdmissionScope::Global) => 1,
            (AdmissionMode::Batched, AdmissionScope::PerShard) => shards,
        };
        let mut lanes = Vec::with_capacity(lane_count);
        lanes.push(Lane::new(first));
        while lanes.len() < lane_count {
            lanes.push(Lane::new(kind.build()));
        }
        AdmissionPipeline {
            mode,
            lanes,
            commit: CommitLane {
                queue: Mutex::new(Vec::new()),
                drain: Mutex::new(()),
            },
            validates_at_commit,
        }
    }

    /// The configured admission mode.
    pub(crate) fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// Number of admission lanes (1 unless the certifier is per-shard).
    pub(crate) fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane ruling on `entity` for a store sharded `shards` ways.
    fn lane_of(&self, entity: EntityId, shards: &ShardedStore) -> usize {
        if self.lanes.len() == 1 {
            0
        } else {
            shards.shard_of(entity) % self.lanes.len()
        }
    }

    /// Submits one step and blocks until a verdict is available.
    ///
    /// In [`AdmissionMode::Batched`] the step is enqueued; the session then
    /// contends for the lane lock, and either finds its verdict already
    /// filled in by another leader or becomes the leader and rules the
    /// whole backlog (its own step included) in one
    /// [`Certifier::admit_batch`] call.
    pub(crate) fn submit_step(
        &self,
        step: Step,
        shards: &ShardedStore,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) -> StepOutcome {
        let lane = &self.lanes[self.lane_of(step.entity, shards)];
        match self.mode {
            AdmissionMode::PerStep => {
                let mut state = lane.state.lock();
                let admission = state.certifier.admit(step);
                let mut admitted = Vec::with_capacity(1);
                let outcome = state.resolve(step, admission, &mut admitted);
                history.append_batch(&admitted);
                outcome
            }
            AdmissionMode::Batched => {
                // Fast path: the lane is free — rule right away (draining
                // any backlog first), without parking a request.  This
                // keeps the uncontended cost at the per-step baseline;
                // batching engages exactly when the lane is actually
                // contended.
                if let Some(mut state) = lane.state.try_lock() {
                    let queued = std::mem::take(&mut *lane.queue.lock());
                    return Self::lead_batch(&mut state, &queued, Some(step), history, metrics)
                        .expect("own step is part of the batch");
                }
                // Slow path: park the step and contend for the lane.
                // Either a leader rules on us while we wait, or we acquire
                // the lane ourselves and drain the whole backlog (our own
                // request included) in one certifier call.
                let request = Arc::new(StepRequest {
                    step,
                    outcome: Mutex::new(None),
                });
                lane.queue.lock().push(Arc::clone(&request));
                loop {
                    // A previous leader may have ruled on us already.
                    if let Some(outcome) = request.outcome.lock().take() {
                        return outcome;
                    }
                    let mut state = lane.state.lock();
                    if let Some(outcome) = request.outcome.lock().take() {
                        return outcome;
                    }
                    // We hold the lane and have no verdict, so our request
                    // is still queued (leaders fill every drained slot
                    // before releasing): become the drain leader.
                    let queued = std::mem::take(&mut *lane.queue.lock());
                    let _ = Self::lead_batch(&mut state, &queued, None, history, metrics);
                    drop(state);
                }
            }
        }
    }

    /// Rules one batch — the parked `queued` requests plus, optionally,
    /// the leader's `own` step — in a single certifier call, filling every
    /// parked outcome slot and returning the leader's own outcome.  Runs
    /// under the lane lock; the history append happens before release so
    /// batches land in ruling order.
    fn lead_batch(
        state: &mut LaneState,
        queued: &[Arc<StepRequest>],
        own: Option<Step>,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) -> Option<StepOutcome> {
        if queued.is_empty() {
            // Uncontended: a batch of exactly our own step, ruled without
            // building batch vectors.
            let step = own?;
            let admission = state.certifier.admit(step);
            let mut admitted = Vec::with_capacity(1);
            let outcome = state.resolve(step, admission, &mut admitted);
            history.append_batch(&admitted);
            metrics.record_admission_batch(1);
            return Some(outcome);
        }
        let mut steps: Vec<Step> = queued.iter().map(|r| r.step).collect();
        if let Some(step) = own {
            steps.push(step);
        }
        let admissions = state.certifier.admit_batch(&steps);
        debug_assert_eq!(admissions.len(), steps.len());
        let mut admitted = Vec::with_capacity(steps.len());
        let mut own_outcome = None;
        for (i, admission) in admissions.into_iter().enumerate() {
            let outcome = state.resolve(steps[i], admission, &mut admitted);
            match queued.get(i) {
                Some(request) => *request.outcome.lock() = Some(outcome),
                None => own_outcome = Some(outcome),
            }
        }
        history.append_batch(&admitted);
        metrics.record_admission_batch(steps.len());
        own_outcome
    }

    /// Submits a commit and blocks until it has been applied (or refused)
    /// by a group-commit leader.
    pub(crate) fn submit_commit(
        &self,
        tx: TxId,
        begun_shards: &[bool],
        shards: &ShardedStore,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) -> CommitOutcome {
        match self.mode {
            AdmissionMode::PerStep => {
                let request = CommitRequest {
                    tx,
                    begun_shards: begun_shards.to_vec(),
                    outcome: Mutex::new(None),
                };
                // Matches the PR 2 baseline: only first-committer-wins
                // commits serialize on the commit lock (validate+commit
                // atomicity); plain commits go straight to the shards.
                let _drain = self.validates_at_commit.then(|| self.commit.drain.lock());
                self.process_commit_batch(&[&request], shards, history);
                let outcome = request
                    .outcome
                    .lock()
                    .take()
                    .expect("commit batch fills every slot");
                outcome
            }
            AdmissionMode::Batched => {
                // Fast path: the drain is free — apply right away (with
                // any parked backlog), without parking a request.
                if let Some(_drain) = self.commit.drain.try_lock() {
                    let queued = std::mem::take(&mut *self.commit.queue.lock());
                    let own = CommitRequest {
                        tx,
                        begun_shards: begun_shards.to_vec(),
                        outcome: Mutex::new(None),
                    };
                    let mut refs: Vec<&CommitRequest> = queued.iter().map(Arc::as_ref).collect();
                    refs.push(&own);
                    let committed = self.process_commit_batch(&refs, shards, history);
                    metrics.record_commit_batch(committed);
                    let outcome = own
                        .outcome
                        .lock()
                        .take()
                        .expect("commit batch fills every slot");
                    return outcome;
                }
                let request = Arc::new(CommitRequest {
                    tx,
                    begun_shards: begun_shards.to_vec(),
                    outcome: Mutex::new(None),
                });
                self.commit.queue.lock().push(Arc::clone(&request));
                loop {
                    if let Some(outcome) = request.outcome.lock().take() {
                        return outcome;
                    }
                    let _drain = self.commit.drain.lock();
                    if let Some(outcome) = request.outcome.lock().take() {
                        return outcome;
                    }
                    let batch = std::mem::take(&mut *self.commit.queue.lock());
                    let refs: Vec<&CommitRequest> = batch.iter().map(Arc::as_ref).collect();
                    let committed = self.process_commit_batch(&refs, shards, history);
                    metrics.record_commit_batch(committed);
                }
            }
        }
    }

    /// Applies one batch of commits: shard effects first (in groups), then
    /// certifier notifications, then the history log, then the outcome
    /// slots.  Shard commits landing before `on_commit` is what lets a
    /// certifier that releases admission state at commit (2PL's locks)
    /// never expose a reader to a not-yet-applied commit.  Returns how
    /// many members actually committed (FCW losers and store refusals
    /// excluded) — the number the batch-telemetry counters record.
    fn process_commit_batch(
        &self,
        batch: &[&CommitRequest],
        shards: &ShardedStore,
        history: &HistoryLog,
    ) -> usize {
        let mut outcomes: Vec<CommitOutcome> = Vec::with_capacity(batch.len());
        if self.validates_at_commit {
            // First-committer-wins: validate every touched shard, then
            // commit them all.  Requests are processed in batch order, so
            // an earlier winner's committed versions are visible to a
            // later loser's validation; the drain lock makes the whole
            // sequence atomic against other committers.
            for request in batch {
                let handle = TxHandle { id: request.tx };
                let mut verdict = CommitOutcome::Committed;
                'validate: for (idx, &begun) in request.begun_shards.iter().enumerate() {
                    if !begun {
                        continue;
                    }
                    if let Err(StoreError::WriteConflict(entity, winner)) =
                        shards.store(idx).validate_first_committer(handle)
                    {
                        verdict = CommitOutcome::Conflict(entity, winner);
                        break 'validate;
                    }
                }
                if verdict == CommitOutcome::Committed {
                    for (idx, &begun) in request.begun_shards.iter().enumerate() {
                        if begun {
                            if let Err(e) = shards.store(idx).commit(handle, false) {
                                verdict = CommitOutcome::Store(e);
                                break;
                            }
                        }
                    }
                }
                outcomes.push(verdict);
            }
        } else {
            // Group commit: one pass per shard over the whole batch (each
            // store's transaction table and chain map are locked once per
            // group instead of once per transaction).
            let group: Vec<(TxHandle, &[bool])> = batch
                .iter()
                .map(|r| (TxHandle { id: r.tx }, r.begun_shards.as_slice()))
                .collect();
            for result in shards.commit_group(&group) {
                outcomes.push(match result {
                    Ok(()) => CommitOutcome::Committed,
                    Err(e) => CommitOutcome::Store(e),
                });
            }
        }
        // Certifier + history bookkeeping for the transactions that made
        // it, after their shard effects are fully applied.
        let committed: Vec<TxId> = batch
            .iter()
            .zip(&outcomes)
            .filter(|(_, o)| matches!(o, CommitOutcome::Committed))
            .map(|(r, _)| r.tx)
            .collect();
        if !committed.is_empty() {
            for lane in &self.lanes {
                let mut state = lane.state.lock();
                for &tx in &committed {
                    state.certifier.on_commit(tx);
                    state.committed.insert(tx);
                }
            }
            history.commit_all(&committed);
        }
        for (request, outcome) in batch.iter().zip(outcomes) {
            *request.outcome.lock() = Some(outcome);
        }
        committed.len()
    }

    /// Tells every lane (or every lane but `ruled_on`, which already knows)
    /// that `tx` aborted.
    pub(crate) fn notify_abort(&self, tx: TxId, ruled_on: Option<usize>) {
        for (idx, lane) in self.lanes.iter().enumerate() {
            if Some(idx) == ruled_on {
                continue;
            }
            lane.state.lock().on_abort(tx);
        }
    }

    /// The lane index that ruled (or would rule) on `entity` — used by
    /// sessions to skip double abort notification.
    pub(crate) fn ruling_lane(&self, entity: EntityId, shards: &ShardedStore) -> usize {
        self.lane_of(entity, shards)
    }
}
