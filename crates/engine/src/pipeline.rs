//! The batched, group-commit admission pipeline.
//!
//! PR 2's engine ruled on every read/write step under one global admission
//! mutex — correct, but a serialization point that kept throughput flat no
//! matter how many threads or shards were added.  This module restructures
//! that hottest path around *batching* (flat combining):
//!
//! * sessions no longer rule on their own steps; they **enqueue** a step
//!   request into an admission lane's queue (a short critical section) and
//!   then contend for the lane's state lock;
//! * whoever acquires the state lock becomes the **drain leader**: it
//!   drains the whole backlog and rules on it in one call to
//!   [`Certifier::admit_batch`], resolves read plans / ACA / write chains
//!   for the batch, appends the admitted run to the history log, fills
//!   every waiter's outcome slot, and releases; the other sessions wake,
//!   find their verdict already computed, and proceed without ever touching
//!   the certifier.
//!
//! Under contention a lane therefore pays one lock acquisition, one
//! virtual dispatch and one history append per *batch* instead of per
//! step; uncontended it degenerates to the old per-step cost.  The
//! admitted order is still a single total order per lane — the leader
//! rules batches sequentially while holding the lane lock — so the
//! append-only history and its class guarantees carry over unchanged (the
//! end-to-end `engine_loop` test re-proves this per certifier).
//!
//! Commits take the same shape: a **group-commit lane** whose leader
//! applies a whole batch of commits to the shards in groups
//! ([`ShardedStore::commit_group`] takes each store's transaction-table
//! lock once per group) before notifying the certifiers, preserving the
//! "shard commits before the certifier hears about them" rule.
//!
//! Certifiers that only need per-entity ordering declare
//! [`AdmissionScope::PerShard`] (snapshot isolation's first-committer-wins)
//! and get one admission lane per shard, so sessions touching disjoint
//! key ranges never share an admission lock at all.
//!
//! [`AdmissionMode::PerStep`] keeps the PR 2 path alive behind the same
//! interface — one ruling per lock acquisition, no queue — so benches can
//! report pipeline-on vs. pipeline-off side by side (experiment E13).

use crate::certifier::{Admission, AdmissionScope, Certifier, CertifierKind, ReadPlan};
use crate::metrics::EngineMetrics;
use crate::session::History;
use crate::shard::ShardedStore;
use bytes::Bytes;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_core::{EntityId, Step, TxId, VersionSource};
use mvcc_durability::{is_fence_error, CommitEntry, WalRecord, WalWriter};
use mvcc_store::{StoreError, TxHandle};
use mvcc_telemetry::{EventKind, SpanRecord, Stage, TraceId};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A scripted failpoint inside the pipeline, for the deterministic
/// failover chaos harness: each variant names a window the tests freeze a
/// primary in (the hook parks the calling thread forever, simulating a
/// kill at exactly that point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KillSite {
    /// Inside an admission drain, after the certifier ruled a batch but
    /// before its steps reach the history and the WAL.
    AdmissionDrain,
    /// Inside a group-commit drain, after shard effects are applied but
    /// before the batch's commit record is appended and flushed.
    GroupCommitFlush,
    /// Between the commit record's durable flush and the certifier
    /// notifications (commits durable on disk, invisible in memory).
    CommitNotifyGap,
    /// Inside the checkpoint cut, while the group-commit drain is held.
    Checkpoint,
}

impl fmt::Display for KillSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillSite::AdmissionDrain => write!(f, "admission-drain"),
            KillSite::GroupCommitFlush => write!(f, "group-commit-flush"),
            KillSite::CommitNotifyGap => write!(f, "commit-notify-gap"),
            KillSite::Checkpoint => write!(f, "checkpoint"),
        }
    }
}

/// A chaos callback fired at every [`KillSite`] the pipeline passes.  The
/// production default is `None` (never constructed, zero overhead beyond
/// an `Option` check); the chaos harness installs one that parks the
/// calling thread forever at a scripted site, freezing the primary
/// mid-protocol exactly where the failover story is most delicate.
#[derive(Clone)]
pub struct ChaosHook(pub Arc<dyn Fn(KillSite) + Send + Sync>);

impl ChaosHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(KillSite) + Send + Sync + 'static) -> Self {
        ChaosHook(Arc::new(f))
    }
}

impl fmt::Debug for ChaosHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ChaosHook(..)")
    }
}

/// How the engine serializes admission rulings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Every step is ruled under the lane lock by the session issuing it
    /// (the PR 2 path, kept for comparison benchmarks).
    PerStep,
    /// Steps are enqueued and ruled in batches by a drain leader via
    /// [`Certifier::admit_batch`]; commits are applied to the shards in
    /// groups.  The default.
    #[default]
    Batched,
}

impl fmt::Display for AdmissionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionMode::PerStep => write!(f, "per-step"),
            AdmissionMode::Batched => write!(f, "batched"),
        }
    }
}

/// The engine-internal verdict on one submitted step, with read plans
/// already resolved against the admitted sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// Admitted; `Some(plan)` for reads, `None` for writes.
    Admitted(Option<ReadPlan>),
    /// The certifier rejected the step; its lane has already been told of
    /// the abort.
    Rejected,
    /// The resolved read would have observed the uncommitted version of
    /// the contained writer (ACA); the lane has already been told of the
    /// abort.
    DirtyRead(TxId),
}

/// The engine-internal verdict on one submitted commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CommitOutcome {
    /// Committed on every touched shard; certifiers notified.  With
    /// durability on, carries the LSN of the batch's WAL commit record —
    /// what a replica router's read-your-writes waits for.
    Committed {
        /// LSN of the WAL commit record (`None` with durability off).
        wal_lsn: Option<u64>,
    },
    /// First-committer-wins validation failed on the contained entity
    /// against the contained winner.  The session must abort itself.
    Conflict(EntityId, TxId),
    /// An unexpected store-level failure (a bug if it ever surfaces).
    Store(StoreError),
    /// The engine's WAL epoch has been superseded by a promoted replica:
    /// this primary is fenced and can never commit again.  Nothing was
    /// made durable for this request.
    Deposed,
}

/// The append-only admission history, shared by all lanes.
///
/// With a single global lane the appends happen in ruling order under the
/// lane lock, so the log is exactly the certifier's admission sequence.
/// Per-shard lanes interleave their batches arbitrarily, which is only
/// offered to certifiers whose class claims nothing about cross-entity
/// order (snapshot isolation).
#[derive(Debug)]
pub(crate) struct HistoryLog {
    record: bool,
    /// `Some(n)`: ring mode — at most `n` admitted steps are retained,
    /// oldest dropped first, with a high-water drop counter.  Long soak
    /// and replication runs use this to bound memory; classification
    /// tests keep the default unbounded log (a truncated history cannot
    /// be classified).
    capacity: Option<usize>,
    admitted: TrackedMutex<AdmittedLog>,
    committed: TrackedMutex<BTreeSet<TxId>>,
}

/// The admitted-step buffer plus its drop high-water mark.
#[derive(Debug, Default)]
struct AdmittedLog {
    steps: std::collections::VecDeque<Step>,
    dropped: u64,
    /// Largest transaction id among dropped steps — the *drop horizon*.
    /// Transaction ids are allocated monotonically, so every transaction
    /// with an id above the horizon still has all of its steps in the
    /// retained window; the online watchdog classifies exactly that
    /// self-contained sub-history when the ring has truncated.
    dropped_max_tx: Option<TxId>,
}

impl HistoryLog {
    pub(crate) fn new(record: bool, capacity: Option<usize>) -> Self {
        HistoryLog {
            record,
            capacity,
            admitted: TrackedMutex::new(
                lock_class!("engine.history-admitted"),
                AdmittedLog::default(),
            ),
            committed: TrackedMutex::new(lock_class!("engine.history-committed"), BTreeSet::new()),
        }
    }

    /// Appends one ruled batch's admitted steps (no-op when recording is
    /// off).  In ring mode the oldest steps beyond the capacity are
    /// dropped and counted.
    fn append_batch(&self, steps: &[Step]) {
        if self.record && !steps.is_empty() {
            let mut log = self.admitted.lock();
            log.steps.extend(steps.iter().copied());
            if let Some(cap) = self.capacity {
                while log.steps.len() > cap {
                    if let Some(dropped) = log.steps.pop_front() {
                        log.dropped += 1;
                        log.dropped_max_tx = log.dropped_max_tx.max(Some(dropped.tx));
                    }
                }
            }
        }
    }

    /// Records a batch of commits.
    fn commit_all(&self, txs: &[TxId]) {
        if !txs.is_empty() {
            let mut committed = self.committed.lock();
            for &tx in txs {
                committed.insert(tx);
            }
        }
    }

    /// A point-in-time copy.  The committed set is cloned *before* the
    /// admitted log: steps are always appended before their transaction
    /// can commit, so this order can never observe a committed transaction
    /// whose steps are missing from the log (the opposite order could).
    pub(crate) fn snapshot(&self) -> History {
        let committed = self.committed.lock().clone();
        let log = self.admitted.lock();
        History {
            admitted: log.steps.iter().copied().collect(),
            dropped: log.dropped,
            drop_horizon: log.dropped_max_tx,
            committed,
        }
    }

    /// Seeds the log with a crash-recovered history so a resumed engine's
    /// history stays append-only across the crash: the recovered admitted
    /// prefix (kept only when recording is on) plus the recovered
    /// committed set (always — commit membership is cheap and the
    /// committed projection depends on it).
    pub(crate) fn seed(&self, admitted: &[Step], committed: &BTreeSet<TxId>) {
        self.append_batch(admitted);
        self.committed.lock().extend(committed.iter().copied());
    }
}

/// One step request parked in a lane queue: the step (with a write's
/// payload, so the drain leader can log it) plus the slot its outcome is
/// delivered through.
#[derive(Debug)]
struct StepRequest {
    step: Step,
    /// The new version's payload for write steps (cheap `Bytes` clone);
    /// `None` for reads.
    value: Option<Bytes>,
    /// `true` when this is the session's first step, so the drain leader
    /// logs the transaction's begin record with it (merging the two keeps
    /// session begin off the WAL mutex entirely).
    log_begin: bool,
    /// The owning session's trace id when it is sampled for span
    /// collection: the drain leader measuring this step's certify time
    /// hands the span back through the outcome slot — attribution to the
    /// *owner*, not the thread that happened to lead the batch.
    trace: Option<TraceId>,
    /// The verdict plus, for traced owners, the certify span the leader
    /// measured on their behalf (rides the same slot handoff — no new
    /// synchronization edge).
    outcome: TrackedMutex<Option<(StepOutcome, Option<SpanRecord>)>>,
}

/// Microseconds elapsed since `clock`, saturating.
fn elapsed_us(clock: Instant) -> u64 {
    u64::try_from(clock.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The depth-1 certify span measured from `clock`, when one was started
/// (a clock is only started when the batch holds a traced member).
fn certify_span(clock: Option<Instant>) -> Option<SpanRecord> {
    clock.map(|c| SpanRecord {
        stage: Stage::Certify,
        dur_us: elapsed_us(c),
        depth: 1,
        lsn: None,
    })
}

/// Appends a traced waiter's queue-wait span plus whatever span its
/// drain leader handed back through the outcome slot.  The wait span
/// covers the whole parked interval (the leader's certify of this step
/// included) — it is the contention signal, not a disjoint partition.
fn finish_queue_wait(
    trace: Option<TraceId>,
    wait_clock: Option<Instant>,
    span: Option<SpanRecord>,
    spans: &mut Vec<SpanRecord>,
) {
    if trace.is_some() {
        if let Some(started) = wait_clock {
            spans.push(SpanRecord {
                stage: Stage::AdmissionQueueWait,
                dur_us: elapsed_us(started),
                depth: 1,
                lsn: None,
            });
        }
        if let Some(span) = span {
            spans.push(span);
        }
    }
}

/// The WAL record for one admitted step.
fn step_record(step: Step, value: Option<&Bytes>) -> WalRecord {
    if step.is_read() {
        WalRecord::Read {
            tx: step.tx,
            entity: step.entity,
        }
    } else {
        WalRecord::Write {
            tx: step.tx,
            entity: step.entity,
            value: value.cloned().unwrap_or_default(),
        }
    }
}

/// One commit request parked in the group-commit queue.
#[derive(Debug)]
struct CommitRequest {
    tx: TxId,
    begun_shards: Vec<bool>,
    /// The owning session's trace id when sampled (see [`StepRequest`]).
    trace: Option<TraceId>,
    /// The verdict plus, for traced owners, the group-commit spans the
    /// leader measured on their behalf (apply, and the nested WAL flush
    /// with its batch LSN).
    outcome: TrackedMutex<Option<(CommitOutcome, Vec<SpanRecord>)>>,
}

/// Everything that must change atomically with a certifier ruling on one
/// lane.
struct LaneState {
    certifier: Box<dyn Certifier>,
    /// Transactions this lane knows to have committed (mirrors the shared
    /// history; consulted by the ACA rule and write-chain pruning).
    committed: BTreeSet<TxId>,
    /// Admitted writers per entity, in admission order (aborted writers
    /// removed, committed prefixes pruned).  This is how the engine
    /// resolves [`ReadPlan::Latest`] into the version the *admitted
    /// sequence* dictates — the last admitted write — instead of whatever
    /// happens to be committed in the store when the read executes, which
    /// could tell a different story than the history the classifiers
    /// certify.
    write_chains: HashMap<EntityId, Vec<TxId>>,
    /// On a crash-recovered engine: the newest committed pre-crash writer
    /// per entity.  A fresh certifier's [`VersionSource::Initial`]
    /// assignment means "the version older than every write I have seen"
    /// — which, in the resumed epoch, is the recovered base version, not
    /// the engine pre-seed (possibly long since garbage-collected).
    recovered_base: HashMap<EntityId, TxId>,
}

impl LaneState {
    /// Records an admitted write of `entity` by `tx` and prunes the chain:
    /// every entry before the last *committed* one can never again be the
    /// last admitted write (commits are never undone, aborts only remove
    /// their own entries), so only the committed tail entry plus the
    /// in-flight writers after it are kept.
    fn record_write(&mut self, entity: EntityId, tx: TxId) {
        let chain = self.write_chains.entry(entity).or_default();
        chain.push(tx);
        if let Some(last_committed) = chain.iter().rposition(|w| self.committed.contains(w)) {
            chain.drain(..last_committed);
        }
    }

    /// The version the last admitted write of `entity` created, or the
    /// initial version when nothing has been admitted (store pre-seed).
    fn latest_admitted(&self, entity: EntityId) -> VersionSource {
        match self.write_chains.get(&entity).and_then(|c| c.last()) {
            Some(&w) => VersionSource::Tx(w),
            None => VersionSource::Initial,
        }
    }

    /// Removes an aborted transaction's entries from every write chain.
    fn purge_writer(&mut self, tx: TxId) {
        for chain in self.write_chains.values_mut() {
            chain.retain(|&w| w != tx);
        }
    }

    /// Tells the certifier `tx` aborted and purges its write-chain entries.
    fn on_abort(&mut self, tx: TxId) {
        self.certifier.on_abort(tx);
        self.purge_writer(tx);
    }

    /// Converts one certifier ruling into a resolved [`StepOutcome`],
    /// updating lane state exactly as the per-step path would.  The
    /// caller records admitted outcomes in the history (and the WAL).
    fn resolve(&mut self, step: Step, admission: Admission) -> StepOutcome {
        match admission {
            Admission::Reject => {
                self.on_abort(step.tx);
                StepOutcome::Rejected
            }
            admitted_as if step.is_read() => {
                let Admission::Read(plan) = admitted_as else {
                    unreachable!("read step admitted as write")
                };
                // Single-version certifiers mean "the latest version" in
                // the model's sense: the last *admitted* write.  Resolve it
                // here, at the lane's serialization point, so the value
                // served always matches the history being recorded.  A
                // multiversion certifier's explicit `Initial` assignment
                // is likewise re-based onto the recovered base version
                // after a crash (on a fresh engine the map is empty and
                // `Initial` stays the store pre-seed).
                let plan = match plan {
                    ReadPlan::Latest => ReadPlan::Version(self.latest_admitted(step.entity)),
                    ReadPlan::Version(VersionSource::Initial) => {
                        match self.recovered_base.get(&step.entity) {
                            Some(&writer) => ReadPlan::Version(VersionSource::Tx(writer)),
                            None => ReadPlan::Version(VersionSource::Initial),
                        }
                    }
                    other => other,
                };
                // ACA: refuse to observe a version whose writer has not
                // committed (reading own writes is always fine).
                if let ReadPlan::Version(VersionSource::Tx(writer)) = plan {
                    if writer != step.tx && !self.committed.contains(&writer) {
                        self.on_abort(step.tx);
                        return StepOutcome::DirtyRead(writer);
                    }
                }
                StepOutcome::Admitted(Some(plan))
            }
            _ => {
                self.record_write(step.entity, step.tx);
                StepOutcome::Admitted(None)
            }
        }
    }
}

/// The admitted part of one ruled batch, accumulated under the lane lock:
/// the steps bound for the in-memory history, and — when a WAL is kept —
/// the same steps as log records (write payloads included).
struct AdmittedBatch {
    steps: Vec<Step>,
    wal_records: Option<Vec<WalRecord>>,
}

impl AdmittedBatch {
    fn new(capacity: usize, wal: bool) -> Self {
        AdmittedBatch {
            steps: Vec::with_capacity(capacity),
            wal_records: wal.then(|| Vec::with_capacity(capacity)),
        }
    }

    fn push(&mut self, step: Step, value: Option<&Bytes>, log_begin: bool) {
        self.steps.push(step);
        if let Some(records) = &mut self.wal_records {
            if log_begin {
                records.push(WalRecord::Begin { tx: step.tx });
            }
            records.push(step_record(step, value));
        }
    }
}

/// One admission lane: a request queue plus the state its drain leader
/// rules under.
struct Lane {
    queue: TrackedMutex<Vec<Arc<StepRequest>>>,
    state: TrackedMutex<LaneState>,
}

impl Lane {
    fn new(certifier: Box<dyn Certifier>) -> Self {
        Lane {
            queue: TrackedMutex::new(lock_class!("engine.lane-queue"), Vec::new()),
            state: TrackedMutex::new(
                lock_class!("engine.lane-state"),
                LaneState {
                    certifier,
                    committed: BTreeSet::new(),
                    write_chains: HashMap::new(),
                    recovered_base: HashMap::new(),
                },
            ),
        }
    }
}

/// The group-commit lane: a commit queue plus the drain lock its leader
/// holds while applying a batch (also what makes cross-shard
/// first-committer-wins validate+commit atomic against other committers).
struct CommitLane {
    queue: TrackedMutex<Vec<Arc<CommitRequest>>>,
    drain: TrackedMutex<()>,
}

/// The admission pipeline: admission lanes (one, or one per shard) plus
/// the group-commit lane.
pub(crate) struct AdmissionPipeline {
    mode: AdmissionMode,
    lanes: Vec<Lane>,
    commit: CommitLane,
    /// Cross-lane publication order: with per-shard lanes (snapshot
    /// isolation), two lanes may rule batches concurrently, and the
    /// history append and WAL append of [`Self::finish_admission`] are
    /// atomic only under each lane's own lock.  Without a shared fence
    /// the two logs can interleave the lanes' batches differently —
    /// harmless to SI's class (which claims nothing about cross-entity
    /// order) but fatal to replication, where the shipped projection must
    /// equal the history projection step for step.  Held across both
    /// appends only when more than one lane exists; a single global lane
    /// already serializes publication.
    publish: TrackedMutex<()>,
    /// Cached [`Certifier::validates_writes_at_commit`] (a static property
    /// of the certifier kind; caching keeps it off the commit hot path).
    validates_at_commit: bool,
    /// The write-ahead log, when durability is on.  Step batches are
    /// appended under the lane lock (so the log is the admission order);
    /// the group-commit leader appends one commit record per batch and
    /// issues the batch's single flush.
    wal: Option<Arc<WalWriter>>,
    /// `true` in fsync mode: commits park behind a one-quantum
    /// group-commit window so concurrent committers share each fsync.
    fsync_window: bool,
    /// One past the highest WAL LSN known flushed (0 = nothing durable
    /// yet).  Updated after every commit-batch flush; this — not the
    /// writer's buffered tail — is what replicas can actually observe,
    /// so it is the horizon `ReadPolicy::Latest` and lag bounds compare
    /// against.
    durable_lsn: std::sync::atomic::AtomicU64,
    /// Latched once the WAL refuses an append or flush with a fencing
    /// error (a replica promoted over this primary's epoch).  From then on
    /// every commit is refused with [`CommitOutcome::Deposed`] *before*
    /// any shard effect — the deposed engine's in-memory state stays a
    /// prefix of what it already acknowledged, never diverges past the
    /// fence.
    deposed: AtomicBool,
    /// Scripted failpoints for the chaos harness (`None` in production).
    chaos: Option<ChaosHook>,
}

impl fmt::Debug for AdmissionPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionPipeline")
            .field("mode", &self.mode)
            .field("lanes", &self.lanes.len())
            .finish_non_exhaustive()
    }
}

impl AdmissionPipeline {
    /// Builds the pipeline for `kind`: one global lane, or one lane per
    /// shard when the certifier declares [`AdmissionScope::PerShard`].
    ///
    /// [`AdmissionMode::PerStep`] always gets a single lane: it exists to
    /// reproduce the PR 2 baseline — one global admission mutex — for the
    /// E13 on/off comparison, and per-shard lanes are part of the
    /// pipeline being compared against, not of that baseline.
    pub(crate) fn new(
        kind: CertifierKind,
        shards: usize,
        mode: AdmissionMode,
        wal: Option<Arc<WalWriter>>,
        chaos: Option<ChaosHook>,
    ) -> Self {
        let first = kind.build();
        let validates_at_commit = first.validates_writes_at_commit();
        let lane_count = match (mode, first.admission_scope()) {
            (AdmissionMode::PerStep, _) | (_, AdmissionScope::Global) => 1,
            (AdmissionMode::Batched, AdmissionScope::PerShard) => shards,
        };
        let mut lanes = Vec::with_capacity(lane_count);
        lanes.push(Lane::new(first));
        while lanes.len() < lane_count {
            lanes.push(Lane::new(kind.build()));
        }
        let fsync_window = mode == AdmissionMode::Batched
            && wal
                .as_ref()
                .is_some_and(|w| w.mode() == mvcc_durability::DurabilityMode::Fsync);
        AdmissionPipeline {
            mode,
            lanes,
            commit: CommitLane {
                queue: TrackedMutex::new(lock_class!("engine.commit-queue"), Vec::new()),
                drain: TrackedMutex::new(lock_class!("engine.commit-drain"), ()),
            },
            publish: TrackedMutex::new(lock_class!("engine.publish-order"), ()),
            validates_at_commit,
            wal,
            fsync_window,
            durable_lsn: std::sync::atomic::AtomicU64::new(0),
            deposed: AtomicBool::new(false),
            chaos,
        }
    }

    /// Fires the chaos hook at `site` (no-op without a hook installed).
    /// The flight-recorder event lands *before* the hook runs: a hook
    /// that freezes the calling thread forever (the chaos harness's
    /// scripted kill) still leaves the kill site on the timeline —
    /// attributed to a trace when the site knows which transaction's
    /// batch it froze.
    fn chaos_point(&self, site: KillSite, metrics: &EngineMetrics, trace: Option<TraceId>) {
        if let Some(hook) = &self.chaos {
            metrics.flight_traced(
                EventKind::KillSite {
                    site: site.to_string(),
                },
                trace,
            );
            (hook.0)(site);
        }
    }

    /// `true` once the WAL has fenced this engine out (a replica was
    /// promoted over its epoch): every subsequent commit is refused.
    pub(crate) fn is_deposed(&self) -> bool {
        self.deposed.load(Ordering::Acquire)
    }

    /// Latches the deposed flag (also used by [`crate::Engine::recover_as`]
    /// to bring a superseded primary up read-only).
    pub(crate) fn depose(&self) {
        self.deposed.store(true, Ordering::Release);
    }

    /// LSN of the newest record known flushed (per the engine's mode), or
    /// `None` before the first durable commit.
    pub(crate) fn durable_lsn(&self) -> Option<u64> {
        self.durable_lsn
            .load(std::sync::atomic::Ordering::Acquire)
            .checked_sub(1)
    }

    /// Advances the durable horizon to `lsn` (monotone).
    pub(crate) fn note_durable(&self, lsn: u64) {
        self.durable_lsn
            .fetch_max(lsn + 1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Seeds every lane with crash-recovered facts: the committed
    /// transaction set (consulted by the ACA rule) and the newest
    /// committed writer per entity (so a resumed single-version "latest"
    /// read resolves to the recovered value instead of the long-gone
    /// pre-seed).  Fresh certifiers need no notification — every seeded
    /// transaction finished before anything the new certifier will rule
    /// on, so there is no admission state to carry over.
    pub(crate) fn seed_recovered(
        &self,
        committed: &BTreeSet<TxId>,
        latest_writers: &[(EntityId, TxId)],
    ) {
        for lane in &self.lanes {
            let mut state = lane.state.lock();
            state.committed.extend(committed.iter().copied());
            for &(entity, writer) in latest_writers {
                state.write_chains.insert(entity, vec![writer]);
                state.recovered_base.insert(entity, writer);
            }
        }
    }

    /// The configured admission mode.
    pub(crate) fn mode(&self) -> AdmissionMode {
        self.mode
    }

    /// Number of admission lanes (1 unless the certifier is per-shard).
    pub(crate) fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The lane ruling on `entity` for a store sharded `shards` ways.
    fn lane_of(&self, entity: EntityId, shards: &ShardedStore) -> usize {
        if self.lanes.len() == 1 {
            0
        } else {
            shards.shard_of(entity) % self.lanes.len()
        }
    }

    /// Submits one step and blocks until a verdict is available.
    ///
    /// In [`AdmissionMode::Batched`] the step is enqueued; the session then
    /// contends for the lane lock, and either finds its verdict already
    /// filled in by another leader or becomes the leader and rules the
    /// whole backlog (its own step included) in one
    /// [`Certifier::admit_batch`] call.
    #[allow(clippy::too_many_arguments)] // internal pipeline plumbing; the args are the pipeline's layers
    pub(crate) fn submit_step(
        &self,
        step: Step,
        value: Option<&Bytes>,
        log_begin: bool,
        shards: &ShardedStore,
        history: &HistoryLog,
        metrics: &EngineMetrics,
        trace: Option<TraceId>,
        spans: &mut Vec<SpanRecord>,
    ) -> StepOutcome {
        let lane = &self.lanes[self.lane_of(step.entity, shards)];
        match self.mode {
            AdmissionMode::PerStep => {
                let mut state = lane.state.lock();
                // lint: allow(clock) — span clock, read only for sampled (traced) transactions
                let certify_clock = trace.map(|_| Instant::now());
                let admission = state.certifier.admit(step);
                if let Some(span) = certify_span(certify_clock) {
                    spans.push(span);
                }
                let mut admitted = AdmittedBatch::new(1, self.wal.is_some());
                let outcome = state.resolve(step, admission);
                if matches!(outcome, StepOutcome::Admitted(_)) {
                    admitted.push(step, value, log_begin);
                }
                self.finish_admission(admitted, history, metrics);
                outcome
            }
            AdmissionMode::Batched => {
                // Fast path: the lane is free — rule right away (draining
                // any backlog first), without parking a request.  This
                // keeps the uncontended cost at the per-step baseline;
                // batching engages exactly when the lane is actually
                // contended.
                if let Some(mut state) = lane.state.try_lock() {
                    let queued = std::mem::take(&mut *lane.queue.lock());
                    let (outcome, span) = self
                        .lead_batch(
                            &mut state,
                            &queued,
                            Some((step, value, log_begin, trace)),
                            history,
                            metrics,
                        )
                        // lint: allow(unwrap) — leaders fill every batch slot before release
                        .expect("own step is part of the batch");
                    if let Some(span) = span {
                        spans.push(span);
                    }
                    return outcome;
                }
                // Slow path: park the step and contend for the lane.
                // Either a leader rules on us while we wait, or we acquire
                // the lane ourselves and drain the whole backlog (our own
                // request included) in one certifier call.
                //
                // Queue-wait is traced unsampled: this path only runs
                // under contention (already µs-scale), and it is exactly
                // the distribution the lock-free-admission roadmap item
                // wants to regress against.
                let wait_clock = metrics.stage_clock();
                let request = Arc::new(StepRequest {
                    step,
                    value: value.cloned(),
                    log_begin,
                    trace,
                    outcome: TrackedMutex::new(lock_class!("engine.step-slot"), None),
                });
                lane.queue.lock().push(Arc::clone(&request));
                loop {
                    // A previous leader may have ruled on us already.
                    if let Some((outcome, span)) = request.outcome.lock().take() {
                        metrics.record_stage_since(Stage::AdmissionQueueWait, wait_clock);
                        finish_queue_wait(trace, wait_clock, span, spans);
                        return outcome;
                    }
                    let mut state = lane.state.lock();
                    if let Some((outcome, span)) = request.outcome.lock().take() {
                        metrics.record_stage_since(Stage::AdmissionQueueWait, wait_clock);
                        finish_queue_wait(trace, wait_clock, span, spans);
                        return outcome;
                    }
                    // We hold the lane and have no verdict, so our request
                    // is still queued (leaders fill every drained slot
                    // before releasing): become the drain leader.
                    let queued = std::mem::take(&mut *lane.queue.lock());
                    let _ = self.lead_batch(&mut state, &queued, None, history, metrics);
                    drop(state);
                }
            }
        }
    }

    /// Rules one batch — the parked `queued` requests plus, optionally,
    /// the leader's `own` step — in a single certifier call, filling every
    /// parked outcome slot and returning the leader's own outcome.  Runs
    /// under the lane lock; the history (and WAL) append happens before
    /// release so batches land in ruling order.
    fn lead_batch(
        &self,
        state: &mut LaneState,
        queued: &[Arc<StepRequest>],
        own: Option<(Step, Option<&Bytes>, bool, Option<TraceId>)>,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) -> Option<(StepOutcome, Option<SpanRecord>)> {
        // Sampled batch trace (1-in-32 per leading thread): service time
        // is the whole drain, certify time just the certifier's ruling.
        let trace = metrics.trace_batch();
        // Span collection fires whenever *any* batch member is a traced
        // transaction — the leader measures once and hands the span to
        // every traced owner through its outcome slot.
        let own_trace = own.and_then(|(_, _, _, t)| t);
        let traced = own_trace.is_some() || queued.iter().any(|r| r.trace.is_some());
        if queued.is_empty() {
            // Uncontended: a batch of exactly our own step, ruled without
            // building batch vectors.
            let (step, value, log_begin, _) = own?;
            // lint: allow(clock) — stage/span clock, read only when sampled or traced
            let certify_clock = (trace.is_some() || traced).then(Instant::now);
            let admission = state.certifier.admit(step);
            if trace.is_some() {
                metrics.record_stage_since(Stage::Certify, certify_clock);
            }
            let span = own_trace.and(certify_span(certify_clock));
            let mut admitted = AdmittedBatch::new(1, self.wal.is_some());
            let outcome = state.resolve(step, admission);
            if matches!(outcome, StepOutcome::Admitted(_)) {
                admitted.push(step, value, log_begin);
            }
            self.finish_admission(admitted, history, metrics);
            metrics.record_admission_batch(1);
            if trace.is_some() {
                metrics.record_stage_value(Stage::AdmissionBatchSteps, 1);
                metrics.record_stage_since(Stage::AdmissionService, trace);
            }
            return Some((outcome, span));
        }
        let mut steps: Vec<Step> = queued.iter().map(|r| r.step).collect();
        if let Some((step, _, _, _)) = own {
            steps.push(step);
        }
        // lint: allow(clock) — stage/span clock, read only when sampled or traced
        let certify_clock = (trace.is_some() || traced).then(Instant::now);
        let admissions = state.certifier.admit_batch(&steps);
        if trace.is_some() {
            metrics.record_stage_since(Stage::Certify, certify_clock);
        }
        // One measurement for the whole ruling: every traced member of
        // the batch receives the same certify span (the ruling is one
        // shared `admit_batch` call — there is no per-member cost to
        // apportion).
        let span = traced.then(|| certify_span(certify_clock)).flatten();
        debug_assert_eq!(admissions.len(), steps.len());
        let mut admitted = AdmittedBatch::new(steps.len(), self.wal.is_some());
        let mut own_outcome = None;
        for (i, admission) in admissions.into_iter().enumerate() {
            let outcome = state.resolve(steps[i], admission);
            if matches!(outcome, StepOutcome::Admitted(_)) {
                let (value, log_begin) = match queued.get(i) {
                    Some(request) => (request.value.as_ref(), request.log_begin),
                    None => match own {
                        Some((_, value, log_begin, _)) => (value, log_begin),
                        None => (None, false),
                    },
                };
                admitted.push(steps[i], value, log_begin);
            }
            match queued.get(i) {
                // Attribution across flat combining: the span goes to the
                // slot of the member that *owns* the work, whoever leads.
                Some(request) => *request.outcome.lock() = Some((outcome, request.trace.and(span))),
                None => own_outcome = Some((outcome, own_trace.and(span))),
            }
        }
        self.finish_admission(admitted, history, metrics);
        metrics.record_admission_batch(steps.len());
        if trace.is_some() {
            metrics.record_stage_value(Stage::AdmissionBatchSteps, steps.len() as u64);
            metrics.flight(EventKind::AdmissionBatch {
                steps: steps.len() as u64,
            });
            metrics.record_stage_since(Stage::AdmissionService, trace);
        }
        own_outcome
    }

    /// Publishes one ruled batch's admitted steps: in-memory history
    /// first, then the WAL (buffered append, in the same critical section
    /// as the ruling, so the log carries the admission order).  WAL I/O
    /// failure is fatal — a log the engine cannot append to can no longer
    /// back any durability promise — with one exception: a *fencing*
    /// refusal (a replica promoted over this epoch) latches the deposed
    /// flag instead.  The dropped step records are harmless: no commit of
    /// these transactions can ever reach the fenced log, so the discarded
    /// steps belong to transactions recovery would discard anyway (ACA).
    fn finish_admission(
        &self,
        admitted: AdmittedBatch,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) {
        self.chaos_point(KillSite::AdmissionDrain, metrics, None);
        // With per-shard lanes the lane lock alone doesn't order this
        // batch's two appends against another lane's: fence them so the
        // history and the WAL record the same cross-lane interleaving
        // (see the `publish` field).  Single-lane pipelines skip the
        // acquisition — the lane lock already is the publication order.
        let _publish = (self.lanes.len() > 1).then(|| self.publish.lock());
        history.append_batch(&admitted.steps);
        if let (Some(wal), Some(records)) = (&self.wal, admitted.wal_records) {
            if !records.is_empty() {
                match wal.append_batch(&records) {
                    Ok(receipt) => metrics.record_wal_append(receipt.records, receipt.bytes),
                    Err(e) if is_fence_error(&e) => {
                        metrics.flight(EventKind::FenceRefusal {
                            site: "admission-append".into(),
                        });
                        self.depose();
                    }
                    Err(e) => {
                        panic!("WAL append failed: durability can no longer be guaranteed: {e}")
                    }
                }
            }
        }
    }

    /// Submits a commit and blocks until it has been applied (or refused)
    /// by a group-commit leader.
    pub(crate) fn submit_commit(
        &self,
        tx: TxId,
        begun_shards: &[bool],
        shards: &ShardedStore,
        history: &HistoryLog,
        metrics: &EngineMetrics,
        trace: Option<TraceId>,
        spans: &mut Vec<SpanRecord>,
    ) -> CommitOutcome {
        match self.mode {
            AdmissionMode::PerStep => {
                let request = CommitRequest {
                    tx,
                    begun_shards: begun_shards.to_vec(),
                    trace,
                    outcome: TrackedMutex::new(lock_class!("engine.commit-slot"), None),
                };
                // Matches the PR 2 baseline: only first-committer-wins
                // commits serialize on the commit lock (validate+commit
                // atomicity); plain commits go straight to the shards —
                // unless a WAL is kept, where the drain also fences
                // checkpoints out of the apply-vs-append window (see
                // [`AdmissionPipeline::checkpoint_cut`]).
                let _drain = (self.validates_at_commit || self.wal.is_some())
                    .then(|| self.commit.drain.lock());
                self.process_commit_batch(&[&request], shards, history, metrics);
                let (outcome, commit_spans) = request
                    .outcome
                    .lock()
                    .take()
                    // lint: allow(unwrap) — process_commit_batch fills every slot
                    .expect("commit batch fills every slot");
                spans.extend(commit_spans);
                outcome
            }
            AdmissionMode::Batched => {
                // Fast path: the drain is free — apply right away (with
                // any parked backlog), without parking a request.  Not in
                // fsync mode: an fsync-bound commit always parks first
                // (see the group-commit window below), because a leader
                // racing ahead alone turns every transaction into its own
                // fsync.
                if !self.fsync_window {
                    if let Some(_drain) = self.commit.drain.try_lock() {
                        let queued = std::mem::take(&mut *self.commit.queue.lock());
                        let own = CommitRequest {
                            tx,
                            begun_shards: begun_shards.to_vec(),
                            trace,
                            outcome: TrackedMutex::new(lock_class!("engine.commit-slot"), None),
                        };
                        let mut refs: Vec<&CommitRequest> =
                            queued.iter().map(Arc::as_ref).collect();
                        refs.push(&own);
                        let committed = self.process_commit_batch(&refs, shards, history, metrics);
                        if committed > 0 {
                            metrics.record_commit_batch(committed);
                        }
                        let (outcome, commit_spans) = own
                            .outcome
                            .lock()
                            .take()
                            // lint: allow(unwrap) — process_commit_batch fills every slot
                            .expect("commit batch fills every slot");
                        spans.extend(commit_spans);
                        return outcome;
                    }
                }
                let request = Arc::new(CommitRequest {
                    tx,
                    begun_shards: begun_shards.to_vec(),
                    trace,
                    outcome: TrackedMutex::new(lock_class!("engine.commit-slot"), None),
                });
                self.commit.queue.lock().push(Arc::clone(&request));
                if self.fsync_window {
                    // The group-commit window: yield one scheduling
                    // quantum so other runnable committers can park their
                    // requests behind ours before a leader drains.  On a
                    // loaded host this is what forms fsync-sharing batches
                    // at all (a free drain would otherwise be taken
                    // immediately, one fsync per transaction — measured
                    // 3-5× slower); idle, the yield returns at once and we
                    // lead our own batch.  Buffered mode skips the window:
                    // its flush is a buffered write, cheaper than the
                    // extra parking round-trips.
                    std::thread::yield_now();
                }
                loop {
                    if let Some((outcome, commit_spans)) = request.outcome.lock().take() {
                        spans.extend(commit_spans);
                        return outcome;
                    }
                    let _drain = self.commit.drain.lock();
                    if let Some((outcome, commit_spans)) = request.outcome.lock().take() {
                        spans.extend(commit_spans);
                        return outcome;
                    }
                    let batch = std::mem::take(&mut *self.commit.queue.lock());
                    let refs: Vec<&CommitRequest> = batch.iter().map(Arc::as_ref).collect();
                    let committed = self.process_commit_batch(&refs, shards, history, metrics);
                    if committed > 0 {
                        metrics.record_commit_batch(committed);
                    }
                }
            }
        }
    }

    /// Applies one batch of commits: shard effects first (in groups), then
    /// the batch's one WAL commit record with its single flush, then
    /// certifier notifications, then the history log, then the outcome
    /// slots.  Shard commits landing before `on_commit` is what lets a
    /// certifier that releases admission state at commit (2PL's locks)
    /// never expose a reader to a not-yet-applied commit; the WAL flush
    /// landing before `on_commit` is what makes durability prefix-shaped
    /// (no later transaction can observe this commit — rule 3 — until its
    /// record is durable, so a committed reader's log position implies
    /// its writers' records are durable too).  Returns how many members
    /// actually committed (FCW losers and store refusals excluded) — the
    /// number the batch-telemetry counters record.
    fn process_commit_batch(
        &self,
        batch: &[&CommitRequest],
        shards: &ShardedStore,
        history: &HistoryLog,
        metrics: &EngineMetrics,
    ) -> usize {
        if batch.is_empty() {
            return 0;
        }
        // Sampled batch trace (1-in-32 per leading thread): the whole
        // apply is Stage::GroupCommitApply, the flush alone WalFlush.
        let trace = metrics.trace_batch();
        // Span collection fires whenever any member is traced; the leader
        // measures once and hands spans to every traced owner's slot.
        let batch_traced = batch.iter().any(|r| r.trace.is_some());
        let lead_trace = batch.iter().find_map(|r| r.trace);
        // lint: allow(clock) — stage/span clock, read only when sampled or traced
        let apply_clock = (trace.is_some() || batch_traced).then(Instant::now);
        // Fence check *before* any shard effect: a deposed primary must
        // not apply commits its WAL can no longer record — its in-memory
        // state would diverge from the durable prefix the promoted
        // replica took over.  Re-reading the epoch marker here (not just
        // the latched flag) is what bounds the split-brain window: the
        // first commit after a promotion is refused even if no append has
        // failed yet.
        let fenced = self.is_deposed()
            || match &self.wal {
                Some(wal) => match wal.check_fence() {
                    Ok(()) => false,
                    Err(e) if is_fence_error(&e) => {
                        metrics.flight_traced(
                            EventKind::FenceRefusal {
                                site: "commit-fence-check".into(),
                            },
                            lead_trace,
                        );
                        self.depose();
                        true
                    }
                    Err(e) => panic!("WAL epoch check failed: {e}"),
                },
                None => false,
            };
        if fenced {
            for request in batch {
                *request.outcome.lock() = Some((CommitOutcome::Deposed, Vec::new()));
            }
            return 0;
        }
        let mut outcomes: Vec<CommitOutcome> = Vec::with_capacity(batch.len());
        // Per committed member: the (shard, timestamp) pairs it was
        // assigned, destined for the batch's WAL commit record.
        let mut stamped: Vec<Option<Vec<(u32, u64)>>> = Vec::with_capacity(batch.len());
        if self.validates_at_commit {
            // First-committer-wins: validate every touched shard, then
            // commit them all.  Requests are processed in batch order, so
            // an earlier winner's committed versions are visible to a
            // later loser's validation; the drain lock makes the whole
            // sequence atomic against other committers.
            for request in batch {
                let handle = TxHandle { id: request.tx };
                let mut verdict = CommitOutcome::Committed { wal_lsn: None };
                let mut stamps = Vec::new();
                'validate: for (idx, &begun) in request.begun_shards.iter().enumerate() {
                    if !begun {
                        continue;
                    }
                    if let Err(StoreError::WriteConflict(entity, winner)) =
                        shards.store(idx).validate_first_committer(handle)
                    {
                        verdict = CommitOutcome::Conflict(entity, winner);
                        break 'validate;
                    }
                }
                if matches!(verdict, CommitOutcome::Committed { .. }) {
                    for (idx, &begun) in request.begun_shards.iter().enumerate() {
                        if begun {
                            match shards.store(idx).commit(handle, false) {
                                Ok(ts) => stamps.push((idx as u32, ts)),
                                Err(e) => {
                                    verdict = CommitOutcome::Store(e);
                                    break;
                                }
                            }
                        }
                    }
                }
                stamped.push(matches!(verdict, CommitOutcome::Committed { .. }).then_some(stamps));
                outcomes.push(verdict);
            }
        } else {
            // Group commit: one pass per shard over the whole batch (each
            // store's transaction table and chain map are locked once per
            // group instead of once per transaction).
            let group: Vec<(TxHandle, &[bool])> = batch
                .iter()
                .map(|r| (TxHandle { id: r.tx }, r.begun_shards.as_slice()))
                .collect();
            for result in shards.commit_group(&group) {
                match result {
                    Ok(stamps) => {
                        stamped.push(Some(
                            stamps
                                .into_iter()
                                .map(|(idx, ts)| (idx as u32, ts))
                                .collect(),
                        ));
                        outcomes.push(CommitOutcome::Committed { wal_lsn: None });
                    }
                    Err(e) => {
                        stamped.push(None);
                        outcomes.push(CommitOutcome::Store(e));
                    }
                }
            }
        }
        let committed: Vec<TxId> = batch
            .iter()
            .zip(&outcomes)
            .filter(|(_, o)| matches!(o, CommitOutcome::Committed { .. }))
            .map(|(r, _)| r.tx)
            .collect();
        let mut batch_lsn = None;
        let mut flush_us: Option<u64> = None;
        // Durability point: one commit record for the whole batch, one
        // flush (at most one fsync), before anyone can learn of the
        // commits.
        if let Some(wal) = &self.wal {
            if !committed.is_empty() {
                let entries: Vec<CommitEntry> = batch
                    .iter()
                    .zip(&mut stamped)
                    .filter_map(|(request, stamps)| {
                        stamps.take().map(|shards| CommitEntry {
                            tx: request.tx,
                            shards,
                        })
                    })
                    .collect();
                self.chaos_point(KillSite::GroupCommitFlush, metrics, lead_trace);
                // lint: allow(clock) — stage/span clock, read only when sampled or traced
                let flush_clock = (trace.is_some() || batch_traced).then(Instant::now);
                let receipt = match wal.append_and_flush(&[WalRecord::Commit { entries }]) {
                    Ok(receipt) => receipt,
                    Err(e) if is_fence_error(&e) => {
                        // Deposed between the fence check above and the
                        // flush: the shard effects just applied can never
                        // become durable.  Refuse the whole batch —
                        // certifiers are not notified, the commits stay
                        // invisible to admission, and the stranded
                        // in-memory versions die with this engine (every
                        // session is now fenced too).
                        metrics.flight_traced(
                            EventKind::FenceRefusal {
                                site: "commit-flush".into(),
                            },
                            lead_trace,
                        );
                        self.depose();
                        for request in batch {
                            *request.outcome.lock() = Some((CommitOutcome::Deposed, Vec::new()));
                        }
                        return 0;
                    }
                    Err(e) => panic!(
                        "WAL commit flush failed: durability can no longer be guaranteed: {e}"
                    ),
                };
                flush_us = flush_clock.map(elapsed_us);
                if trace.is_some() {
                    if let Some(us) = flush_us {
                        metrics.record_stage_value(Stage::WalFlush, us);
                    }
                }
                metrics.record_wal_flush(receipt.bytes, receipt.fsynced, committed.len());
                if trace.is_some() {
                    metrics.record_stage_value(Stage::WalFlushTxns, committed.len() as u64);
                    metrics.flight(EventKind::WalFlush {
                        bytes: receipt.bytes,
                        fsynced: receipt.fsynced,
                        txns: committed.len() as u64,
                    });
                }
                if let Some(lsn) = receipt.last_lsn {
                    self.note_durable(lsn);
                    // hb claim "WAL-append-before-notify": this mark and
                    // the `certifier_notify` mark below share the batch's
                    // LSN as key; the analysis gate asserts the order —
                    // and, through the tracked outcome-slot handoff, that
                    // a session observing its commit is ordered after the
                    // flush (durability is prefix-shaped, PR 4).
                    mvcc_analysis::hb::probe("engine.wal_append", lsn);
                    batch_lsn = Some(lsn);
                    if batch_traced {
                        // The cross-process correlation point: this flush
                        // span's LSN is the same LSN a replica's apply
                        // span records for the same commit batch.
                        metrics.record_trace_event(
                            Stage::WalFlush,
                            lead_trace,
                            Some(lsn),
                            flush_us.unwrap_or(0),
                        );
                    }
                    // Every member shares the batch's one commit record.
                    for outcome in &mut outcomes {
                        if let CommitOutcome::Committed { wal_lsn } = outcome {
                            *wal_lsn = Some(lsn);
                        }
                    }
                }
                self.chaos_point(KillSite::CommitNotifyGap, metrics, lead_trace);
            }
        }
        // Certifier + history bookkeeping for the transactions that made
        // it, after their shard effects are fully applied.
        if !committed.is_empty() {
            if let Some(lsn) = batch_lsn {
                mvcc_analysis::hb::probe("engine.certifier_notify", lsn);
            }
            for lane in &self.lanes {
                let mut state = lane.state.lock();
                for &tx in &committed {
                    state.certifier.on_commit(tx);
                    state.committed.insert(tx);
                }
            }
            history.commit_all(&committed);
        }
        let apply_us = apply_clock.map(elapsed_us);
        for (request, outcome) in batch.iter().zip(outcomes) {
            // Attribution: every traced member receives the batch's shared
            // spans (the apply and flush are one shared cost — there is no
            // per-member slice to apportion) through its own outcome slot,
            // whichever session led the drain.
            let commit_spans = match (request.trace, apply_us) {
                (Some(_), Some(us)) => {
                    let mut spans = vec![SpanRecord {
                        stage: Stage::GroupCommitApply,
                        dur_us: us,
                        depth: 1,
                        lsn: batch_lsn,
                    }];
                    if let (Some(lsn), Some(fus)) = (batch_lsn, flush_us) {
                        spans.push(SpanRecord {
                            stage: Stage::WalFlush,
                            dur_us: fus,
                            depth: 2,
                            lsn: Some(lsn),
                        });
                    }
                    spans
                }
                _ => Vec::new(),
            };
            *request.outcome.lock() = Some((outcome, commit_spans));
        }
        if trace.is_some() {
            if let Some(us) = apply_us {
                metrics.record_stage_value(Stage::GroupCommitApply, us);
            }
        }
        committed.len()
    }

    /// Runs `f` while holding the group-commit drain lock: no commit can
    /// be between its shard apply and its WAL commit-record append while
    /// `f` runs.  This is the checkpointer's fence — without it, a fuzzy
    /// checkpoint could durably persist a version whose commit record
    /// never reached the log (a crash in that window would then recover
    /// a store state claiming a transaction the recovered history says
    /// never committed, breaking the state-equals-committed-projection
    /// invariant).  Commits stall for the duration, so `f` should be a
    /// snapshot, not an I/O marathon.
    pub(crate) fn checkpoint_cut<R>(&self, metrics: &EngineMetrics, f: impl FnOnce() -> R) -> R {
        let _drain = self.commit.drain.lock();
        self.chaos_point(KillSite::Checkpoint, metrics, None);
        f()
    }

    /// Tells every lane (or every lane but `ruled_on`, which already knows)
    /// that `tx` aborted.
    pub(crate) fn notify_abort(&self, tx: TxId, ruled_on: Option<usize>) {
        for (idx, lane) in self.lanes.iter().enumerate() {
            if Some(idx) == ruled_on {
                continue;
            }
            lane.state.lock().on_abort(tx);
        }
    }

    /// The lane index that ruled (or would rule) on `entity` — used by
    /// sessions to skip double abort notification.
    pub(crate) fn ruling_lane(&self, entity: EntityId, shards: &ShardedStore) -> usize {
        self.lane_of(entity, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::CertifierKind;
    use mvcc_telemetry::Telemetry;

    /// The attribution rule, deterministically: a traced foreign step is
    /// parked in the lane queue, an *untraced* session leads the drain —
    /// the certify span must land in the foreign owner's outcome slot,
    /// and none on the leader.
    #[test]
    fn drain_leader_hands_the_certify_span_to_the_traced_owner() {
        let shards = ShardedStore::new(1, 4, Bytes::from_static(b"0"));
        let history = HistoryLog::new(true, None);
        let metrics = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        let pipeline =
            AdmissionPipeline::new(CertifierKind::Sgt, 1, AdmissionMode::Batched, None, None);
        let foreign = Arc::new(StepRequest {
            step: Step::write(TxId(7), EntityId(0)),
            value: Some(Bytes::from_static(b"foreign")),
            log_begin: false,
            trace: Some(TraceId::pack(0, 7)),
            outcome: TrackedMutex::new(lock_class!("engine.step-slot"), None),
        });
        pipeline.lanes[0].queue.lock().push(Arc::clone(&foreign));
        let mut spans = Vec::new();
        let own_value = Bytes::from_static(b"own");
        let outcome = pipeline.submit_step(
            Step::write(TxId(8), EntityId(1)),
            Some(&own_value),
            false,
            &shards,
            &history,
            &metrics,
            None,
            &mut spans,
        );
        assert!(matches!(outcome, StepOutcome::Admitted(_)));
        assert!(spans.is_empty(), "untraced leader keeps no spans");
        let (foreign_outcome, foreign_span) = foreign
            .outcome
            .lock()
            .take()
            .expect("the leader fills every drained slot");
        assert!(matches!(foreign_outcome, StepOutcome::Admitted(_)));
        let span = foreign_span.expect("traced owner receives the leader's certify span");
        assert_eq!(span.stage, Stage::Certify);
        assert_eq!(span.depth, 1);
        assert_eq!(span.lsn, None);
    }

    /// With tracing off entirely, a traced-looking queue entry is
    /// impossible — but an untraced foreign entry ruled by a *traced*
    /// leader must stay span-free: attribution never leaks the leader's
    /// trace onto other owners.
    #[test]
    fn traced_leader_does_not_leak_spans_onto_untraced_waiters() {
        let shards = ShardedStore::new(1, 4, Bytes::from_static(b"0"));
        let history = HistoryLog::new(true, None);
        let metrics = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        let pipeline =
            AdmissionPipeline::new(CertifierKind::Sgt, 1, AdmissionMode::Batched, None, None);
        let foreign = Arc::new(StepRequest {
            step: Step::write(TxId(3), EntityId(0)),
            value: Some(Bytes::from_static(b"foreign")),
            log_begin: false,
            trace: None,
            outcome: TrackedMutex::new(lock_class!("engine.step-slot"), None),
        });
        pipeline.lanes[0].queue.lock().push(Arc::clone(&foreign));
        let mut spans = Vec::new();
        let own_value = Bytes::from_static(b"own");
        let outcome = pipeline.submit_step(
            Step::write(TxId(4), EntityId(1)),
            Some(&own_value),
            false,
            &shards,
            &history,
            &metrics,
            Some(TraceId::pack(1, 4)),
            &mut spans,
        );
        assert!(matches!(outcome, StepOutcome::Admitted(_)));
        assert_eq!(spans.len(), 1, "traced leader keeps its own certify span");
        assert_eq!(spans[0].stage, Stage::Certify);
        let (_, foreign_span) = foreign
            .outcome
            .lock()
            .take()
            .expect("the leader fills every drained slot");
        assert!(
            foreign_span.is_none(),
            "untraced owner must not inherit the leader's span"
        );
    }

    /// Ring mode records the drop horizon, and the windowed projection
    /// keeps exactly the transactions wholly above it.
    #[test]
    fn ring_history_tracks_the_drop_horizon() {
        let history = HistoryLog::new(true, Some(2));
        history.append_batch(&[
            Step::write(TxId(1), EntityId(0)),
            Step::write(TxId(2), EntityId(0)),
        ]);
        assert_eq!(history.snapshot().drop_horizon, None);
        history.append_batch(&[Step::write(TxId(3), EntityId(0))]);
        history.commit_all(&[TxId(1), TxId(2), TxId(3)]);
        let snap = history.snapshot();
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.drop_horizon, Some(TxId(1)));
        assert!(!snap.is_complete());
        // tx1's step fell off the front: the window is tx2 and tx3, both
        // of which still have every step retained.
        assert_eq!(snap.committed_schedule().len(), 2);
        assert_eq!(snap.windowed_schedule().len(), 2);
        // A complete history windows to the full committed projection.
        let full = HistoryLog::new(true, None);
        full.append_batch(&[Step::write(TxId(1), EntityId(0))]);
        full.commit_all(&[TxId(1)]);
        let snap = full.snapshot();
        assert_eq!(snap.windowed_schedule().len(), 1);
    }
}
