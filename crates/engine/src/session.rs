//! The engine and its multi-threaded session API.
//!
//! An [`Engine`] is a [`ShardedStore`] plus an admission pipeline
//! ([`crate::pipeline`]) ruling steps with one
//! [`Certifier`](crate::Certifier) per admission lane.  Sessions ([`Session`]) are handles usable from any OS thread:
//! `begin` allocates a transaction id, `read`/`write` submit each step to
//! the pipeline and then execute it on the owning shard, `commit`/`abort`
//! finish the transaction on every shard it touched.
//!
//! ## Serialization points and races
//!
//! An admission lane is the engine's serialization point (one global lane
//! for every certifier whose class depends on cross-entity order): steps
//! enter the append-only [`History`] in exactly the order the certifier
//! ruled on them — batched admission drains whole backlogs per ruling, but
//! the drain leader holds the lane for the batch, so the order is still
//! total — which makes the recorded history the ground truth the paper's
//! model speaks about; the offline classifiers check *that* sequence.
//! Store effects are applied outside the lane for concurrency, with four
//! engine rules keeping values coherent:
//!
//! 1. a write's version is appended to its shard before the writing
//!    session takes any further step, so an explicitly assigned version
//!    (multiversion certifiers) can only be missing if its writer is still
//!    in flight — and then rule 2 applies;
//! 2. **ACA** (avoids cascading aborts): a read assigned a version whose
//!    writer has not committed aborts the reader ([`AbortReason::DirtyRead`]);
//!    committed transactions therefore never depend on uncommitted data,
//!    and MVTO's committed histories stay provably MVSR;
//! 3. shard commits are applied *before* the certifier learns of the
//!    commit — group commit batches preserve this per batch — so a
//!    certifier that releases admission state at commit (2PL's locks) can
//!    never expose a reader to a not-yet-applied commit;
//! 4. **reads are pinned at admission**: a single-version certifier's
//!    "latest" read is resolved on the lane to the last *admitted* write
//!    of the entity (then subject to rule 2), never to whatever the store
//!    happens to hold when the read executes — so the values served always
//!    tell the same story as the history the classifiers certify, and
//!    admitted-but-unapplied or committed-after-admission writes can't
//!    leak in.
//!
//! Cross-shard commits of snapshot-isolation sessions serialize on the
//! group-commit drain so that first-committer-wins validation and the
//! subsequent per-shard commits are atomic with respect to each other.

use crate::certifier::{CertifierKind, HistoryClass, ReadPlan};
use crate::metrics::{AbortReason, EngineMetrics};
use crate::pipeline::{AdmissionMode, AdmissionPipeline, CommitOutcome, HistoryLog, StepOutcome};
use crate::shard::ShardedStore;
use bytes::Bytes;
use mvcc_core::{EntityId, Schedule, Step, TxId};
use mvcc_store::{gc, StoreError, TxHandle};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the session API.  Every variant except
/// [`EngineError::NotActive`] means the engine has already aborted the
/// session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The certifier rejected the step; the transaction was aborted.
    Rejected(Step),
    /// The step would have observed an uncommitted version (ACA rule); the
    /// transaction was aborted.
    DirtyRead(Step, TxId),
    /// The assigned version was reclaimed by GC before the read executed;
    /// the transaction was aborted.
    SnapshotTooOld(EntityId, TxId),
    /// First-committer-wins validation failed at commit; the transaction
    /// was aborted.
    WriteConflict(EntityId, TxId),
    /// The session already committed or aborted.
    NotActive(TxId),
    /// An unexpected store-level failure (a bug if it ever surfaces).
    Store(StoreError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected(step) => write!(f, "certifier rejected {step}"),
            EngineError::DirtyRead(step, writer) => {
                write!(f, "{step} would read uncommitted data of {writer}")
            }
            EngineError::SnapshotTooOld(entity, writer) => {
                write!(f, "version of {entity} by {writer} already reclaimed")
            }
            EngineError::WriteConflict(entity, winner) => {
                write!(f, "write-write conflict on {entity} against {winner}")
            }
            EngineError::NotActive(tx) => write!(f, "{tx} is not active"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of store shards.
    pub shards: usize,
    /// Number of pre-created entities (`EntityId(0)..EntityId(entities)`),
    /// each initialized with `initial`.
    pub entities: usize,
    /// Initial version payload for every entity.
    pub initial: Bytes,
    /// Record the admission history (required for offline classification;
    /// turn off for long benchmark runs).
    pub record_history: bool,
    /// How admission is serialized: the batched group-commit pipeline
    /// (default) or the per-step baseline it replaced (kept for
    /// comparison benchmarks — experiment E13).
    pub admission: AdmissionMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 2,
            entities: 16,
            initial: Bytes::from_static(b"0"),
            record_history: true,
            admission: AdmissionMode::default(),
        }
    }
}

/// The admission history of a run: the admitted steps in certifier order
/// plus the set of transactions that committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    /// Every admitted step, in admission order (including steps of
    /// transactions that later aborted).
    pub admitted: Vec<Step>,
    /// Transactions that committed.
    pub committed: BTreeSet<TxId>,
}

impl History {
    /// The committed projection: admitted steps of committed transactions,
    /// in admission order — the object the offline classifiers check.
    pub fn committed_schedule(&self) -> Schedule {
        Schedule::from_steps(
            self.admitted
                .iter()
                .copied()
                .filter(|s| self.committed.contains(&s.tx))
                .collect(),
        )
    }
}

/// A concurrent, sharded, multi-session MVCC engine.
pub struct Engine {
    shards: ShardedStore,
    pipeline: AdmissionPipeline,
    history: HistoryLog,
    metrics: EngineMetrics,
    next_tx: AtomicU32,
    kind: CertifierKind,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("kind", &self.kind)
            .field("shards", &self.shards.len())
            .field("admission", &self.pipeline.mode())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine with a fresh certifier of `kind`.
    pub fn new(kind: CertifierKind, config: EngineConfig) -> Self {
        Engine {
            shards: ShardedStore::new(config.shards, config.entities, config.initial),
            pipeline: AdmissionPipeline::new(kind, config.shards, config.admission),
            history: HistoryLog::new(config.record_history),
            metrics: EngineMetrics::new(config.shards),
            next_tx: AtomicU32::new(1),
            kind,
        }
    }

    /// The certifier configuration the engine runs.
    pub fn kind(&self) -> CertifierKind {
        self.kind
    }

    /// The class guaranteed for the committed history.
    pub fn class(&self) -> HistoryClass {
        self.kind.class()
    }

    /// The admission mode the engine runs under.
    pub fn admission_mode(&self) -> AdmissionMode {
        self.pipeline.mode()
    }

    /// Number of admission lanes (1 unless the certifier only needs
    /// per-entity ordering and admission is partitioned per shard).
    pub fn admission_lanes(&self) -> usize {
        self.pipeline.lane_count()
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The sharded store (observability and tests).
    pub fn shards(&self) -> &ShardedStore {
        &self.shards
    }

    /// Begins a new session.  The engine allocates the transaction id.
    pub fn begin(self: &Arc<Self>) -> Session {
        let tx = TxId(self.next_tx.fetch_add(1, Ordering::Relaxed));
        self.metrics.record_begin();
        Session {
            engine: Arc::clone(self),
            tx,
            begun_shards: vec![false; self.shards.len()],
            active: true,
            started: Instant::now(),
        }
    }

    /// A copy of the admission history (empty if recording is off).
    pub fn history(&self) -> History {
        self.history.snapshot()
    }

    /// Runs one GC pass over every shard under each shard's
    /// active-snapshot watermark; returns the number of reclaimed
    /// versions.  The background [`crate::GcDriver`] calls this
    /// periodically.
    pub fn collect_garbage(&self) -> usize {
        let mut reclaimed = 0;
        for store in self.shards.iter() {
            let report = gc::collect_with_watermark(store, gc::watermark(store));
            reclaimed += report.reclaimed;
        }
        self.metrics.record_gc(reclaimed);
        reclaimed
    }
}

/// A transaction handle bound to an [`Engine`].  Sessions are `Send`:
/// worker threads own their sessions and drive them to commit or abort.
/// Dropping an active session aborts it.
#[derive(Debug)]
pub struct Session {
    engine: Arc<Engine>,
    tx: TxId,
    /// Which shards this transaction has begun on (touched).
    begun_shards: Vec<bool>,
    active: bool,
    started: Instant,
}

impl Session {
    /// The transaction id.
    pub fn id(&self) -> TxId {
        self.tx
    }

    /// `true` until the session commits or aborts.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn ensure_active(&self) -> Result<(), EngineError> {
        if self.active {
            Ok(())
        } else {
            Err(EngineError::NotActive(self.tx))
        }
    }

    /// Lazily begins the transaction on the shard owning `entity`.
    fn touch(&mut self, entity: EntityId) -> Result<usize, EngineError> {
        let idx = self.engine.shards.shard_of(entity);
        if !self.begun_shards[idx] {
            self.engine.shards.store(idx).begin(self.tx)?;
            self.begun_shards[idx] = true;
        }
        Ok(idx)
    }

    /// Aborts after the ruling lane for `entity` already processed the
    /// abort: the remaining lanes are notified, store state is purged and
    /// the abort is recorded.
    fn abort_after_ruling(&mut self, reason: AbortReason, entity: EntityId) {
        let ruled_on = self
            .engine
            .pipeline
            .ruling_lane(entity, &self.engine.shards);
        self.engine.pipeline.notify_abort(self.tx, Some(ruled_on));
        self.finish_abort_inner(reason, Some(entity));
    }

    /// Reads `entity`, served per the certifier's ruling.  On any error
    /// except [`EngineError::NotActive`] the session is already aborted.
    pub fn read(&mut self, entity: EntityId) -> Result<Bytes, EngineError> {
        self.ensure_active()?;
        let step = Step::read(self.tx, entity);
        let outcome = self.engine.pipeline.submit_step(
            step,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
        );
        let plan = match outcome {
            StepOutcome::Rejected => {
                self.abort_after_ruling(AbortReason::CertifierReject, entity);
                return Err(EngineError::Rejected(step));
            }
            StepOutcome::DirtyRead(writer) => {
                self.abort_after_ruling(AbortReason::DirtyRead, entity);
                return Err(EngineError::DirtyRead(step, writer));
            }
            StepOutcome::Admitted(Some(plan)) => plan,
            StepOutcome::Admitted(None) => unreachable!("read step admitted as write"),
        };
        let idx = self.touch(entity)?;
        let store = self.engine.shards.store(idx);
        let handle = TxHandle { id: self.tx };
        let result = match plan {
            ReadPlan::Latest => store.read_latest(handle, entity),
            ReadPlan::Snapshot => store.read_snapshot(handle, entity),
            ReadPlan::Version(source) => store.read_version(handle, entity, source),
        };
        match result {
            Ok(value) => {
                self.engine.metrics.record_read(idx);
                Ok(value)
            }
            Err(StoreError::NoSuchVersion(e, writer)) => {
                // The assigned version was committed (ACA held) but GC has
                // since reclaimed it: the multiversion analogue of
                // "snapshot too old".
                self.abort_with(AbortReason::SnapshotTooOld, Some(e));
                Err(EngineError::SnapshotTooOld(e, writer))
            }
            Err(e) => {
                self.abort_with(AbortReason::Explicit, Some(entity));
                Err(EngineError::Store(e))
            }
        }
    }

    /// Writes a new version of `entity`.  On any error except
    /// [`EngineError::NotActive`] the session is already aborted.
    pub fn write(&mut self, entity: EntityId, value: Bytes) -> Result<(), EngineError> {
        self.ensure_active()?;
        let step = Step::write(self.tx, entity);
        let outcome = self.engine.pipeline.submit_step(
            step,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
        );
        match outcome {
            StepOutcome::Rejected => {
                self.abort_after_ruling(AbortReason::CertifierReject, entity);
                return Err(EngineError::Rejected(step));
            }
            StepOutcome::DirtyRead(writer) => {
                unreachable!("write step ruled a dirty read of {writer}")
            }
            StepOutcome::Admitted(_) => {}
        }
        let idx = self.touch(entity)?;
        let store = self.engine.shards.store(idx);
        store.write(TxHandle { id: self.tx }, entity, value)?;
        self.engine.metrics.record_write(idx);
        Ok(())
    }

    /// Commits the transaction on every touched shard via the group-commit
    /// lane.  Under snapshot isolation this is where first-committer-wins
    /// validation runs; on conflict the session is aborted and
    /// [`EngineError::WriteConflict`] returned.
    pub fn commit(mut self) -> Result<(), EngineError> {
        self.ensure_active()?;
        let outcome = self.engine.pipeline.submit_commit(
            self.tx,
            &self.begun_shards,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
        );
        match outcome {
            CommitOutcome::Committed => {
                self.active = false;
                self.engine.metrics.record_commit(self.started.elapsed());
                Ok(())
            }
            CommitOutcome::Conflict(entity, winner) => {
                self.abort_with(AbortReason::WriteConflict, Some(entity));
                Err(EngineError::WriteConflict(entity, winner))
            }
            // Dropping `self` aborts the session (matching the pre-pipeline
            // behavior of `?` on a failed shard commit).
            CommitOutcome::Store(e) => Err(EngineError::Store(e)),
        }
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) {
        if self.active {
            self.abort_with(AbortReason::Explicit, None);
        }
    }

    fn abort_with(&mut self, reason: AbortReason, trigger: Option<EntityId>) {
        self.engine.pipeline.notify_abort(self.tx, None);
        self.finish_abort_inner(reason, trigger);
    }

    /// Purges store state and records the abort; the admission lanes have
    /// already been notified by the caller.
    fn finish_abort_inner(&mut self, reason: AbortReason, trigger: Option<EntityId>) {
        for (idx, &begun) in self.begun_shards.iter().enumerate() {
            if begun {
                let _ = self
                    .engine
                    .shards
                    .store(idx)
                    .abort(TxHandle { id: self.tx });
            }
        }
        self.active = false;
        self.engine
            .metrics
            .record_abort(reason, trigger.map(|e| self.engine.shards.shard_of(e)));
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.active {
            self.abort_with(AbortReason::Explicit, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> [AdmissionMode; 2] {
        [AdmissionMode::Batched, AdmissionMode::PerStep]
    }

    fn engine_with(kind: CertifierKind, admission: AdmissionMode) -> Arc<Engine> {
        Arc::new(Engine::new(
            kind,
            EngineConfig {
                shards: 2,
                entities: 8,
                admission,
                ..EngineConfig::default()
            },
        ))
    }

    fn engine(kind: CertifierKind) -> Arc<Engine> {
        engine_with(kind, AdmissionMode::default())
    }

    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1); // different shard from X

    #[test]
    fn read_write_commit_round_trip_on_every_certifier_and_mode() {
        for kind in CertifierKind::all() {
            for mode in modes() {
                let e = engine_with(kind, mode);
                let mut s1 = e.begin();
                assert_eq!(s1.read(X).unwrap(), Bytes::from_static(b"0"));
                s1.write(Y, Bytes::from_static(b"one")).unwrap();
                s1.commit().unwrap();
                let mut s2 = e.begin();
                assert_eq!(
                    s2.read(Y).unwrap(),
                    Bytes::from_static(b"one"),
                    "{kind}/{mode}"
                );
                s2.commit().unwrap();
                let snap = e.metrics().snapshot();
                assert_eq!(snap.committed, 2, "{kind}/{mode}");
                assert_eq!(snap.aborted, 0, "{kind}/{mode}");
                let history = e.history();
                assert_eq!(history.admitted.len(), 3);
                assert_eq!(history.committed.len(), 2);
                assert!(
                    e.class().check(&history.committed_schedule()),
                    "{kind}/{mode}"
                );
            }
        }
    }

    #[test]
    fn rejection_aborts_the_session() {
        for mode in modes() {
            let e = engine_with(CertifierKind::TwoPhaseLocking, mode);
            let mut s1 = e.begin();
            let mut s2 = e.begin();
            s1.write(X, Bytes::from_static(b"a")).unwrap();
            let err = s2.write(X, Bytes::from_static(b"b")).unwrap_err();
            assert!(matches!(err, EngineError::Rejected(_)), "{mode}");
            assert!(!s2.is_active());
            assert!(matches!(s2.read(Y), Err(EngineError::NotActive(_))));
            s1.commit().unwrap();
            // The lock is released: a fresh session can write x.
            let mut s3 = e.begin();
            s3.write(X, Bytes::from_static(b"c")).unwrap();
            s3.commit().unwrap();
            let snap = e.metrics().snapshot();
            assert_eq!(snap.committed, 2);
            assert_eq!(snap.aborted, 1);
            // The abort is attributed to x's shard.
            assert_eq!(snap.shard_conflicts[e.shards().shard_of(X)], 1);
        }
    }

    #[test]
    fn aca_aborts_readers_of_uncommitted_versions() {
        let e = engine(CertifierKind::Mvto);
        let mut writer = e.begin();
        writer.write(X, Bytes::from_static(b"w")).unwrap();
        // MVTO assigns the reader the writer's (uncommitted) version — the
        // engine's ACA rule aborts the reader instead.
        let mut reader = e.begin();
        let err = reader.read(X).unwrap_err();
        assert!(matches!(err, EngineError::DirtyRead(_, w) if w == writer.id()));
        writer.commit().unwrap();
        // After the writer commits, new readers are served normally.
        let mut reader2 = e.begin();
        assert_eq!(reader2.read(X).unwrap(), Bytes::from_static(b"w"));
        reader2.commit().unwrap();
        let snap = e.metrics().snapshot();
        assert_eq!(
            snap.aborts_by_reason
                .iter()
                .find(|(r, _)| *r == AbortReason::DirtyRead)
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn latest_reads_are_pinned_to_the_admitted_sequence() {
        // Fractured-read regression: under SGT, T1 writes x and y without
        // committing; a reader admitted after those writes must NOT be
        // served the pre-T1 store state (which would realize a history
        // different from the certified admission sequence) — the pinned
        // read resolves to T1's uncommitted version and the ACA rule
        // aborts the reader instead.
        for mode in modes() {
            let e = engine_with(CertifierKind::Sgt, mode);
            let mut t1 = e.begin();
            t1.write(X, Bytes::from_static(b"x1")).unwrap();
            t1.write(Y, Bytes::from_static(b"y1")).unwrap();
            let mut t2 = e.begin();
            let err = t2.read(X).unwrap_err();
            assert!(
                matches!(err, EngineError::DirtyRead(_, w) if w == t1.id()),
                "{mode}"
            );
            t1.commit().unwrap();
            // After the commit the pinned read serves T1's value.
            let mut t3 = e.begin();
            assert_eq!(t3.read(X).unwrap(), Bytes::from_static(b"x1"));
            assert_eq!(t3.read(Y).unwrap(), Bytes::from_static(b"y1"));
            t3.commit().unwrap();
        }
    }

    #[test]
    fn gc_can_make_old_snapshots_unservable() {
        let e = engine(CertifierKind::Mvto);
        // The reader acquires an early MVTO timestamp by reading y.
        let mut reader = e.begin();
        reader.read(Y).unwrap();
        // Two later writers supersede x twice and commit.
        for v in [b"v1".as_slice(), b"v2".as_slice()] {
            let mut w = e.begin();
            w.write(X, Bytes::copy_from_slice(v)).unwrap();
            w.commit().unwrap();
        }
        // GC on x's shard sees no active transaction there and reclaims
        // everything but the newest committed version.
        let reclaimed = e.collect_garbage();
        assert!(reclaimed >= 2, "reclaimed {reclaimed}");
        // MVTO directs the old reader at the initial version, which is
        // gone: the engine reports "snapshot too old" and aborts.
        let err = reader.read(X).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotTooOld(entity, _) if entity == X));
        let snap = e.metrics().snapshot();
        assert_eq!(snap.gc_passes, 1);
        assert!(snap.gc_reclaimed >= 2);
    }

    #[test]
    fn snapshot_isolation_first_committer_wins_across_shards() {
        for mode in modes() {
            let e = engine_with(CertifierKind::SnapshotIsolation, mode);
            // SI only needs per-entity ordering, so the batched pipeline
            // gives it one admission lane per shard; the per-step baseline
            // keeps PR 2's single global admission lock.
            let expected_lanes = match mode {
                AdmissionMode::Batched => 2,
                AdmissionMode::PerStep => 1,
            };
            assert_eq!(e.admission_lanes(), expected_lanes, "{mode}");
            let mut t1 = e.begin();
            let mut t2 = e.begin();
            // Both write the same entity on shard of X and disjoint ones on
            // Y's shard: the conflict is on X only.
            t1.write(X, Bytes::from_static(b"t1")).unwrap();
            t2.write(X, Bytes::from_static(b"t2")).unwrap();
            t1.write(Y, Bytes::from_static(b"t1")).unwrap();
            t1.commit().unwrap();
            let err = t2.commit().unwrap_err();
            assert!(
                matches!(err, EngineError::WriteConflict(entity, _) if entity == X),
                "{mode}"
            );
            // The loser's version is purged everywhere.
            let mut check = e.begin();
            assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"t1"));
            assert_eq!(check.read(Y).unwrap(), Bytes::from_static(b"t1"));
            check.commit().unwrap();
        }
    }

    #[test]
    fn snapshot_isolation_disjoint_writers_both_commit() {
        let e = engine(CertifierKind::SnapshotIsolation);
        let mut t1 = e.begin();
        let mut t2 = e.begin();
        t1.write(X, Bytes::from_static(b"t1")).unwrap();
        t2.write(Y, Bytes::from_static(b"t2")).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(e.metrics().snapshot().committed, 2);
    }

    #[test]
    fn dropping_an_active_session_aborts_it() {
        let e = engine(CertifierKind::Sgt);
        {
            let mut s = e.begin();
            s.write(X, Bytes::from_static(b"doomed")).unwrap();
        }
        let snap = e.metrics().snapshot();
        assert_eq!(snap.aborted, 1);
        let mut check = e.begin();
        assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"0"));
        check.commit().unwrap();
    }

    #[test]
    fn explicit_abort_discards_writes_and_certifier_state() {
        for mode in modes() {
            let e = engine_with(CertifierKind::TwoPhaseLocking, mode);
            let mut s = e.begin();
            s.write(X, Bytes::from_static(b"tmp")).unwrap();
            s.abort();
            // The exclusive lock is gone.
            let mut s2 = e.begin();
            s2.write(X, Bytes::from_static(b"ok")).unwrap();
            s2.commit().unwrap();
            let history = e.history();
            // Both writes were admitted, only one committed.
            assert_eq!(history.admitted.len(), 2, "{mode}");
            assert_eq!(history.committed_schedule().len(), 1, "{mode}");
        }
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        for mode in modes() {
            let e = engine_with(CertifierKind::MvSgt, mode);
            let mut handles = Vec::new();
            for i in 0..8u32 {
                let e = Arc::clone(&e);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..10 {
                        let mut s = e.begin();
                        let entity = EntityId(i % 4);
                        if s.read(entity).is_err() {
                            continue;
                        }
                        if s.write(entity, Bytes::from(format!("{i}"))).is_err() {
                            continue;
                        }
                        let _ = s.commit();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let snap = e.metrics().snapshot();
            assert_eq!(snap.committed + snap.aborted, snap.begun, "{mode}");
            assert!(snap.committed > 0, "{mode}");
            // The committed history is in the certifier's class.
            let history = e.history();
            assert!(e.class().check(&history.committed_schedule()), "{mode}");
        }
    }

    #[test]
    fn batched_mode_reports_batches() {
        let e = engine_with(CertifierKind::Sgt, AdmissionMode::Batched);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let snap = e.metrics().snapshot();
        assert!(snap.admission_batches >= 1);
        assert!(snap.admission_batch_steps >= 1);
        assert_eq!(snap.commit_batches, 1);
        assert_eq!(snap.commit_batch_txns, 1);
        // The per-step baseline records no batches.
        let e = engine_with(CertifierKind::Sgt, AdmissionMode::PerStep);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        assert_eq!(e.metrics().snapshot().admission_batches, 0);
    }

    #[test]
    fn history_recording_can_be_disabled() {
        let e = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                record_history: false,
                ..EngineConfig::default()
            },
        ));
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let history = e.history();
        assert!(history.admitted.is_empty());
        assert_eq!(history.committed.len(), 1);
    }
}
