//! The engine and its multi-threaded session API.
//!
//! An [`Engine`] is a [`ShardedStore`] plus an admission pipeline
//! ([`crate::pipeline`]) ruling steps with one
//! [`Certifier`](crate::Certifier) per admission lane.  Sessions ([`Session`]) are handles usable from any OS thread:
//! `begin` allocates a transaction id, `read`/`write` submit each step to
//! the pipeline and then execute it on the owning shard, `commit`/`abort`
//! finish the transaction on every shard it touched.
//!
//! ## Serialization points and races
//!
//! An admission lane is the engine's serialization point (one global lane
//! for every certifier whose class depends on cross-entity order): steps
//! enter the append-only [`History`] in exactly the order the certifier
//! ruled on them — batched admission drains whole backlogs per ruling, but
//! the drain leader holds the lane for the batch, so the order is still
//! total — which makes the recorded history the ground truth the paper's
//! model speaks about; the offline classifiers check *that* sequence.
//! Store effects are applied outside the lane for concurrency, with four
//! engine rules keeping values coherent:
//!
//! 1. a write's version is appended to its shard before the writing
//!    session takes any further step, so an explicitly assigned version
//!    (multiversion certifiers) can only be missing if its writer is still
//!    in flight — and then rule 2 applies;
//! 2. **ACA** (avoids cascading aborts): a read assigned a version whose
//!    writer has not committed aborts the reader ([`AbortReason::DirtyRead`]);
//!    committed transactions therefore never depend on uncommitted data,
//!    and MVTO's committed histories stay provably MVSR;
//! 3. shard commits are applied *before* the certifier learns of the
//!    commit — group commit batches preserve this per batch — so a
//!    certifier that releases admission state at commit (2PL's locks) can
//!    never expose a reader to a not-yet-applied commit;
//! 4. **reads are pinned at admission**: a single-version certifier's
//!    "latest" read is resolved on the lane to the last *admitted* write
//!    of the entity (then subject to rule 2), never to whatever the store
//!    happens to hold when the read executes — so the values served always
//!    tell the same story as the history the classifiers certify, and
//!    admitted-but-unapplied or committed-after-admission writes can't
//!    leak in.
//!
//! Cross-shard commits of snapshot-isolation sessions serialize on the
//! group-commit drain so that first-committer-wins validation and the
//! subsequent per-shard commits are atomic with respect to each other.

use crate::certifier::{CertifierKind, HistoryClass, ReadPlan};
use crate::metrics::{AbortReason, EngineMetrics};
use crate::pipeline::{
    AdmissionMode, AdmissionPipeline, ChaosHook, CommitOutcome, HistoryLog, StepOutcome,
};
use crate::shard::ShardedStore;
use bytes::Bytes;
use mvcc_core::{EntityId, Schedule, Step, TxId};
use mvcc_durability::{
    is_fence_error, list_segments, CheckpointData, CommittedVersion, DurabilityConfig,
    RecoveredState, RecoveryOptions, RecoveryReport, ShardCheckpoint, WalRecord, WalWriter,
};
use mvcc_store::{gc, StoreError, TxHandle};
use mvcc_telemetry::{EventKind, SpanRecord, Telemetry, TelemetryMode, TraceId, TraceTree};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the session API.  Every variant except
/// [`EngineError::NotActive`] means the engine has already aborted the
/// session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The certifier rejected the step; the transaction was aborted.
    Rejected(Step),
    /// The step would have observed an uncommitted version (ACA rule); the
    /// transaction was aborted.
    DirtyRead(Step, TxId),
    /// The assigned version was reclaimed by GC before the read executed;
    /// the transaction was aborted.
    SnapshotTooOld(EntityId, TxId),
    /// First-committer-wins validation failed at commit; the transaction
    /// was aborted.
    WriteConflict(EntityId, TxId),
    /// The session already committed or aborted.
    NotActive(TxId),
    /// An unexpected store-level failure (a bug if it ever surfaces).
    Store(StoreError),
    /// The engine has been deposed: a replica was promoted over its WAL
    /// epoch, so no commit can ever be made durable here again.  The
    /// transaction was aborted; the client should re-route to the new
    /// primary and retry there.
    Deposed,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Rejected(step) => write!(f, "certifier rejected {step}"),
            EngineError::DirtyRead(step, writer) => {
                write!(f, "{step} would read uncommitted data of {writer}")
            }
            EngineError::SnapshotTooOld(entity, writer) => {
                write!(f, "version of {entity} by {writer} already reclaimed")
            }
            EngineError::WriteConflict(entity, winner) => {
                write!(f, "write-write conflict on {entity} against {winner}")
            }
            EngineError::NotActive(tx) => write!(f, "{tx} is not active"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::Deposed => {
                write!(
                    f,
                    "engine deposed: its WAL epoch was superseded by a promoted replica"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of store shards.
    pub shards: usize,
    /// Number of pre-created entities (`EntityId(0)..EntityId(entities)`),
    /// each initialized with `initial`.
    pub entities: usize,
    /// Initial version payload for every entity.
    pub initial: Bytes,
    /// Record the admission history (required for offline classification;
    /// turn off for long benchmark runs).
    pub record_history: bool,
    /// `Some(n)`: keep at most `n` admitted steps in the in-memory
    /// history, dropping the oldest (ring mode) and counting drops in
    /// [`History::dropped`] — bounds memory on long closed-loop and
    /// replication soak runs.  `None` (the default) keeps everything,
    /// which is what offline classification needs.
    pub history_capacity: Option<usize>,
    /// How admission is serialized: the batched group-commit pipeline
    /// (default) or the per-step baseline it replaced (kept for
    /// comparison benchmarks — experiment E13).
    pub admission: AdmissionMode,
    /// Durability: off (default — all pre-durability behavior), or a
    /// write-ahead log in buffered or fsync mode (experiment E14).  With
    /// durability on, [`Engine::new`] starts a fresh log (the directory
    /// must not already hold one) and [`Engine::recover`] resumes an
    /// existing one.
    pub durability: DurabilityConfig,
    /// Scripted failpoints for the deterministic chaos harness (`None` —
    /// the default — in production: a single `Option` check of overhead).
    /// The hook fires at every [`KillSite`](crate::KillSite) the pipeline
    /// passes; the failover tests install one that freezes the engine at
    /// one scripted site.
    pub chaos: Option<ChaosHook>,
    /// Per-stage latency tracing and the flight recorder
    /// ([`TelemetryMode::On`]); off by default — with telemetry off the
    /// stage probes compile down to a `None` check and no clock is ever
    /// read (experiment E17's overhead guard holds the on/off difference
    /// under 5%).
    pub telemetry: TelemetryMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 2,
            entities: 16,
            initial: Bytes::from_static(b"0"),
            record_history: true,
            history_capacity: None,
            admission: AdmissionMode::default(),
            durability: DurabilityConfig::off(),
            chaos: None,
            telemetry: TelemetryMode::default(),
        }
    }
}

/// The admission history of a run: the admitted steps in certifier order
/// plus the set of transactions that committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    /// Every admitted step, in admission order (including steps of
    /// transactions that later aborted).  In ring mode
    /// ([`EngineConfig::history_capacity`]) this is only the newest
    /// window; [`History::dropped`] counts what fell off the front.
    pub admitted: Vec<Step>,
    /// Admitted steps dropped by ring mode (0 in the default unbounded
    /// mode).  A history with drops is no longer classifiable as a whole
    /// — [`History::is_complete`] says which case holds.
    pub dropped: u64,
    /// The highest transaction id among the dropped steps (`None` when
    /// nothing was dropped).  Transaction ids are allocated monotonically,
    /// so every transaction with an id *above* this horizon has all of its
    /// admitted steps still in the window — the projection
    /// [`History::windowed_schedule`] builds on for online checking.
    pub drop_horizon: Option<TxId>,
    /// Transactions that committed.
    pub committed: BTreeSet<TxId>,
}

impl History {
    /// `true` when no admitted step was dropped: the committed projection
    /// is the full history the certifier ruled on, safe to classify.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// The committed projection: admitted steps of committed transactions,
    /// in admission order — the object the offline classifiers check.
    pub fn committed_schedule(&self) -> Schedule {
        Schedule::from_steps(
            self.admitted
                .iter()
                .copied()
                .filter(|s| self.committed.contains(&s.tx))
                .collect(),
        )
    }

    /// The classifiable *window* of a ring-mode history: the committed
    /// projection restricted to transactions wholly above
    /// [`History::drop_horizon`] — every one of their admitted steps is
    /// still in the window, so the projection is a genuine sub-schedule
    /// (no transaction with half its steps missing).  On a complete
    /// history this is exactly [`History::committed_schedule`].
    ///
    /// Soundness caveat for checkers: a window is a transaction-subset
    /// projection of the full committed history, so only properties
    /// *closed under transaction-subset projection* may be asserted on
    /// it.  Conflict-graph classes qualify (CSR and MVCSR: a subgraph of
    /// an acyclic conflict graph is acyclic); exact MVSR membership does
    /// not.  The online watchdog restricts itself accordingly.
    pub fn windowed_schedule(&self) -> Schedule {
        match self.drop_horizon {
            None => self.committed_schedule(),
            Some(horizon) => Schedule::from_steps(
                self.admitted
                    .iter()
                    .copied()
                    .filter(|s| s.tx > horizon && self.committed.contains(&s.tx))
                    .collect(),
            ),
        }
    }
}

/// A concurrent, sharded, multi-session MVCC engine.
pub struct Engine {
    shards: ShardedStore,
    pipeline: AdmissionPipeline,
    history: HistoryLog,
    metrics: Arc<EngineMetrics>,
    next_tx: AtomicU32,
    kind: CertifierKind,
    /// The write-ahead log (durability on) — shared with the pipeline,
    /// which owns the hot-path appends; the engine itself logs session
    /// lifecycle records and checkpoint markers.
    wal: Option<Arc<WalWriter>>,
    durability: DurabilityConfig,
    /// Sequence number of the last checkpoint cut (or recovered from).
    checkpoint_seq: AtomicU64,
    /// The primary epoch this engine's WAL records are stamped with
    /// (0 fresh / non-durable; bumped by [`Engine::promote_recover`]).
    epoch: u64,
    /// When this engine instance was constructed — the zero point of the
    /// failover timeline: a promoted engine's first commit records
    /// `opened_at.elapsed()` as the tail of measured MTTR.
    opened_at: Instant,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("kind", &self.kind)
            .field("shards", &self.shards.len())
            .field("admission", &self.pipeline.mode())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine with a fresh certifier of `kind`.
    ///
    /// With durability configured, this starts a *fresh* write-ahead log
    /// and panics if the directory already holds one — silently appending
    /// a new engine's records to an old engine's log would corrupt both
    /// histories.  Use [`Engine::recover`] to resume an existing log
    /// (it also handles an empty directory, recovering to the fresh
    /// state).
    pub fn new(kind: CertifierKind, config: EngineConfig) -> Self {
        let wal = config.durability.is_on().then(|| {
            let dir = &config.durability.dir;
            // lint: allow(unwrap) — startup path: a failed WAL directory create is fatal
            std::fs::create_dir_all(dir).expect("create WAL directory");
            assert!(
                // lint: allow(unwrap) — startup path: an unreadable WAL directory is fatal
                list_segments(dir).expect("list WAL directory").is_empty(),
                "durability dir {dir:?} already holds a WAL; use Engine::recover to resume it"
            );
            Arc::new(
                WalWriter::open(dir, config.durability.mode, config.durability.segment_bytes)
                    // lint: allow(unwrap) — startup path: a failed fresh-log open is fatal
                    .expect("open WAL for appending"),
            )
        });
        let epoch = wal.as_ref().map_or(0, |w| w.epoch());
        let metrics = Arc::new(EngineMetrics::with_telemetry(
            config.shards,
            config.telemetry.is_on().then(Telemetry::new),
        ));
        metrics.record_epoch(epoch);
        Engine {
            shards: ShardedStore::new(config.shards, config.entities, config.initial),
            pipeline: AdmissionPipeline::new(
                kind,
                config.shards,
                config.admission,
                wal.clone(),
                config.chaos.clone(),
            ),
            history: HistoryLog::new(config.record_history, config.history_capacity),
            metrics,
            next_tx: AtomicU32::new(1),
            kind,
            wal,
            durability: config.durability,
            checkpoint_seq: AtomicU64::new(0),
            epoch,
            // lint: allow(clock) — engine uptime anchor for the flight recorder's timeline
            opened_at: Instant::now(),
        }
    }

    /// Rebuilds an engine from the write-ahead log in
    /// `config.durability.dir` (newest checkpoint + log tail) and reopens
    /// the log for appending, so the resumed engine keeps extending the
    /// same durable history.  An empty directory recovers to the fresh
    /// state, which makes `recover` the universal "open" for durable
    /// engines.
    ///
    /// The recovered engine serves exactly the WAL's committed
    /// projection: uncommitted transactions are discarded (ACA carried
    /// across the crash), a fresh certifier is seeded with the recovered
    /// committed set and per-entity newest writers, and `next_tx`
    /// continues above every id in the log so resumed sessions never
    /// collide with recovered ones.
    pub fn recover(
        kind: CertifierKind,
        config: EngineConfig,
    ) -> std::io::Result<(Arc<Self>, RecoveryReport)> {
        assert!(
            config.durability.is_on(),
            "Engine::recover requires durability to be on"
        );
        let dir = config.durability.dir.clone();
        std::fs::create_dir_all(&dir)?;
        let recovered = mvcc_durability::recover(&dir, &Self::recovery_options(&config))?;
        // Reopening the writer physically truncates the torn tail the
        // recovery scan ignored, so appends extend the recovered prefix.
        let wal = Arc::new(WalWriter::open(
            &dir,
            config.durability.mode,
            config.durability.segment_bytes,
        )?);
        Ok(Self::assemble_recovered(kind, config, Some(wal), recovered))
    }

    /// Promotes the log in `config.durability.dir` to a new primary epoch
    /// and recovers an engine over it — failover's "take over the log"
    /// step, run by a replica that has finished absorbing the reachable
    /// prefix ([`WalWriter::promote_open`] does the fencing work).
    ///
    /// The order is the reverse of [`Engine::recover`]: the *promotion*
    /// heals the log first — fence cut at the end of the valid committed
    /// prefix, stale-epoch residue discarded, a fresh segment lineage
    /// opened under the bumped epoch — and only then is the healed prefix
    /// recovered (checkpoint + tail, ACA discard of commit-less
    /// transactions) and the engine assembled around the already-promoted
    /// writer.  From the moment the epoch marker lands, the deposed
    /// primary's appends and flushes are refused by the log, so nothing
    /// it does concurrently can leak past the fence this recovery read.
    pub fn promote_recover(
        kind: CertifierKind,
        config: EngineConfig,
    ) -> std::io::Result<(Arc<Self>, RecoveryReport)> {
        assert!(
            config.durability.is_on(),
            "Engine::promote_recover requires durability to be on"
        );
        let dir = config.durability.dir.clone();
        std::fs::create_dir_all(&dir)?;
        // Fence-then-recover, declared for the lock-order checker: the
        // promoted writer's lock exists (and the epoch fence has landed)
        // *before* any store lock of the new engine, so recovery-time store
        // traffic is sequenced after the fence rather than nested inside a
        // log append.  The declaration documents the sanctioned direction —
        // the runtime never holds `wal.writer` while taking store locks, and
        // recovery never appends while seeding chains.
        mvcc_analysis::lockdep::declare_order(
            "wal.writer",
            "store.chains",
            "promotion fences the log epoch (promote_open) before recovery \
             replays the healed prefix into fresh stores; the deposed \
             primary's appends are refused from the fence onward",
        );
        let wal = Arc::new(WalWriter::promote_open(
            &dir,
            config.durability.mode,
            config.durability.segment_bytes,
        )?);
        let recovered = mvcc_durability::recover(&dir, &Self::recovery_options(&config))?;
        Ok(Self::assemble_recovered(kind, config, Some(wal), recovered))
    }

    /// Recovers an engine that believes it owns epoch `owned_epoch` —
    /// the restart path for a primary that may have been deposed while it
    /// was down.  If the log's epoch marker still matches (or nothing was
    /// ever promoted), this is exactly [`Engine::recover`].  If the
    /// marker has moved past `owned_epoch`, a replica was promoted over
    /// this engine's log: the engine comes up *read-only* — the committed
    /// prefix up to the promotion fence is served, but the WAL is not
    /// reopened and every commit is refused with
    /// [`EngineError::Deposed`].
    pub fn recover_as(
        kind: CertifierKind,
        config: EngineConfig,
        owned_epoch: u64,
    ) -> std::io::Result<(Arc<Self>, RecoveryReport)> {
        assert!(
            config.durability.is_on(),
            "Engine::recover_as requires durability to be on"
        );
        let dir = config.durability.dir.clone();
        std::fs::create_dir_all(&dir)?;
        let current = mvcc_durability::read_epoch_marker(&dir)?.map_or(0, |m| m.epoch);
        if current <= owned_epoch {
            return Self::recover(kind, config);
        }
        // Superseded: serve the durable committed prefix, refuse writes.
        let recovered = mvcc_durability::recover(&dir, &Self::recovery_options(&config))?;
        let (engine, report) =
            Self::assemble_recovered_at(kind, config, None, recovered, owned_epoch);
        engine.pipeline.depose();
        Ok((engine, report))
    }

    fn recovery_options(config: &EngineConfig) -> RecoveryOptions {
        RecoveryOptions {
            shards: config.shards,
            entities: config.entities,
            initial: config.initial.clone(),
        }
    }

    /// Builds the engine around an already-recovered state and (for
    /// writable engines) an already-opened WAL writer — the shared tail
    /// of [`Engine::recover`], [`Engine::promote_recover`] and the fenced
    /// read-only path of [`Engine::recover_as`].
    fn assemble_recovered(
        kind: CertifierKind,
        config: EngineConfig,
        wal: Option<Arc<WalWriter>>,
        recovered: RecoveredState,
    ) -> (Arc<Self>, RecoveryReport) {
        let epoch = wal.as_ref().map_or(0, |w| w.epoch());
        Self::assemble_recovered_at(kind, config, wal, recovered, epoch)
    }

    /// [`Engine::assemble_recovered`] with an explicit engine epoch — the
    /// fenced read-only path has no writer to take the epoch from but
    /// still reports the (stale) epoch it owns.
    fn assemble_recovered_at(
        kind: CertifierKind,
        config: EngineConfig,
        wal: Option<Arc<WalWriter>>,
        recovered: RecoveredState,
        epoch: u64,
    ) -> (Arc<Self>, RecoveryReport) {
        let shards = ShardedStore::from_recovered(&recovered.shards);
        let pipeline = AdmissionPipeline::new(
            kind,
            config.shards,
            config.admission,
            wal.clone(),
            config.chaos.clone(),
        );
        // Everything the reopened log holds was read back from disk, so
        // it is flushed by definition: seed the durable horizon there,
        // or a post-recovery read router would treat the whole recovered
        // history as not-yet-observable and serve arbitrarily stale
        // `Latest` reads.
        if let Some(lsn) = wal.as_ref().and_then(|w| w.last_lsn()) {
            pipeline.note_durable(lsn);
        }
        // The newest committed writer per entity: what a resumed
        // single-version "latest" read must resolve to.
        let latest_writers: Vec<(EntityId, TxId)> = recovered
            .shards
            .iter()
            .flat_map(|shard| shard.chains.iter())
            .filter_map(|(entity, versions)| {
                versions
                    .last()
                    .filter(|v| v.writer != TxId::INITIAL)
                    .map(|v| (*entity, v.writer))
            })
            .collect();
        pipeline.seed_recovered(&recovered.committed, &latest_writers);
        let history = HistoryLog::new(config.record_history, config.history_capacity);
        history.seed(&recovered.admitted, &recovered.committed);
        let report = recovered.report.clone();
        let metrics = Arc::new(EngineMetrics::with_telemetry(
            config.shards,
            config.telemetry.is_on().then(Telemetry::new),
        ));
        metrics.record_epoch(epoch);
        let engine = Arc::new(Engine {
            shards,
            pipeline,
            history,
            metrics,
            next_tx: AtomicU32::new(recovered.next_tx),
            kind,
            wal,
            durability: config.durability,
            checkpoint_seq: AtomicU64::new(report.checkpoint_seq.unwrap_or(0)),
            epoch,
            // lint: allow(clock) — engine uptime anchor for the flight recorder's timeline
            opened_at: Instant::now(),
        });
        (engine, report)
    }

    /// Cuts a checkpoint: the committed state of every shard (plus the GC
    /// watermark each was cut at) is written to a checkpoint file, so
    /// recovery replays only the log tail after it.  Returns the new
    /// checkpoint's sequence number.
    ///
    /// The checkpoint is *fuzzy*: commits may land while the shards are
    /// being snapshotted.  The replay cursor is sampled before the
    /// snapshot and replay is idempotent per version, so the overlap is
    /// harmless (see `mvcc-durability`'s checkpoint docs).
    pub fn checkpoint(&self) -> std::io::Result<u64> {
        let wal = self
            .wal
            .as_ref()
            // lint: allow(unwrap) — documented panic: checkpoint requires durability on
            .expect("checkpoint requires durability to be on");
        // The cut runs under the group-commit drain lock: no commit can
        // then sit between its shard apply and its WAL record append, and
        // the flush barrier makes every record covering the snapshot
        // durable first — so the checkpoint can never persist a version
        // whose commit the recovered log does not know.  The replay
        // cursor is sampled inside the same fence, after the flush.
        let (replay_from_lsn, shards) = self.pipeline.checkpoint_cut(
            &self.metrics,
            || -> std::io::Result<(u64, Vec<ShardCheckpoint>)> {
                wal.flush()?;
                let replay_from_lsn = wal.last_lsn().map_or(0, |lsn| lsn + 1);
                let shards = self
                    .shards
                    .iter()
                    .map(|store| {
                        let watermark = gc::watermark(store);
                        let (commit_counter, chains) = store.committed_state();
                        ShardCheckpoint {
                            commit_counter,
                            watermark,
                            chains: chains
                                .into_iter()
                                .map(|(entity, versions)| {
                                    (
                                        entity,
                                        versions
                                            .into_iter()
                                            .map(|(writer, commit_ts, value)| CommittedVersion {
                                                writer,
                                                commit_ts,
                                                value,
                                            })
                                            .collect(),
                                    )
                                })
                                .collect(),
                        }
                    })
                    .collect();
                Ok((replay_from_lsn, shards))
            },
        )?;
        let seq = self.checkpoint_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.flight(EventKind::CheckpointCut { seq });
        let data = CheckpointData {
            seq,
            replay_from_lsn,
            next_tx: self.next_tx.load(Ordering::Relaxed),
            shards,
        };
        mvcc_durability::write_checkpoint(&self.durability.dir, &data)?;
        // Announce the checkpoint in the log and make the announcement
        // durable with the log's usual flush discipline.  The marker's
        // flush is deliberately *not* recorded as a WAL flush: those
        // counters measure commits-per-flush (the group-commit
        // amortization E14 reports), and a periodic checkpointer would
        // otherwise dilute the mean with zero-commit flushes.
        let receipt = wal.append_and_flush(&[WalRecord::Checkpoint { seq }])?;
        if let Some(lsn) = receipt.last_lsn {
            // The marker's flush made everything before it durable too.
            self.pipeline.note_durable(lsn);
        }
        self.metrics
            .record_wal_append(receipt.records, receipt.bytes);
        self.metrics.record_checkpoint();
        Ok(seq)
    }

    /// The durability configuration the engine runs under.
    pub fn durability(&self) -> &DurabilityConfig {
        &self.durability
    }

    /// The primary epoch this engine's WAL records carry (0 for a fresh
    /// or non-durable engine; bumped by every [`Engine::promote_recover`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `true` once this engine has been fenced out by a promotion over
    /// its WAL epoch: every commit is (and will forever be) refused with
    /// [`EngineError::Deposed`]; reads of the already-acknowledged state
    /// still work.
    pub fn is_deposed(&self) -> bool {
        self.pipeline.is_deposed()
    }

    /// The certifier configuration the engine runs.
    pub fn kind(&self) -> CertifierKind {
        self.kind
    }

    /// The class guaranteed for the committed history.
    pub fn class(&self) -> HistoryClass {
        self.kind.class()
    }

    /// The admission mode the engine runs under.
    pub fn admission_mode(&self) -> AdmissionMode {
        self.pipeline.mode()
    }

    /// Number of admission lanes (1 unless the certifier only needs
    /// per-entity ordering and admission is partitioned per shard).
    pub fn admission_lanes(&self) -> usize {
        self.pipeline.lane_count()
    }

    /// The engine's metrics.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// A shareable handle to the engine's metrics, for components that
    /// outlive a borrow (the replication shipper and router record their
    /// counters here so one `Display` block tells the whole story).
    pub fn metrics_handle(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// LSN of the newest record *appended* to the write-ahead log
    /// (buffered appends included), or `None` with durability off / an
    /// empty log.
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.wal.as_ref().and_then(|w| w.last_lsn())
    }

    /// LSN of the newest record known *flushed* per the durability mode —
    /// the horizon a log-shipping replica can actually observe — or
    /// `None` with durability off / nothing flushed yet.  Buffered-only
    /// appends (step records awaiting their batch's commit flush) sit
    /// above this.
    pub fn durable_lsn(&self) -> Option<u64> {
        self.pipeline.durable_lsn()
    }

    /// The sharded store (observability and tests).
    pub fn shards(&self) -> &ShardedStore {
        &self.shards
    }

    /// Begins a new session.  The engine allocates the transaction id.
    pub fn begin(self: &Arc<Self>) -> Session {
        let tx = TxId(self.next_tx.fetch_add(1, Ordering::Relaxed));
        self.metrics.record_begin();
        Session {
            engine: Arc::clone(self),
            tx,
            begun_shards: vec![false; self.shards.len()],
            active: true,
            // The begin record rides along with the first admitted step's
            // WAL append (keeping `begin` itself off the WAL mutex).
            wal_begin_pending: self.wal.is_some(),
            // lint: allow(clock) — commit latency measurement feeding EngineMetrics
            started: Instant::now(),
            trace: self.metrics.trace_begin(self.epoch, tx.0),
            spans: Vec::new(),
        }
    }

    /// A copy of the admission history (empty if recording is off).
    pub fn history(&self) -> History {
        self.history.snapshot()
    }

    /// Runs one GC pass over every shard under each shard's
    /// active-snapshot watermark; returns the number of reclaimed
    /// versions.  The background [`crate::GcDriver`] calls this
    /// periodically.
    pub fn collect_garbage(&self) -> usize {
        let mut reclaimed = 0;
        for store in self.shards.iter() {
            let report = gc::collect_with_watermark(store, gc::watermark(store));
            reclaimed += report.reclaimed;
        }
        self.metrics.record_gc(reclaimed);
        reclaimed
    }
}

/// A transaction handle bound to an [`Engine`].  Sessions are `Send`:
/// worker threads own their sessions and drive them to commit or abort.
/// Dropping an active session aborts it.
#[derive(Debug)]
pub struct Session {
    engine: Arc<Engine>,
    tx: TxId,
    /// Which shards this transaction has begun on (touched).
    begun_shards: Vec<bool>,
    active: bool,
    /// `true` until the transaction's begin record has been handed to the
    /// WAL (with the first step's append); always `false` with durability
    /// off.
    wal_begin_pending: bool,
    started: Instant,
    /// `Some` when this transaction was sampled for causal tracing at
    /// `begin` (1-in-32 per thread, telemetry on): every pipeline stage it
    /// passes through hands a span back through the outcome slots, and the
    /// finished tree is offered to the tail-exemplar reservoir at commit.
    trace: Option<TraceId>,
    /// Spans collected so far for a traced transaction (always empty when
    /// `trace` is `None`).
    spans: Vec<SpanRecord>,
}

impl Session {
    /// The transaction id.
    pub fn id(&self) -> TxId {
        self.tx
    }

    /// `true` until the session commits or aborts.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn ensure_active(&self) -> Result<(), EngineError> {
        if self.active {
            Ok(())
        } else {
            Err(EngineError::NotActive(self.tx))
        }
    }

    /// Lazily begins the transaction on the shard owning `entity`.
    fn touch(&mut self, entity: EntityId) -> Result<usize, EngineError> {
        let idx = self.engine.shards.shard_of(entity);
        if !self.begun_shards[idx] {
            self.engine.shards.store(idx).begin(self.tx)?;
            self.begun_shards[idx] = true;
        }
        Ok(idx)
    }

    /// Aborts after the ruling lane for `entity` already processed the
    /// abort: the remaining lanes are notified, store state is purged and
    /// the abort is recorded.
    fn abort_after_ruling(&mut self, reason: AbortReason, entity: EntityId) {
        let ruled_on = self
            .engine
            .pipeline
            .ruling_lane(entity, &self.engine.shards);
        self.engine.pipeline.notify_abort(self.tx, Some(ruled_on));
        self.finish_abort_inner(reason, Some(entity));
    }

    /// Reads `entity`, served per the certifier's ruling.  On any error
    /// except [`EngineError::NotActive`] the session is already aborted.
    pub fn read(&mut self, entity: EntityId) -> Result<Bytes, EngineError> {
        self.ensure_active()?;
        let step = Step::read(self.tx, entity);
        let log_begin = std::mem::take(&mut self.wal_begin_pending);
        let outcome = self.engine.pipeline.submit_step(
            step,
            None,
            log_begin,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
            self.trace,
            &mut self.spans,
        );
        let plan = match outcome {
            StepOutcome::Rejected => {
                self.abort_after_ruling(AbortReason::CertifierReject, entity);
                return Err(EngineError::Rejected(step));
            }
            StepOutcome::DirtyRead(writer) => {
                self.abort_after_ruling(AbortReason::DirtyRead, entity);
                return Err(EngineError::DirtyRead(step, writer));
            }
            StepOutcome::Admitted(Some(plan)) => plan,
            StepOutcome::Admitted(None) => unreachable!("read step admitted as write"),
        };
        let idx = self.touch(entity)?;
        let store = self.engine.shards.store(idx);
        let handle = TxHandle { id: self.tx };
        let result = match plan {
            ReadPlan::Latest => store.read_latest(handle, entity),
            ReadPlan::Snapshot => store.read_snapshot(handle, entity),
            ReadPlan::Version(source) => store.read_version(handle, entity, source),
        };
        match result {
            Ok(value) => {
                self.engine.metrics.record_read(idx);
                Ok(value)
            }
            Err(StoreError::NoSuchVersion(e, writer)) => {
                // The assigned version was committed (ACA held) but GC has
                // since reclaimed it: the multiversion analogue of
                // "snapshot too old".
                self.abort_with(AbortReason::SnapshotTooOld, Some(e));
                Err(EngineError::SnapshotTooOld(e, writer))
            }
            Err(e) => {
                self.abort_with(AbortReason::Explicit, Some(entity));
                Err(EngineError::Store(e))
            }
        }
    }

    /// Writes a new version of `entity`.  On any error except
    /// [`EngineError::NotActive`] the session is already aborted.
    pub fn write(&mut self, entity: EntityId, value: Bytes) -> Result<(), EngineError> {
        self.ensure_active()?;
        let step = Step::write(self.tx, entity);
        let log_begin = std::mem::take(&mut self.wal_begin_pending);
        let outcome = self.engine.pipeline.submit_step(
            step,
            Some(&value),
            log_begin,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
            self.trace,
            &mut self.spans,
        );
        match outcome {
            StepOutcome::Rejected => {
                self.abort_after_ruling(AbortReason::CertifierReject, entity);
                return Err(EngineError::Rejected(step));
            }
            StepOutcome::DirtyRead(writer) => {
                unreachable!("write step ruled a dirty read of {writer}")
            }
            StepOutcome::Admitted(_) => {}
        }
        let idx = self.touch(entity)?;
        let store = self.engine.shards.store(idx);
        store.write(TxHandle { id: self.tx }, entity, value)?;
        self.engine.metrics.record_write(idx);
        Ok(())
    }

    /// Commits the transaction on every touched shard via the group-commit
    /// lane.  Under snapshot isolation this is where first-committer-wins
    /// validation runs; on conflict the session is aborted and
    /// [`EngineError::WriteConflict`] returned.
    pub fn commit(self) -> Result<(), EngineError> {
        self.commit_durable().map(|_| ())
    }

    /// [`Session::commit`] that also reports *where* the commit landed in
    /// the write-ahead log: the LSN of the batch's commit record (`None`
    /// with durability off).  A client that later wants read-your-writes
    /// on a read replica hands this LSN to the router's wait-for-LSN.
    pub fn commit_durable(mut self) -> Result<Option<u64>, EngineError> {
        self.ensure_active()?;
        let outcome = self.engine.pipeline.submit_commit(
            self.tx,
            &self.begun_shards,
            &self.engine.shards,
            &self.engine.history,
            &self.engine.metrics,
            self.trace,
            &mut self.spans,
        );
        match outcome {
            CommitOutcome::Committed { wal_lsn } => {
                self.active = false;
                self.engine.metrics.record_commit(self.started.elapsed());
                if let Some(trace) = self.trace {
                    // The finished span tree: whole-transaction latency at
                    // the root, stage spans beneath.  The reservoir keeps
                    // it only if it is among the slowest outliers.
                    let mut tree = TraceTree::new(trace);
                    tree.total_us =
                        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    for span in self.spans.drain(..) {
                        tree.push(span);
                    }
                    self.engine.metrics.offer_exemplar(tree);
                }
                if self.engine.epoch > 0 {
                    // First commit under a promoted epoch closes the
                    // failover timeline: time from this (promoted)
                    // engine's construction to service actually restored.
                    self.engine.metrics.record_epoch_first_commit(
                        self.engine.epoch,
                        self.engine.opened_at.elapsed(),
                    );
                }
                Ok(wal_lsn)
            }
            CommitOutcome::Conflict(entity, winner) => {
                self.abort_with(AbortReason::WriteConflict, Some(entity));
                Err(EngineError::WriteConflict(entity, winner))
            }
            // Dropping `self` aborts the session (matching the pre-pipeline
            // behavior of `?` on a failed shard commit).
            CommitOutcome::Store(e) => Err(EngineError::Store(e)),
            CommitOutcome::Deposed => {
                // Nothing was applied and nothing can ever be made durable
                // here again: abort locally and tell the client to
                // re-route to the promoted primary.
                self.abort_with(AbortReason::Deposed, None);
                Err(EngineError::Deposed)
            }
        }
    }

    /// Aborts the transaction explicitly.
    pub fn abort(mut self) {
        if self.active {
            self.abort_with(AbortReason::Explicit, None);
        }
    }

    fn abort_with(&mut self, reason: AbortReason, trigger: Option<EntityId>) {
        self.engine.pipeline.notify_abort(self.tx, None);
        self.finish_abort_inner(reason, trigger);
    }

    /// Purges store state and records the abort; the admission lanes have
    /// already been notified by the caller.
    fn finish_abort_inner(&mut self, reason: AbortReason, trigger: Option<EntityId>) {
        if let Some(wal) = &self.engine.wal {
            // Informational (recovery discards commit-less transactions
            // either way); buffered until the next flush.  A *fencing*
            // refusal is tolerated silently: a deposed engine's aborts
            // are implied by the promotion cut (the transaction has no
            // commit record past the fence), so losing the record changes
            // nothing recovery or a replica would conclude.
            match wal.append_batch(&[WalRecord::Abort { tx: self.tx }]) {
                Ok(receipt) => self
                    .engine
                    .metrics
                    .record_wal_append(receipt.records, receipt.bytes),
                Err(e) if is_fence_error(&e) => {}
                Err(e) => panic!("WAL append failed: durability can no longer be guaranteed: {e}"),
            }
        }
        for (idx, &begun) in self.begun_shards.iter().enumerate() {
            if begun {
                let _ = self
                    .engine
                    .shards
                    .store(idx)
                    .abort(TxHandle { id: self.tx });
            }
        }
        self.active = false;
        self.engine.metrics.record_abort_traced(
            reason,
            trigger.map(|e| self.engine.shards.shard_of(e)),
            self.trace,
        );
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.active {
            self.abort_with(AbortReason::Explicit, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> [AdmissionMode; 2] {
        [AdmissionMode::Batched, AdmissionMode::PerStep]
    }

    fn engine_with(kind: CertifierKind, admission: AdmissionMode) -> Arc<Engine> {
        Arc::new(Engine::new(
            kind,
            EngineConfig {
                shards: 2,
                entities: 8,
                admission,
                ..EngineConfig::default()
            },
        ))
    }

    fn engine(kind: CertifierKind) -> Arc<Engine> {
        engine_with(kind, AdmissionMode::default())
    }

    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1); // different shard from X

    #[test]
    fn read_write_commit_round_trip_on_every_certifier_and_mode() {
        for kind in CertifierKind::all() {
            for mode in modes() {
                let e = engine_with(kind, mode);
                let mut s1 = e.begin();
                assert_eq!(s1.read(X).unwrap(), Bytes::from_static(b"0"));
                s1.write(Y, Bytes::from_static(b"one")).unwrap();
                s1.commit().unwrap();
                let mut s2 = e.begin();
                assert_eq!(
                    s2.read(Y).unwrap(),
                    Bytes::from_static(b"one"),
                    "{kind}/{mode}"
                );
                s2.commit().unwrap();
                let snap = e.metrics().snapshot();
                assert_eq!(snap.committed, 2, "{kind}/{mode}");
                assert_eq!(snap.aborted, 0, "{kind}/{mode}");
                let history = e.history();
                assert_eq!(history.admitted.len(), 3);
                assert_eq!(history.committed.len(), 2);
                assert!(
                    e.class().check(&history.committed_schedule()),
                    "{kind}/{mode}"
                );
            }
        }
    }

    #[test]
    fn rejection_aborts_the_session() {
        for mode in modes() {
            let e = engine_with(CertifierKind::TwoPhaseLocking, mode);
            let mut s1 = e.begin();
            let mut s2 = e.begin();
            s1.write(X, Bytes::from_static(b"a")).unwrap();
            let err = s2.write(X, Bytes::from_static(b"b")).unwrap_err();
            assert!(matches!(err, EngineError::Rejected(_)), "{mode}");
            assert!(!s2.is_active());
            assert!(matches!(s2.read(Y), Err(EngineError::NotActive(_))));
            s1.commit().unwrap();
            // The lock is released: a fresh session can write x.
            let mut s3 = e.begin();
            s3.write(X, Bytes::from_static(b"c")).unwrap();
            s3.commit().unwrap();
            let snap = e.metrics().snapshot();
            assert_eq!(snap.committed, 2);
            assert_eq!(snap.aborted, 1);
            // The abort is attributed to x's shard.
            assert_eq!(snap.shard_conflicts[e.shards().shard_of(X)], 1);
        }
    }

    #[test]
    fn aca_aborts_readers_of_uncommitted_versions() {
        let e = engine(CertifierKind::Mvto);
        let mut writer = e.begin();
        writer.write(X, Bytes::from_static(b"w")).unwrap();
        // MVTO assigns the reader the writer's (uncommitted) version — the
        // engine's ACA rule aborts the reader instead.
        let mut reader = e.begin();
        let err = reader.read(X).unwrap_err();
        assert!(matches!(err, EngineError::DirtyRead(_, w) if w == writer.id()));
        writer.commit().unwrap();
        // After the writer commits, new readers are served normally.
        let mut reader2 = e.begin();
        assert_eq!(reader2.read(X).unwrap(), Bytes::from_static(b"w"));
        reader2.commit().unwrap();
        let snap = e.metrics().snapshot();
        assert_eq!(
            snap.aborts_by_reason
                .iter()
                .find(|(r, _)| *r == AbortReason::DirtyRead)
                .unwrap()
                .1,
            1
        );
    }

    #[test]
    fn latest_reads_are_pinned_to_the_admitted_sequence() {
        // Fractured-read regression: under SGT, T1 writes x and y without
        // committing; a reader admitted after those writes must NOT be
        // served the pre-T1 store state (which would realize a history
        // different from the certified admission sequence) — the pinned
        // read resolves to T1's uncommitted version and the ACA rule
        // aborts the reader instead.
        for mode in modes() {
            let e = engine_with(CertifierKind::Sgt, mode);
            let mut t1 = e.begin();
            t1.write(X, Bytes::from_static(b"x1")).unwrap();
            t1.write(Y, Bytes::from_static(b"y1")).unwrap();
            let mut t2 = e.begin();
            let err = t2.read(X).unwrap_err();
            assert!(
                matches!(err, EngineError::DirtyRead(_, w) if w == t1.id()),
                "{mode}"
            );
            t1.commit().unwrap();
            // After the commit the pinned read serves T1's value.
            let mut t3 = e.begin();
            assert_eq!(t3.read(X).unwrap(), Bytes::from_static(b"x1"));
            assert_eq!(t3.read(Y).unwrap(), Bytes::from_static(b"y1"));
            t3.commit().unwrap();
        }
    }

    #[test]
    fn gc_can_make_old_snapshots_unservable() {
        let e = engine(CertifierKind::Mvto);
        // The reader acquires an early MVTO timestamp by reading y.
        let mut reader = e.begin();
        reader.read(Y).unwrap();
        // Two later writers supersede x twice and commit.
        for v in [b"v1".as_slice(), b"v2".as_slice()] {
            let mut w = e.begin();
            w.write(X, Bytes::copy_from_slice(v)).unwrap();
            w.commit().unwrap();
        }
        // GC on x's shard sees no active transaction there and reclaims
        // everything but the newest committed version.
        let reclaimed = e.collect_garbage();
        assert!(reclaimed >= 2, "reclaimed {reclaimed}");
        // MVTO directs the old reader at the initial version, which is
        // gone: the engine reports "snapshot too old" and aborts.
        let err = reader.read(X).unwrap_err();
        assert!(matches!(err, EngineError::SnapshotTooOld(entity, _) if entity == X));
        let snap = e.metrics().snapshot();
        assert_eq!(snap.gc_passes, 1);
        assert!(snap.gc_reclaimed >= 2);
    }

    #[test]
    fn snapshot_isolation_first_committer_wins_across_shards() {
        for mode in modes() {
            let e = engine_with(CertifierKind::SnapshotIsolation, mode);
            // SI only needs per-entity ordering, so the batched pipeline
            // gives it one admission lane per shard; the per-step baseline
            // keeps PR 2's single global admission lock.
            let expected_lanes = match mode {
                AdmissionMode::Batched => 2,
                AdmissionMode::PerStep => 1,
            };
            assert_eq!(e.admission_lanes(), expected_lanes, "{mode}");
            let mut t1 = e.begin();
            let mut t2 = e.begin();
            // Both write the same entity on shard of X and disjoint ones on
            // Y's shard: the conflict is on X only.
            t1.write(X, Bytes::from_static(b"t1")).unwrap();
            t2.write(X, Bytes::from_static(b"t2")).unwrap();
            t1.write(Y, Bytes::from_static(b"t1")).unwrap();
            t1.commit().unwrap();
            let err = t2.commit().unwrap_err();
            assert!(
                matches!(err, EngineError::WriteConflict(entity, _) if entity == X),
                "{mode}"
            );
            // The loser's version is purged everywhere.
            let mut check = e.begin();
            assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"t1"));
            assert_eq!(check.read(Y).unwrap(), Bytes::from_static(b"t1"));
            check.commit().unwrap();
        }
    }

    #[test]
    fn snapshot_isolation_disjoint_writers_both_commit() {
        let e = engine(CertifierKind::SnapshotIsolation);
        let mut t1 = e.begin();
        let mut t2 = e.begin();
        t1.write(X, Bytes::from_static(b"t1")).unwrap();
        t2.write(Y, Bytes::from_static(b"t2")).unwrap();
        t1.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(e.metrics().snapshot().committed, 2);
    }

    #[test]
    fn dropping_an_active_session_aborts_it() {
        let e = engine(CertifierKind::Sgt);
        {
            let mut s = e.begin();
            s.write(X, Bytes::from_static(b"doomed")).unwrap();
        }
        let snap = e.metrics().snapshot();
        assert_eq!(snap.aborted, 1);
        let mut check = e.begin();
        assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"0"));
        check.commit().unwrap();
    }

    #[test]
    fn explicit_abort_discards_writes_and_certifier_state() {
        for mode in modes() {
            let e = engine_with(CertifierKind::TwoPhaseLocking, mode);
            let mut s = e.begin();
            s.write(X, Bytes::from_static(b"tmp")).unwrap();
            s.abort();
            // The exclusive lock is gone.
            let mut s2 = e.begin();
            s2.write(X, Bytes::from_static(b"ok")).unwrap();
            s2.commit().unwrap();
            let history = e.history();
            // Both writes were admitted, only one committed.
            assert_eq!(history.admitted.len(), 2, "{mode}");
            assert_eq!(history.committed_schedule().len(), 1, "{mode}");
        }
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        for mode in modes() {
            let e = engine_with(CertifierKind::MvSgt, mode);
            let mut handles = Vec::new();
            for i in 0..8u32 {
                let e = Arc::clone(&e);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..10 {
                        let mut s = e.begin();
                        let entity = EntityId(i % 4);
                        if s.read(entity).is_err() {
                            continue;
                        }
                        if s.write(entity, Bytes::from(format!("{i}"))).is_err() {
                            continue;
                        }
                        let _ = s.commit();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let snap = e.metrics().snapshot();
            assert_eq!(snap.committed + snap.aborted, snap.begun, "{mode}");
            assert!(snap.committed > 0, "{mode}");
            // The committed history is in the certifier's class.
            let history = e.history();
            assert!(e.class().check(&history.committed_schedule()), "{mode}");
        }
    }

    #[test]
    fn batched_mode_reports_batches() {
        let e = engine_with(CertifierKind::Sgt, AdmissionMode::Batched);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let snap = e.metrics().snapshot();
        assert!(snap.admission_batches >= 1);
        assert!(snap.admission_batch_steps >= 1);
        assert_eq!(snap.commit_batches, 1);
        assert_eq!(snap.commit_batch_txns, 1);
        // The per-step baseline records no batches.
        let e = engine_with(CertifierKind::Sgt, AdmissionMode::PerStep);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        assert_eq!(e.metrics().snapshot().admission_batches, 0);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-session-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_engine(
        kind: CertifierKind,
        dir: &std::path::Path,
        mode: mvcc_durability::DurabilityMode,
    ) -> Arc<Engine> {
        Arc::new(Engine::new(
            kind,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig {
                    mode,
                    dir: dir.to_path_buf(),
                    segment_bytes: 8 << 20,
                },
                ..EngineConfig::default()
            },
        ))
    }

    #[test]
    fn durable_commits_survive_recovery_and_in_flight_sessions_do_not() {
        for mode in [
            mvcc_durability::DurabilityMode::Buffered,
            mvcc_durability::DurabilityMode::Fsync,
        ] {
            let dir = temp_dir("recover");
            let e = durable_engine(CertifierKind::Sgt, &dir, mode);
            let mut s1 = e.begin();
            let t1 = s1.id();
            s1.write(X, Bytes::from_static(b"durable-x")).unwrap();
            s1.write(Y, Bytes::from_static(b"durable-y")).unwrap();
            s1.commit().unwrap();
            // An in-flight session: writes admitted, never committed —
            // the crash (recovering while it is still open) discards it.
            let mut in_flight = e.begin();
            in_flight.write(X, Bytes::from_static(b"doomed")).unwrap();
            // A later commit's flush pushes the in-flight records into the
            // OS (prefix durability): recovery will *see* the loser's
            // write and still discard it.
            let mut s2 = e.begin();
            let t2 = s2.id();
            s2.write(Y, Bytes::from_static(b"second")).unwrap();
            s2.commit().unwrap();
            let snap = e.metrics().snapshot();
            assert!(snap.durability_on(), "{mode}");
            assert!(snap.wal_flushes >= 2, "{mode}");
            assert_eq!(snap.wal_commits, 2, "{mode}");
            if mode == mvcc_durability::DurabilityMode::Fsync {
                assert_eq!(snap.wal_fsyncs, snap.wal_flushes, "{mode}");
            } else {
                assert_eq!(snap.wal_fsyncs, 0, "{mode}");
            }
            let (recovered, report) = Engine::recover(
                CertifierKind::Sgt,
                EngineConfig {
                    shards: 2,
                    entities: 8,
                    durability: DurabilityConfig {
                        mode,
                        dir: dir.clone(),
                        segment_bytes: 8 << 20,
                    },
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            assert_eq!(report.discarded, vec![in_flight.id()], "{mode}");
            // The recovered committed history matches.
            let history = recovered.history();
            assert_eq!(history.committed, BTreeSet::from([t1, t2]));
            assert_eq!(history.committed_schedule().len(), 3, "{mode}");
            // Recovered reads serve the durable values (the "latest" read
            // resolves to the recovered writer, not the pre-seed).
            let mut check = recovered.begin();
            assert!(check.id().0 > in_flight.id().0, "{mode}: tx ids collide");
            assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"durable-x"));
            assert_eq!(check.read(Y).unwrap(), Bytes::from_static(b"second"));
            check.commit().unwrap();
            drop(in_flight);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn recovery_of_an_empty_directory_is_a_cold_start() {
        let dir = temp_dir("cold");
        let (e, report) = Engine::recover(
            CertifierKind::Mvto,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(&dir),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.records_scanned, 0);
        assert_eq!(report.checkpoint_seq, None);
        let mut s = e.begin();
        assert_eq!(s.id(), TxId(1));
        assert_eq!(s.read(X).unwrap(), Bytes::from_static(b"0"));
        s.commit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_replay_and_records_the_watermark() {
        let dir = temp_dir("ckpt");
        let e = durable_engine(
            CertifierKind::Sgt,
            &dir,
            mvcc_durability::DurabilityMode::Buffered,
        );
        // Pile up versions of X, GC them, checkpoint, then commit more.
        for i in 0..4u32 {
            let mut s = e.begin();
            s.write(X, Bytes::from(format!("v{i}"))).unwrap();
            s.commit().unwrap();
        }
        assert!(e.collect_garbage() > 0, "GC reclaimed nothing");
        let seq = e.checkpoint().unwrap();
        assert_eq!(seq, 1);
        let ckpt = mvcc_durability::latest_checkpoint(&dir).unwrap().unwrap();
        let x_shard = &ckpt.shards[e.shards().shard_of(X)];
        assert!(
            x_shard.watermark > 0,
            "checkpoint must record the watermark"
        );
        assert!(x_shard.commit_counter >= x_shard.watermark);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"post-ckpt")).unwrap();
        s.commit().unwrap();
        let (recovered, report) = Engine::recover(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(&dir),
                ..EngineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        // Data replay was bounded by the checkpoint: only the post-ckpt
        // commit replayed.
        assert_eq!(report.commits_replayed, 1);
        // A recovered snapshot sits at or above the reclaimed horizon and
        // reads every entity (nothing below the watermark is offered).
        let shard_x = recovered.shards().store_for(X);
        assert!(shard_x.current_ts() >= x_shard.watermark);
        let mut check = recovered.begin();
        assert_eq!(check.read(X).unwrap(), Bytes::from_static(b"post-ckpt"));
        assert_eq!(check.read(Y).unwrap(), Bytes::from_static(b"0"));
        check.commit().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "already holds a WAL")]
    fn new_refuses_a_directory_with_an_existing_log() {
        let dir = temp_dir("refuse");
        {
            let e = durable_engine(
                CertifierKind::Sgt,
                &dir,
                mvcc_durability::DurabilityMode::Buffered,
            );
            let mut s = e.begin();
            s.write(X, Bytes::from_static(b"x")).unwrap();
            s.commit().unwrap();
        }
        let _ = durable_engine(
            CertifierKind::Sgt,
            &dir,
            mvcc_durability::DurabilityMode::Buffered,
        );
    }

    #[test]
    fn ring_history_bounds_memory_and_counts_drops() {
        let e = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                history_capacity: Some(4),
                ..EngineConfig::default()
            },
        ));
        for i in 0..6u32 {
            let mut s = e.begin();
            s.write(X, Bytes::from(format!("{i}"))).unwrap();
            s.commit().unwrap();
        }
        let history = e.history();
        assert_eq!(history.admitted.len(), 4, "ring keeps only the window");
        assert_eq!(history.dropped, 2, "high-water counter tracks drops");
        assert!(!history.is_complete());
        assert_eq!(
            history.committed.len(),
            6,
            "commit membership is never dropped"
        );
        // The default stays unbounded and complete.
        let e = engine(CertifierKind::Sgt);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        assert!(e.history().is_complete());
    }

    #[test]
    fn commit_durable_reports_the_commit_record_lsn() {
        // Durability off: no LSN to report.
        let e = engine(CertifierKind::Sgt);
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        assert_eq!(s.commit_durable().unwrap(), None);
        assert_eq!(e.durable_lsn(), None);
        assert_eq!(e.wal_last_lsn(), None);
        // Durability on: each commit's LSN is the batch's commit record,
        // monotonically increasing, and the durable horizon follows it.
        let dir = temp_dir("lsn");
        let e = durable_engine(
            CertifierKind::Sgt,
            &dir,
            mvcc_durability::DurabilityMode::Buffered,
        );
        let mut s1 = e.begin();
        s1.write(X, Bytes::from_static(b"a")).unwrap();
        let lsn1 = s1.commit_durable().unwrap().expect("durable commit");
        let mut s2 = e.begin();
        s2.write(Y, Bytes::from_static(b"b")).unwrap();
        let lsn2 = s2.commit_durable().unwrap().expect("durable commit");
        assert!(lsn2 > lsn1, "commit records are ordered: {lsn1} vs {lsn2}");
        assert_eq!(e.durable_lsn(), Some(lsn2));
        assert!(e.wal_last_lsn() >= e.durable_lsn());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn history_recording_can_be_disabled() {
        let e = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                record_history: false,
                ..EngineConfig::default()
            },
        ));
        let mut s = e.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let history = e.history();
        assert!(history.admitted.is_empty());
        assert_eq!(history.committed.len(), 1);
    }
}
