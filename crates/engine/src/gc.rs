//! Background garbage collection.
//!
//! Multiversion concurrency trades space for concurrency; the engine pays
//! the space back here.  A [`GcDriver`] owns a background thread that
//! periodically runs [`Engine::collect_garbage`]: one pass per shard under
//! that shard's active-snapshot watermark
//! ([`mvcc_store::gc::collect_with_watermark`]), so a long-running
//! snapshot pins exactly the versions it can still observe and nothing
//! more.  Reclamation can race with an in-flight multiversion read that
//! was assigned a very old version — the session layer surfaces that as
//! [`crate::EngineError::SnapshotTooOld`] (the engine's ORA-01555) rather
//! than ever serving a freed version.

use crate::session::Engine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to the background GC thread.  Stop it explicitly with
/// [`GcDriver::stop`] or implicitly by dropping it.
#[derive(Debug)]
pub struct GcDriver {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl GcDriver {
    /// Spawns a GC thread over `engine`, running one collection every
    /// `period`.
    pub fn start(engine: Arc<Engine>, period: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                engine.collect_garbage();
                std::thread::sleep(period);
            }
        });
        GcDriver {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for GcDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::CertifierKind;
    use crate::session::EngineConfig;
    use bytes::Bytes;
    use mvcc_core::EntityId;

    #[test]
    fn driver_reclaims_superseded_versions_in_the_background() {
        let engine = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 4,
                ..EngineConfig::default()
            },
        ));
        let driver = GcDriver::start(Arc::clone(&engine), Duration::from_millis(1));
        // Pile up versions of one entity.
        for i in 0..32u32 {
            let mut s = engine.begin();
            if s.write(EntityId(0), Bytes::from(format!("{i}"))).is_ok() {
                let _ = s.commit();
            }
        }
        // Wait for at least one pass to observe the pile.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.metrics().snapshot().gc_reclaimed == 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        let snap = engine.metrics().snapshot();
        assert!(snap.gc_passes > 0, "driver never ran");
        assert!(snap.gc_reclaimed > 0, "driver never reclaimed");
        // A final manual pass leaves only the newest committed version.
        engine.collect_garbage();
        assert_eq!(
            engine
                .shards()
                .store_for(EntityId(0))
                .version_count(EntityId(0)),
            1
        );
    }

    #[test]
    fn dropping_the_driver_stops_the_thread() {
        let engine = Arc::new(Engine::new(CertifierKind::Sgt, EngineConfig::default()));
        {
            let _driver = GcDriver::start(Arc::clone(&engine), Duration::from_millis(1));
            std::thread::sleep(Duration::from_millis(5));
        }
        // If the thread were still running it would keep bumping the pass
        // counter; sample twice to show it stopped.
        let a = engine.metrics().snapshot().gc_passes;
        std::thread::sleep(Duration::from_millis(10));
        let b = engine.metrics().snapshot().gc_passes;
        assert_eq!(a, b);
        assert!(a > 0);
    }
}
