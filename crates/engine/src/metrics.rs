//! Engine observability: counters, abort breakdown, latency histograms,
//! per-shard contention, and — when `mvcc-replica` components are handed
//! the engine's metrics handle — replication shipping/apply/routing
//! counters, rendered next to the durability block.
//!
//! Everything on the hot path is lock-free (`AtomicU64` relaxed
//! counters, or a thread-local telemetry buffer — a plain store), and
//! [`EngineMetrics::snapshot`] renders a consistent-enough point-in-time
//! [`MetricsSnapshot`] for tables and reports.
//!
//! `EngineMetrics` is also the engine's **telemetry registry handle**:
//! when the engine runs with [`mvcc_telemetry::TelemetryMode::On`], the
//! per-stage histograms and the flight recorder live behind this same
//! handle, so `Engine::metrics_handle()` is the one coherent
//! observability surface — engine counters, durability, replication,
//! failover, and per-stage latency distributions all come out of one
//! [`MetricsSnapshot`].

use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_telemetry::timeline::{TimelineFrame, TimelineRing};
use mvcc_telemetry::{
    EventKind, ExemplarReservoir, Stage, Telemetry, TelemetrySnapshot, TraceId, TraceTree,
};
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// High-frequency batch probes trace one batch in this many (per
/// thread; must be a power of two).  See [`EngineMetrics::trace_batch`].
const BATCH_SAMPLE: u32 = 32;

/// Transactions collect a full span tree one-in-this-many per thread
/// (must be a power of two).  See [`EngineMetrics::trace_begin`].
const TRACE_SAMPLE: u32 = 32;

thread_local! {
    /// Per-thread sampling tick for [`EngineMetrics::trace_batch`] — a
    /// plain cell so sampling itself costs no atomics.
    static PROBE_TICK: Cell<u32> = const { Cell::new(0) };
    /// Per-thread sampling tick for [`EngineMetrics::trace_begin`] —
    /// separate from `PROBE_TICK` so span-tree sampling and batch-probe
    /// sampling stay independent (a thread's first transaction is always
    /// traced, which is what makes the attribution tests deterministic).
    static TRACE_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The certifier rejected a step.
    CertifierReject,
    /// The transaction would have read a version whose writer had not
    /// committed (the engine enforces ACA — avoids cascading aborts).
    DirtyRead,
    /// The assigned version was already reclaimed by GC ("snapshot too
    /// old").
    SnapshotTooOld,
    /// Snapshot isolation's first-committer-wins validation failed.
    WriteConflict,
    /// The session aborted voluntarily (explicit `abort()` or drop).
    Explicit,
    /// The engine was deposed by a failover: a newer epoch fenced its WAL
    /// mid-commit, so the transaction cannot be made durable here.
    Deposed,
}

impl AbortReason {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            AbortReason::CertifierReject => 0,
            AbortReason::DirtyRead => 1,
            AbortReason::SnapshotTooOld => 2,
            AbortReason::WriteConflict => 3,
            AbortReason::Explicit => 4,
            AbortReason::Deposed => 5,
        }
    }

    /// All reasons, in breakdown-table order.
    pub fn all() -> [AbortReason; Self::COUNT] {
        [
            AbortReason::CertifierReject,
            AbortReason::DirtyRead,
            AbortReason::SnapshotTooOld,
            AbortReason::WriteConflict,
            AbortReason::Explicit,
            AbortReason::Deposed,
        ]
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::CertifierReject => write!(f, "rejected"),
            AbortReason::DirtyRead => write!(f, "dirty-read"),
            AbortReason::SnapshotTooOld => write!(f, "snapshot-too-old"),
            AbortReason::WriteConflict => write!(f, "write-conflict"),
            AbortReason::Explicit => write!(f, "explicit"),
            AbortReason::Deposed => write!(f, "deposed"),
        }
    }
}

/// Power-of-two commit-latency histogram: bucket 0 counts sub-µs commits
/// and bucket `i > 0` counts latencies in `[2^(i-1), 2^i)` microseconds,
/// so `2^i` is the inclusive upper bound of bucket `i` (the bound
/// [`MetricsSnapshot::latency_us`] interpolates within).
#[derive(Debug, Default)]
struct LatencyHistogram {
    buckets: [AtomicU64; 32],
}

impl LatencyHistogram {
    fn record(&self, latency: Duration) {
        // `as_micros` is u128; a plain `as u64` cast would silently wrap
        // absurd durations around to *small* values and file them in fast
        // buckets.  Saturate instead: anything beyond u64::MAX µs (585
        // millennia) lands in the top bucket.
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let bucket = (64 - micros.leading_zeros() as usize).min(31);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Per-shard contention counters.
#[derive(Debug, Default)]
struct ShardCounters {
    /// Read/write operations executed against the shard.
    ops: AtomicU64,
    /// Aborts whose triggering entity lived on the shard (rejections,
    /// dirty reads, stale snapshots, write conflicts).
    conflicts: AtomicU64,
}

/// Shared engine metrics.  All methods take `&self`; the engine embeds one
/// instance and every session thread updates it concurrently.
#[derive(Debug)]
pub struct EngineMetrics {
    begun: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    aborts_by_reason: [AtomicU64; AbortReason::COUNT],
    gc_passes: AtomicU64,
    gc_reclaimed: AtomicU64,
    admission_batches: AtomicU64,
    admission_batch_steps: AtomicU64,
    commit_batches: AtomicU64,
    commit_batch_txns: AtomicU64,
    wal_appends: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    wal_flushes: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_commits: AtomicU64,
    checkpoints: AtomicU64,
    /// Gauge, not counter: the primary epoch the engine's WAL writes
    /// under (0 until a failover has ever happened on the log).
    epoch: AtomicU64,
    repl_shipped_records: AtomicU64,
    repl_applied_records: AtomicU64,
    repl_applied_commits: AtomicU64,
    repl_apply_batches: AtomicU64,
    repl_routed_reads: AtomicU64,
    repl_wait_stalls: AtomicU64,
    repl_wait_stall_us: AtomicU64,
    repl_max_lag_lsn: AtomicU64,
    commit_latency: LatencyHistogram,
    /// The log-linear refinement of `commit_latency` — always on (its
    /// cost is one extra relaxed `fetch_add` set per commit), so
    /// interpolated quantiles are available even with stage tracing off.
    commit_latency_fine: mvcc_telemetry::Histogram,
    shards: Vec<ShardCounters>,
    telemetry: Option<Telemetry>,
    epoch_first_commit_done: AtomicBool,
    /// The timeline frame ring a running `HealthMonitor` attaches, so
    /// `Display` can show the last *window's* rates next to the lifetime
    /// counters.  Off the hot path: touched only by `snapshot()` and the
    /// monitor's attach/detach.
    timeline: TrackedMutex<Option<Arc<TimelineRing>>>,
}

impl EngineMetrics {
    /// Creates zeroed metrics for an engine with `shards` shards and no
    /// stage telemetry (probes compile down to an `Option` check).
    pub fn new(shards: usize) -> Self {
        EngineMetrics::with_telemetry(shards, None)
    }

    /// Creates zeroed metrics wired to a telemetry registry: stage
    /// probes and flight-recorder events feed `telemetry` when it is
    /// `Some`.
    pub fn with_telemetry(shards: usize, telemetry: Option<Telemetry>) -> Self {
        EngineMetrics {
            begun: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            aborts_by_reason: Default::default(),
            gc_passes: AtomicU64::new(0),
            gc_reclaimed: AtomicU64::new(0),
            admission_batches: AtomicU64::new(0),
            admission_batch_steps: AtomicU64::new(0),
            commit_batches: AtomicU64::new(0),
            commit_batch_txns: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_records: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            wal_flushes: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            wal_commits: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            repl_shipped_records: AtomicU64::new(0),
            repl_applied_records: AtomicU64::new(0),
            repl_applied_commits: AtomicU64::new(0),
            repl_apply_batches: AtomicU64::new(0),
            repl_routed_reads: AtomicU64::new(0),
            repl_wait_stalls: AtomicU64::new(0),
            repl_wait_stall_us: AtomicU64::new(0),
            repl_max_lag_lsn: AtomicU64::new(0),
            commit_latency: LatencyHistogram::default(),
            commit_latency_fine: mvcc_telemetry::Histogram::new(),
            shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            telemetry,
            epoch_first_commit_done: AtomicBool::new(false),
            timeline: TrackedMutex::new(lock_class!("engine.metrics-timeline"), None),
        }
    }

    /// Attaches a timeline frame ring: subsequent snapshots carry the
    /// newest frame as their `rates` block.  Called by the health
    /// monitor on start.
    pub fn attach_timeline(&self, ring: Arc<TimelineRing>) {
        *self.timeline.lock() = Some(ring);
    }

    /// Detaches the timeline ring (monitor stopped); snapshots go back
    /// to cumulative-only.
    pub fn detach_timeline(&self) {
        *self.timeline.lock() = None;
    }

    /// The attached telemetry registry, if the engine runs with stage
    /// tracing on.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Starts a stage clock: `Some(now)` when telemetry is on, `None`
    /// (and no clock read at all) when it is off.  Pair with
    /// [`EngineMetrics::record_stage_since`].
    pub fn stage_clock(&self) -> Option<Instant> {
        // lint: allow(clock) — stage clock, sampled only when telemetry is on
        self.telemetry.as_ref().map(|_| Instant::now())
    }

    /// Like [`EngineMetrics::stage_clock`], but sampled 1-in-32 per
    /// thread: the high-frequency batch probes (admission, group
    /// commit) trace every 32nd batch their thread leads, which keeps
    /// the clock-read overhead of tracing in the noise (the overhead
    /// guard test pins telemetry-on within 5% of off) while the
    /// histograms still fill at thousands of samples per second.
    pub(crate) fn trace_batch(&self) -> Option<Instant> {
        self.telemetry.as_ref()?;
        let fire = PROBE_TICK.with(|tick| {
            let n = tick.get().wrapping_add(1);
            tick.set(n);
            n & (BATCH_SAMPLE - 1) == 1
        });
        // lint: allow(clock) — stage clock, sampled only when telemetry is on
        fire.then(Instant::now)
    }

    /// Mints a transaction's trace id at `begin`, sampled 1-in-32 per
    /// thread: `None` when telemetry is off or this transaction is not
    /// sampled; `Some` means the session collects a span tree and is a
    /// tail-exemplar candidate at commit.  A thread's *first* transaction
    /// is always sampled (the tick pattern fires on 1), which keeps the
    /// attribution tests deterministic without a warm-up loop.
    pub fn trace_begin(&self, epoch: u64, tx: u32) -> Option<TraceId> {
        self.telemetry.as_ref()?;
        TRACE_TICK
            .with(|tick| {
                let n = tick.get().wrapping_add(1);
                tick.set(n);
                n & (TRACE_SAMPLE - 1) == 1
            })
            .then(|| TraceId::pack(epoch, tx))
    }

    /// Records a structured flight-recorder event attributed to a
    /// transaction's trace (when the recording site knows one).
    pub fn flight_traced(&self, kind: EventKind, trace: Option<TraceId>) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_event_traced(kind, trace);
        }
    }

    /// Offers a committed transaction's span tree to the tail-exemplar
    /// reservoir (no-op with telemetry off).
    pub fn offer_exemplar(&self, tree: TraceTree) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.exemplars().offer(tree);
        }
    }

    /// The tail-exemplar reservoir, if telemetry is on.
    pub fn exemplars(&self) -> Option<&ExemplarReservoir> {
        self.telemetry.as_ref().map(|t| t.exemplars())
    }

    /// Records one cross-cutting span (WAL flush, replica apply, follower
    /// read, promotion phase) into the LSN-correlated trace log (no-op
    /// with telemetry off).
    pub fn record_trace_event(
        &self,
        stage: Stage,
        trace: Option<TraceId>,
        lsn: Option<u64>,
        dur_us: u64,
    ) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.trace_log().record(stage, trace, lsn, dur_us);
        }
    }

    /// Records the elapsed time since a stage clock into `stage`'s
    /// histogram; a `None` clock (telemetry off, or an unsampled batch)
    /// is a no-op.
    pub fn record_stage_since(&self, stage: Stage, clock: Option<Instant>) {
        if let (Some(telemetry), Some(started)) = (&self.telemetry, clock) {
            telemetry.record_duration(stage, started.elapsed());
        }
    }

    /// Records a raw value (a batch size) into `stage`'s histogram when
    /// telemetry is on.
    pub fn record_stage_value(&self, stage: Stage, value: u64) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_value(stage, value);
        }
    }

    /// Records a structured flight-recorder event when telemetry is on.
    pub fn flight(&self, kind: EventKind) {
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_event(kind);
        }
    }

    /// The flight recorder's rendered timeline, if telemetry is on —
    /// what chaos and soak tests print on failure.
    pub fn flight_dump(&self) -> Option<String> {
        self.telemetry.as_ref().map(|t| t.flight().dump())
    }

    /// Records the promoted engine's first commit on its new epoch
    /// (elapsed from the engine opening) — the tail of the failover
    /// MTTR timeline.  Idempotent: only the first call records.
    pub fn record_epoch_first_commit(&self, epoch: u64, since_open: Duration) {
        if self
            .epoch_first_commit_done
            .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            if let Some(telemetry) = &self.telemetry {
                telemetry.record_duration(Stage::EpochFirstCommit, since_open);
                telemetry.record_event(EventKind::EpochFirstCommit { epoch });
            }
        }
    }

    /// Records a session begin.
    pub fn record_begin(&self) {
        self.begun.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an executed read on `shard`.
    pub fn record_read(&self, shard: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.shards[shard].ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an executed write on `shard`.
    pub fn record_write(&self, shard: usize) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.shards[shard].ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a commit and its latency (begin → commit).
    pub fn record_commit(&self, latency: Duration) {
        self.committed.fetch_add(1, Ordering::Relaxed);
        self.commit_latency.record(latency);
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.commit_latency_fine.record(micros);
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_value(Stage::CommitLatency, micros);
        }
    }

    /// Records an abort; `shard` is the shard of the entity that triggered
    /// it, when one did.
    pub fn record_abort(&self, reason: AbortReason, shard: Option<usize>) {
        self.record_abort_traced(reason, shard, None);
    }

    /// [`EngineMetrics::record_abort`] with the aborting transaction's
    /// trace id, so the flight-recorder event joins against its span tree.
    pub fn record_abort_traced(
        &self,
        reason: AbortReason,
        shard: Option<usize>,
        trace: Option<TraceId>,
    ) {
        self.aborted.fetch_add(1, Ordering::Relaxed);
        self.aborts_by_reason[reason.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(s) = shard {
            self.shards[s].conflicts.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(telemetry) = &self.telemetry {
            telemetry.record_event_traced(
                EventKind::Abort {
                    reason: reason.to_string(),
                },
                trace,
            );
        }
    }

    /// Records one GC pass that reclaimed `reclaimed` versions.
    pub fn record_gc(&self, reclaimed: usize) {
        self.gc_passes.fetch_add(1, Ordering::Relaxed);
        self.gc_reclaimed
            .fetch_add(reclaimed as u64, Ordering::Relaxed);
        if reclaimed > 0 {
            // Idle GC passes (every millisecond under the driver) would
            // flood the flight ring with noise; only reclaims are events.
            if let Some(telemetry) = &self.telemetry {
                telemetry.record_event(EventKind::GcReclaim {
                    versions: reclaimed as u64,
                });
            }
        }
    }

    /// Records one admission batch ruled by a drain leader (`steps` steps
    /// in one `admit_batch` call).
    pub fn record_admission_batch(&self, steps: usize) {
        self.admission_batches.fetch_add(1, Ordering::Relaxed);
        self.admission_batch_steps
            .fetch_add(steps as u64, Ordering::Relaxed);
    }

    /// Records one group-commit batch of `txns` transactions (batches
    /// whose members all lost first-committer-wins validation commit
    /// nothing and are not recorded — the counter measures how many
    /// commits share one drain, which is also how many share one WAL
    /// flush).
    pub fn record_commit_batch(&self, txns: usize) {
        self.commit_batches.fetch_add(1, Ordering::Relaxed);
        self.commit_batch_txns
            .fetch_add(txns as u64, Ordering::Relaxed);
    }

    /// Records one buffered WAL append of `records` records totalling
    /// `bytes` encoded bytes (an admission batch's step records).
    pub fn record_wal_append(&self, records: usize, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_records
            .fetch_add(records as u64, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one WAL flush (a group-commit batch's durability point):
    /// `bytes` appended with the flush, whether it ended in an fsync, and
    /// how many transactions it made durable.
    pub fn record_wal_flush(&self, bytes: u64, fsynced: bool, txns: usize) {
        self.wal_flushes.fetch_add(1, Ordering::Relaxed);
        if fsynced {
            self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.wal_commits.fetch_add(txns as u64, Ordering::Relaxed);
    }

    /// Records one completed checkpoint.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the primary-epoch gauge (monotone: a promotion only ever
    /// raises it).
    pub fn record_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Records `records` WAL records shipped off the primary's log by a
    /// replication tailer.
    pub fn record_repl_shipped(&self, records: usize) {
        self.repl_shipped_records
            .fetch_add(records as u64, Ordering::Relaxed);
    }

    /// Records one replica apply batch: `records` records ingested, of
    /// which `commits` were commit records (the only ones that move data).
    pub fn record_repl_applied(&self, records: usize, commits: usize) {
        self.repl_apply_batches.fetch_add(1, Ordering::Relaxed);
        self.repl_applied_records
            .fetch_add(records as u64, Ordering::Relaxed);
        self.repl_applied_commits
            .fetch_add(commits as u64, Ordering::Relaxed);
    }

    /// Records one read-only session routed to a replica, with the
    /// replica's apply lag (in LSNs behind the primary's durable horizon)
    /// observed at pin time.
    pub fn record_repl_routed_read(&self, lag_lsn: u64) {
        self.repl_routed_reads.fetch_add(1, Ordering::Relaxed);
        self.repl_max_lag_lsn.fetch_max(lag_lsn, Ordering::Relaxed);
    }

    /// Records one wait-for-LSN stall of the given duration (a routed
    /// read that had to park until a replica caught up — read-your-writes
    /// or a staleness bound).
    pub fn record_repl_wait(&self, stalled: Duration) {
        self.repl_wait_stalls.fetch_add(1, Ordering::Relaxed);
        self.repl_wait_stall_us.fetch_add(
            u64::try_from(stalled.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            begun: self.begun.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            aborts_by_reason: AbortReason::all()
                .iter()
                .map(|r| (*r, self.aborts_by_reason[r.index()].load(Ordering::Relaxed)))
                .collect(),
            gc_passes: self.gc_passes.load(Ordering::Relaxed),
            gc_reclaimed: self.gc_reclaimed.load(Ordering::Relaxed),
            admission_batches: self.admission_batches.load(Ordering::Relaxed),
            admission_batch_steps: self.admission_batch_steps.load(Ordering::Relaxed),
            commit_batches: self.commit_batches.load(Ordering::Relaxed),
            commit_batch_txns: self.commit_batch_txns.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_flushes: self.wal_flushes.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            wal_commits: self.wal_commits.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            repl_shipped_records: self.repl_shipped_records.load(Ordering::Relaxed),
            repl_applied_records: self.repl_applied_records.load(Ordering::Relaxed),
            repl_applied_commits: self.repl_applied_commits.load(Ordering::Relaxed),
            repl_apply_batches: self.repl_apply_batches.load(Ordering::Relaxed),
            repl_routed_reads: self.repl_routed_reads.load(Ordering::Relaxed),
            repl_wait_stalls: self.repl_wait_stalls.load(Ordering::Relaxed),
            repl_wait_stall_us: self.repl_wait_stall_us.load(Ordering::Relaxed),
            repl_max_lag_lsn: self.repl_max_lag_lsn.load(Ordering::Relaxed),
            latency_buckets: self.commit_latency.counts(),
            latency: self.commit_latency_fine.snapshot(),
            stages: self
                .telemetry
                .as_ref()
                .map(|t| t.snapshot())
                .unwrap_or_default(),
            shard_ops: self
                .shards
                .iter()
                .map(|s| s.ops.load(Ordering::Relaxed))
                .collect(),
            shard_conflicts: self
                .shards
                .iter()
                .map(|s| s.conflicts.load(Ordering::Relaxed))
                .collect(),
            rates: self.timeline.lock().as_ref().and_then(|ring| ring.latest()),
        }
    }
}

/// A point-in-time copy of [`EngineMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sessions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Read operations executed.
    pub reads: u64,
    /// Write operations executed.
    pub writes: u64,
    /// Abort counts by reason.
    pub aborts_by_reason: Vec<(AbortReason, u64)>,
    /// Completed GC passes.
    pub gc_passes: u64,
    /// Versions reclaimed by GC.
    pub gc_reclaimed: u64,
    /// Admission batches ruled by drain leaders (0 in per-step mode).
    pub admission_batches: u64,
    /// Steps ruled across all admission batches.
    pub admission_batch_steps: u64,
    /// Group-commit batches applied (0 in per-step mode).
    pub commit_batches: u64,
    /// Transactions committed across all group-commit batches.
    pub commit_batch_txns: u64,
    /// Buffered WAL appends (admission step batches; 0 with durability
    /// off).
    pub wal_appends: u64,
    /// WAL records appended outside commit records.
    pub wal_records: u64,
    /// Total encoded bytes appended to the WAL.
    pub wal_bytes: u64,
    /// WAL flushes (one per group-commit batch).
    pub wal_flushes: u64,
    /// WAL flushes that ended in an fsync (equals `wal_flushes` in fsync
    /// mode, 0 in buffered mode).
    pub wal_fsyncs: u64,
    /// Transactions made durable across all WAL flushes.
    pub wal_commits: u64,
    /// Checkpoints cut.
    pub checkpoints: u64,
    /// The primary epoch the engine writes under (0 before any failover).
    pub epoch: u64,
    /// WAL records shipped off the log by replication tailers.
    pub repl_shipped_records: u64,
    /// Records ingested by replica apply.
    pub repl_applied_records: u64,
    /// Commit records applied by replicas (the ones that move data).
    pub repl_applied_commits: u64,
    /// Replica apply batches.
    pub repl_apply_batches: u64,
    /// Read-only sessions routed to replicas.
    pub repl_routed_reads: u64,
    /// Routed reads that had to park on wait-for-LSN.
    pub repl_wait_stalls: u64,
    /// Total microseconds spent parked on wait-for-LSN.
    pub repl_wait_stall_us: u64,
    /// Largest apply lag (LSNs behind the durable horizon) observed at
    /// read-pin time.
    pub repl_max_lag_lsn: u64,
    /// Commit-latency histogram: bucket 0 is sub-µs, bucket `i > 0` covers
    /// `[2^(i-1), 2^i)` µs.
    pub latency_buckets: Vec<u64>,
    /// Log-linear commit-latency histogram with interpolated quantiles
    /// (the refinement [`MetricsSnapshot::latency_us`] queries).
    pub latency: mvcc_telemetry::HistogramSnapshot,
    /// Per-stage telemetry histograms (empty when the engine runs with
    /// [`mvcc_telemetry::TelemetryMode::Off`]).
    pub stages: TelemetrySnapshot,
    /// Operations executed per shard.
    pub shard_ops: Vec<u64>,
    /// Conflict-triggered aborts attributed per shard.
    pub shard_conflicts: Vec<u64>,
    /// The newest timeline frame, when a health monitor is attached —
    /// the source of the `rates:` Display block (windowed txn/s and
    /// quantiles instead of lifetime averages).  `None` with no monitor.
    pub rates: Option<TimelineFrame>,
}

impl MetricsSnapshot {
    /// Mean steps per admission batch, or `None` when no batch was ruled
    /// (per-step mode, or no traffic).
    pub fn mean_admission_batch(&self) -> Option<f64> {
        (self.admission_batches > 0)
            .then(|| self.admission_batch_steps as f64 / self.admission_batches as f64)
    }

    /// Mean transactions per group-commit batch, or `None` when no batch
    /// was applied.
    pub fn mean_commit_batch(&self) -> Option<f64> {
        (self.commit_batches > 0)
            .then(|| self.commit_batch_txns as f64 / self.commit_batches as f64)
    }

    /// Mean transactions made durable per WAL flush (per fsync in fsync
    /// mode — every flush is one), or `None` when no flush happened.
    pub fn mean_commits_per_flush(&self) -> Option<f64> {
        (self.wal_flushes > 0).then(|| self.wal_commits as f64 / self.wal_flushes as f64)
    }

    /// `true` when the engine ran with a write-ahead log.
    pub fn durability_on(&self) -> bool {
        self.wal_appends > 0 || self.wal_flushes > 0
    }

    /// `true` when replication traffic (shipping, applying or routing)
    /// was recorded.
    pub fn replication_on(&self) -> bool {
        self.repl_shipped_records > 0 || self.repl_applied_records > 0 || self.repl_routed_reads > 0
    }

    /// Mean records per replica apply batch, or `None` when no batch was
    /// applied.
    pub fn mean_repl_apply_batch(&self) -> Option<f64> {
        (self.repl_apply_batches > 0)
            .then(|| self.repl_applied_records as f64 / self.repl_apply_batches as f64)
    }

    /// Fraction of finished transactions that committed.
    pub fn commit_ratio(&self) -> f64 {
        let finished = self.committed + self.aborted;
        if finished == 0 {
            1.0
        } else {
            self.committed as f64 / finished as f64
        }
    }

    /// Interpolated commit-latency quantile in microseconds (`0 < q <=
    /// 1`), or `None` when no commit has been recorded.  Interpolates
    /// within a log-linear bucket, so the worst-case overstatement is
    /// ~6% instead of the 2× a bucket upper bound would give.
    pub fn latency_us(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "txns: {} committed / {} aborted ({:.1}% commit), ops: {} reads + {} writes",
            self.committed,
            self.aborted,
            self.commit_ratio() * 100.0,
            self.reads,
            self.writes
        )?;
        write!(f, "aborts:")?;
        for (reason, count) in &self.aborts_by_reason {
            if *count > 0 {
                write!(f, " {reason}={count}")?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "latency (µs, interpolated): p50={:.1} p95={:.1} p99={:.1} p999={:.1}",
            self.latency_us(0.50).unwrap_or(0.0),
            self.latency_us(0.95).unwrap_or(0.0),
            self.latency_us(0.99).unwrap_or(0.0),
            self.latency_us(0.999).unwrap_or(0.0)
        )?;
        if let Some(rates) = &self.rates {
            writeln!(
                f,
                "rates (last {:.0} ms window): txn/s={:.0} abort={:.1}% \
                 p50={:.1}µs p99={:.1}µs fsyncs={}",
                rates.window_us as f64 / 1_000.0,
                rates.txn_s,
                rates.abort_rate * 100.0,
                rates.commit.p50,
                rates.commit.p99,
                rates.wal_fsyncs
            )?;
        }
        writeln!(
            f,
            "gc: {} passes, {} versions reclaimed",
            self.gc_passes, self.gc_reclaimed
        )?;
        if let Some(mean) = self.mean_admission_batch() {
            writeln!(
                f,
                "pipeline: {} admission batches (mean {:.1} steps), {} commit batches (mean {:.1} txns)",
                self.admission_batches,
                mean,
                self.commit_batches,
                self.mean_commit_batch().unwrap_or(0.0)
            )?;
        }
        if self.durability_on() {
            writeln!(
                f,
                "durability: {} flushes ({} fsyncs), {} bytes logged, mean {:.1} commits/fsync, {} checkpoints, epoch {}",
                self.wal_flushes,
                self.wal_fsyncs,
                self.wal_bytes,
                self.mean_commits_per_flush().unwrap_or(0.0),
                self.checkpoints,
                self.epoch
            )?;
        }
        if self.replication_on() {
            writeln!(
                f,
                "replication: {} records shipped, {} applied ({} commits, mean {:.1}/batch), \
                 {} routed reads, {} wait-for-lsn stalls ({} µs), max lag {} lsn",
                self.repl_shipped_records,
                self.repl_applied_records,
                self.repl_applied_commits,
                self.mean_repl_apply_batch().unwrap_or(0.0),
                self.repl_routed_reads,
                self.repl_wait_stalls,
                self.repl_wait_stall_us,
                self.repl_max_lag_lsn
            )?;
        }
        if !self.stages.is_empty() {
            writeln!(f, "stages (interpolated quantiles):")?;
            for entry in &self.stages.stages {
                let h = &entry.histogram;
                writeln!(
                    f,
                    "  {:<22} ({:>5}): n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} p999={:.1}",
                    entry.stage.name(),
                    entry.stage.unit().as_str(),
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.50).unwrap_or(0.0),
                    h.quantile(0.95).unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                    h.quantile(0.999).unwrap_or(0.0)
                )?;
            }
        }
        write!(f, "shards:")?;
        for (i, (ops, conflicts)) in self
            .shard_ops
            .iter()
            .zip(self.shard_conflicts.iter())
            .enumerate()
        {
            write!(f, " [{i}] ops={ops} conflicts={conflicts}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = EngineMetrics::new(2);
        m.record_begin();
        m.record_read(0);
        m.record_write(1);
        m.record_commit(Duration::from_micros(10));
        m.record_begin();
        m.record_abort(AbortReason::DirtyRead, Some(1));
        m.record_gc(3);
        let s = m.snapshot();
        assert_eq!(s.begun, 2);
        assert_eq!(s.committed, 1);
        assert_eq!(s.aborted, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.shard_ops, vec![1, 1]);
        assert_eq!(s.shard_conflicts, vec![0, 1]);
        assert_eq!(s.gc_passes, 1);
        assert_eq!(s.gc_reclaimed, 3);
        assert!((s.commit_ratio() - 0.5).abs() < 1e-9);
        let dirty = s
            .aborts_by_reason
            .iter()
            .find(|(r, _)| *r == AbortReason::DirtyRead)
            .unwrap();
        assert_eq!(dirty.1, 1);
    }

    #[test]
    fn latency_percentiles_track_buckets() {
        let m = EngineMetrics::new(1);
        // 9 fast commits, one slow one.
        for _ in 0..9 {
            m.record_commit(Duration::from_micros(3));
        }
        m.record_commit(Duration::from_millis(2));
        let s = m.snapshot();
        let p50 = s.latency_us(0.50).unwrap();
        let p99 = s.latency_us(0.99).unwrap();
        assert!(p50 <= 8.0, "p50 {p50}");
        assert!(p99 >= 1024.0, "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn quantiles_of_an_empty_histogram_are_none_not_invented() {
        // Regression: the rank target used to be floored to 1 even with no
        // samples, which let a sparse/empty histogram report a quantile it
        // never observed.  Before any commit is recorded every quantile is
        // None.
        let snap = EngineMetrics::new(1).snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.latency_us(q), None, "q={q}");
        }
        // One sample: every quantile collapses into its bucket, `(2, 4]`
        // for a 3 µs commit.
        let m = EngineMetrics::new(1);
        m.record_commit(Duration::from_micros(3));
        let snap = m.snapshot();
        for q in [0.0, 0.5, 1.0] {
            let v = snap.latency_us(q).unwrap();
            assert!(v > 2.0 && v <= 4.0, "q={q} v={v}");
        }
    }

    #[test]
    fn absurd_latencies_saturate_into_the_top_bucket() {
        // Regression: `as_micros() as u64` silently truncated u128 → u64,
        // so a duration of exactly 2^64 µs wrapped to 0 and was filed as a
        // sub-µs commit.  The conversion now saturates.
        let m = EngineMetrics::new(1);
        m.record_commit(Duration::MAX);
        m.record_commit(Duration::from_secs(u64::MAX / 1_000_000 + 1));
        let snap = m.snapshot();
        assert_eq!(snap.latency_buckets[31], 2, "both land in the top bucket");
        assert_eq!(snap.latency_buckets[0], 0, "nothing wrapped around");
        let p50 = snap.latency_us(0.5).unwrap();
        assert!(p50 >= (1u64 << 30) as f64, "median stays in the top bucket");
    }

    #[test]
    fn batch_counters_average() {
        let m = EngineMetrics::new(1);
        assert_eq!(m.snapshot().mean_admission_batch(), None);
        assert_eq!(m.snapshot().mean_commit_batch(), None);
        m.record_admission_batch(3);
        m.record_admission_batch(5);
        m.record_commit_batch(2);
        let snap = m.snapshot();
        assert_eq!(snap.admission_batches, 2);
        assert_eq!(snap.admission_batch_steps, 8);
        assert_eq!(snap.mean_admission_batch(), Some(4.0));
        assert_eq!(snap.mean_commit_batch(), Some(2.0));
        assert!(snap.to_string().contains("pipeline: 2 admission batches"));
    }

    #[test]
    fn display_summarizes() {
        let m = EngineMetrics::new(1);
        m.record_begin();
        m.record_commit(Duration::from_micros(1));
        let text = m.snapshot().to_string();
        assert!(text.contains("1 committed"));
        assert!(text.contains("gc: 0 passes"));
        assert!(text.contains("[0] ops=0"));
    }

    #[test]
    fn replication_counters_accumulate_and_display() {
        let m = EngineMetrics::new(1);
        assert!(!m.snapshot().replication_on());
        assert!(!m.snapshot().to_string().contains("replication:"));
        m.record_repl_shipped(10);
        m.record_repl_applied(10, 3);
        m.record_repl_applied(4, 1);
        m.record_repl_routed_read(2);
        m.record_repl_routed_read(7);
        m.record_repl_wait(Duration::from_micros(150));
        let s = m.snapshot();
        assert!(s.replication_on());
        assert_eq!(s.repl_shipped_records, 10);
        assert_eq!(s.repl_applied_records, 14);
        assert_eq!(s.repl_applied_commits, 4);
        assert_eq!(s.repl_apply_batches, 2);
        assert_eq!(s.mean_repl_apply_batch(), Some(7.0));
        assert_eq!(s.repl_routed_reads, 2);
        assert_eq!(s.repl_max_lag_lsn, 7, "max, not last");
        assert_eq!(s.repl_wait_stalls, 1);
        assert_eq!(s.repl_wait_stall_us, 150);
        let text = s.to_string();
        assert!(text.contains("replication: 10 records shipped"), "{text}");
        assert!(text.contains("max lag 7 lsn"), "{text}");
    }

    #[test]
    fn abort_reasons_are_exhaustive_and_named() {
        assert_eq!(AbortReason::all().len(), 6);
        for r in AbortReason::all() {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn interpolated_quantiles_fix_the_bucket_bound_overstatement() {
        // Regression for the display satellite: a 1000 µs commit used to
        // be reported as "p99 ≤ 1024" (the power-of-two bucket bound;
        // up to 2× high at the top of a decade).  The log-linear
        // histogram interpolates to 1008 — within 1%.
        let m = EngineMetrics::new(1);
        m.record_commit(Duration::from_micros(1000));
        let s = m.snapshot();
        let fine = s.latency_us(0.99).unwrap();
        assert!((fine - 1008.0).abs() < 1.0, "interpolated p99 = {fine}");
        let text = s.to_string();
        assert!(text.contains("latency (µs, interpolated)"), "{text}");
        assert!(text.contains("p99=1008"), "{text}");
    }

    #[test]
    fn telemetry_wiring_feeds_stages_and_flight_through_one_handle() {
        let m = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        m.record_commit(Duration::from_micros(7));
        m.record_stage_since(Stage::WalFlush, m.stage_clock());
        m.record_stage_value(Stage::WalFlushTxns, 3);
        m.record_abort(AbortReason::WriteConflict, Some(0));
        m.record_gc(5);
        m.record_gc(0); // idle pass: counted, but no flight event
        let s = m.snapshot();
        assert_eq!(s.stages.get(Stage::CommitLatency).unwrap().count(), 1);
        assert_eq!(s.stages.get(Stage::WalFlush).unwrap().count(), 1);
        assert_eq!(s.stages.get(Stage::WalFlushTxns).unwrap().count(), 1);
        let dump = m.flight_dump().unwrap();
        assert!(dump.contains("abort reason=write-conflict"), "{dump}");
        assert!(dump.contains("gc-reclaim versions=5"), "{dump}");
        assert!(!dump.contains("versions=0"), "{dump}");
        // The single coherent view: stages render inside the same
        // Display as the engine/durability/replication blocks.
        let text = s.to_string();
        assert!(text.contains("stages (interpolated quantiles):"), "{text}");
        assert!(text.contains("commit-latency"), "{text}");
        assert_eq!(s.gc_passes, 2);
    }

    #[test]
    fn telemetry_off_records_nothing_and_probes_are_noops() {
        let m = EngineMetrics::new(1);
        assert!(m.telemetry().is_none());
        assert_eq!(m.stage_clock(), None, "no clock read with telemetry off");
        m.record_stage_since(Stage::Certify, None);
        m.record_stage_value(Stage::WalFlushTxns, 9);
        m.flight(EventKind::Note { text: "x".into() });
        m.record_commit(Duration::from_micros(5));
        let s = m.snapshot();
        assert!(s.stages.is_empty());
        assert_eq!(m.flight_dump(), None);
        // The always-on fine histogram still answers.
        assert!(s.latency_us(0.5).is_some());
        assert!(!s.to_string().contains("stages ("));
    }

    #[test]
    fn epoch_first_commit_records_once() {
        let m = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        m.record_epoch_first_commit(2, Duration::from_micros(40));
        m.record_epoch_first_commit(2, Duration::from_micros(9000));
        let s = m.snapshot();
        let stage = s.stages.get(Stage::EpochFirstCommit).unwrap();
        assert_eq!(stage.count(), 1, "idempotent: only the first call lands");
        assert!(stage.mean().unwrap() < 100.0);
        let dump = m.flight_dump().unwrap();
        assert!(dump.contains("epoch-first-commit epoch=2"), "{dump}");
    }

    #[test]
    fn trace_begin_samples_one_in_thirty_two_and_the_first_always_fires() {
        let m = std::sync::Arc::new(EngineMetrics::with_telemetry(1, Some(Telemetry::new())));
        // A fresh thread: its first transaction is always sampled, then
        // 1-in-32 — deterministic, no atomics shared across threads.
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            let ids: Vec<Option<_>> = (0..64).map(|tx| m2.trace_begin(3, tx)).collect();
            assert_eq!(ids[0], Some(mvcc_telemetry::TraceId::pack(3, 0)));
            assert_eq!(ids.iter().flatten().count(), 2, "1-in-32 sampling");
        })
        .join()
        .unwrap();
        // Telemetry off: never sampled.
        let off = EngineMetrics::new(1);
        assert!((0..64).all(|tx| off.trace_begin(0, tx).is_none()));
    }

    #[test]
    fn exemplars_and_trace_events_flow_through_the_metrics_handle() {
        let m = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        let trace = mvcc_telemetry::TraceId::pack(1, 7);
        let mut tree = mvcc_telemetry::TraceTree::new(trace);
        tree.total_us = 500;
        m.offer_exemplar(tree);
        assert_eq!(m.exemplars().unwrap().len(), 1);
        m.record_trace_event(Stage::WalFlush, Some(trace), Some(42), 11);
        let events = m.telemetry().unwrap().trace_log().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lsn, Some(42));
        m.record_abort_traced(AbortReason::Explicit, None, Some(trace));
        let dump = m.flight_dump().unwrap();
        assert!(dump.contains("abort reason=explicit trace=t1.7"), "{dump}");
        // Off: all of it is a no-op.
        let off = EngineMetrics::new(1);
        off.offer_exemplar(mvcc_telemetry::TraceTree::new(trace));
        off.record_trace_event(Stage::WalFlush, None, None, 1);
        assert!(off.exemplars().is_none());
    }

    #[test]
    fn an_attached_timeline_ring_feeds_the_rates_block() {
        let m = EngineMetrics::new(1);
        m.record_commit(Duration::from_micros(5));
        // No monitor attached: no rates block, rates is None.
        let s = m.snapshot();
        assert!(s.rates.is_none());
        assert!(!s.to_string().contains("rates ("));
        // Attach a ring with one frame: the snapshot picks up the newest
        // frame and Display grows the windowed block.
        let ring = Arc::new(TimelineRing::new(8));
        let mut frame = TimelineFrame::zeroed(3);
        frame.window_us = 100_000;
        frame.txn_s = 12_345.0;
        frame.abort_rate = 0.25;
        ring.push(frame);
        m.attach_timeline(Arc::clone(&ring));
        let s = m.snapshot();
        assert_eq!(s.rates.as_ref().map(|r| r.seq), Some(3));
        let text = s.to_string();
        assert!(
            text.contains("rates (last 100 ms window): txn/s=12345 abort=25.0%"),
            "{text}"
        );
        // Detach: back to cumulative-only.
        m.detach_timeline();
        assert!(m.snapshot().rates.is_none());
    }

    #[test]
    fn batch_trace_sampling_fires_one_in_thirty_two() {
        let m = EngineMetrics::with_telemetry(1, Some(Telemetry::new()));
        let fired = (0..128).filter(|_| m.trace_batch().is_some()).count();
        assert_eq!(fired, 4, "1-in-32 per-thread sampling");
        let off = EngineMetrics::new(1);
        assert!((0..128).all(|_| off.trace_batch().is_none()));
    }
}
