//! The closed-loop load harness (experiment E12).
//!
//! `threads` workers each run a closed loop: generate a transaction with
//! the `mvcc-workload` primitives (Zipfian entity selection with skew θ,
//! read/write mix), drive it through an engine session, and immediately
//! start the next one — until the profile's total operation budget is
//! exhausted.  The run produces a [`LoadReport`]: throughput, commit/abort
//! counts with reasons, latency percentiles, per-shard contention, and the
//! admission [`History`] whose committed projection the offline
//! `mvcc-classify` checkers can validate — the end-to-end "theory checks
//! the engine" loop.

use crate::certifier::{CertifierKind, HistoryClass};
use crate::gc::GcDriver;
use crate::health::{Alarm, EngineSampler, HealthConfig, HealthMonitor, MemberProbe};
use crate::metrics::MetricsSnapshot;
use crate::pipeline::AdmissionMode;
use crate::session::{Engine, EngineConfig, History};
use crate::watchdog::{ClassificationWatchdog, WatchdogConfig, WatchdogStats};
use bytes::Bytes;
use mvcc_core::Action;
use mvcc_durability::DurabilityConfig;
use mvcc_telemetry::{TelemetryMode, TimelineFrame, TraceTree};
use mvcc_workload::{random_accesses, LoadProfile, Zipfian};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The outcome of one closed-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The certifier that ran.
    pub kind: CertifierKind,
    /// The admission mode the engine ran under.
    pub admission: AdmissionMode,
    /// The class its committed history is guaranteed to be in.
    pub class: HistoryClass,
    /// The profile that drove the run.
    pub profile: LoadProfile,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Final engine metrics.
    pub metrics: MetricsSnapshot,
    /// The admission history (empty if recording was off).
    pub history: History,
    /// Tail-latency exemplars the reservoir retained, slowest first
    /// (empty with telemetry off — no transaction is ever traced then).
    pub exemplars: Vec<TraceTree>,
    /// Final counters of the online classification watchdog, when one ran
    /// alongside the load ([`run_closed_loop_traced`] with `watchdog`).
    pub watchdog: Option<WatchdogStats>,
    /// The timeline frames a health monitor recorded, when one ran
    /// alongside the load ([`run_closed_loop_monitored`]); empty
    /// otherwise.
    pub timeline: Vec<TimelineFrame>,
    /// The anomaly alarms that monitor raised (a steady-state run must
    /// leave this empty — the release soak asserts it).
    pub alarms: Vec<Alarm>,
}

impl LoadReport {
    /// Committed transactions per wall-clock second.
    pub fn throughput_tps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.metrics.committed as f64 / secs
        }
    }

    /// Fraction of finished transactions that aborted.
    pub fn abort_ratio(&self) -> f64 {
        1.0 - self.metrics.commit_ratio()
    }

    /// Checks the committed projection of the history against the
    /// certifier's class with the offline classifiers.  `true` when
    /// recording was off (nothing to refute) or the class claims nothing
    /// (snapshot isolation).
    pub fn history_in_class(&self) -> bool {
        if self.history.admitted.is_empty() {
            return true;
        }
        self.class.check(&self.history.committed_schedule())
    }

    /// Fraction of retained exemplars whose span tree names a dominant
    /// stage (1.0 when no exemplars were captured) — the attribution
    /// coverage the tracing acceptance gate asserts ≥ 0.95 on.
    pub fn exemplar_attribution(&self) -> f64 {
        if self.exemplars.is_empty() {
            return 1.0;
        }
        let named = self
            .exemplars
            .iter()
            .filter(|t| t.dominant_stage().is_some())
            .count();
        named as f64 / self.exemplars.len() as f64
    }
}

/// Runs one closed-loop load against a fresh engine of `kind`, recording
/// the admission history for offline validation.
pub fn run_closed_loop(kind: CertifierKind, profile: &LoadProfile) -> LoadReport {
    run_closed_loop_with(kind, profile, true)
}

/// [`run_closed_loop`] with history recording made explicit (turn it off
/// for long throughput benchmarks, where the log itself would distort the
/// measurement).
pub fn run_closed_loop_with(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
) -> LoadReport {
    run_closed_loop_in_mode(kind, profile, record_history, AdmissionMode::default())
}

/// [`run_closed_loop_with`] with the admission mode made explicit — the
/// pipeline-on/off comparison knob of experiment E13.
pub fn run_closed_loop_in_mode(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
    admission: AdmissionMode,
) -> LoadReport {
    run_closed_loop_configured(
        kind,
        profile,
        record_history,
        admission,
        DurabilityConfig::off(),
    )
}

/// The fully configured closed loop: admission mode *and* durability made
/// explicit — the Off/Buffered/Fsync comparison knob of experiment E14.
/// A fresh engine (and, with durability on, a fresh write-ahead log in
/// `durability.dir`) is built per run.
pub fn run_closed_loop_configured(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
    admission: AdmissionMode,
    durability: DurabilityConfig,
) -> LoadReport {
    run_closed_loop_instrumented(
        kind,
        profile,
        record_history,
        admission,
        durability,
        TelemetryMode::Off,
    )
}

/// [`run_closed_loop_configured`] with per-stage telemetry made explicit —
/// [`TelemetryMode::On`] is what experiment E17's trajectory runs use; the
/// report's [`MetricsSnapshot::stages`] then carries interpolated
/// per-stage quantiles.  Workers join before the snapshot is taken, so
/// every thread-local telemetry buffer has been flushed into it.
pub fn run_closed_loop_instrumented(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
    admission: AdmissionMode,
    durability: DurabilityConfig,
    telemetry: TelemetryMode,
) -> LoadReport {
    run_closed_loop_traced(
        kind,
        profile,
        record_history,
        None,
        admission,
        durability,
        telemetry,
        false,
    )
}

/// The fully traced closed loop (experiment E18): everything
/// [`run_closed_loop_instrumented`] configures, plus a ring bound on the
/// recorded history (`history_capacity` — long soaks keep memory O(1)
/// while the online watchdog still sees classifiable windows) and the
/// [`ClassificationWatchdog`] itself (`watchdog: true` runs it alongside
/// the load and reports its final counters).  With telemetry on, the
/// report also carries the tail-latency exemplars the reservoir retained.
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop_traced(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
    history_capacity: Option<usize>,
    admission: AdmissionMode,
    durability: DurabilityConfig,
    telemetry: TelemetryMode,
    watchdog: bool,
) -> LoadReport {
    run_closed_loop_monitored(
        kind,
        profile,
        record_history,
        history_capacity,
        admission,
        durability,
        telemetry,
        watchdog,
        None,
    )
}

/// The continuously observed closed loop (experiment E19): everything
/// [`run_closed_loop_traced`] configures, plus an optional
/// [`HealthMonitor`] sampling the engine on `monitor`'s cadence — the
/// report then carries the recorded timeline frames and any anomaly
/// alarms.  When the watchdog also runs, its verdict counters flow into
/// the frames through a detached stats probe, so the monitor's closing
/// frame still sees the final counts even though the watchdog handle is
/// consumed first.
#[allow(clippy::too_many_arguments)]
pub fn run_closed_loop_monitored(
    kind: CertifierKind,
    profile: &LoadProfile,
    record_history: bool,
    history_capacity: Option<usize>,
    admission: AdmissionMode,
    durability: DurabilityConfig,
    telemetry: TelemetryMode,
    watchdog: bool,
    monitor: Option<HealthConfig>,
) -> LoadReport {
    // lint: allow(unwrap) — load harness: an invalid profile is a caller bug, fail fast
    profile.validate().expect("invalid load profile");
    let engine = Arc::new(Engine::new(
        kind,
        EngineConfig {
            shards: profile.shards,
            entities: profile.entities,
            initial: Bytes::from_static(b"0"),
            record_history,
            history_capacity,
            admission,
            durability,
            telemetry,
            ..EngineConfig::default()
        },
    ));
    // The benched loop samples at a coarser cadence than the chaos-soak
    // default: each window check is a full graph classification whose CPU
    // time is stolen from the workers on small runners, and the bench
    // rows feed a throughput regression gate.  The final deterministic
    // pass below still guarantees at least one checked window.
    let dog = watchdog.then(|| {
        ClassificationWatchdog::start(
            Arc::clone(&engine),
            WatchdogConfig {
                interval: Duration::from_millis(100),
                ..WatchdogConfig::default()
            },
        )
    });
    let health = monitor.map(|config| {
        let mut sampler =
            EngineSampler::for_engine(&engine, Vec::<MemberProbe>::new(), config.detector);
        if let Some(d) = &dog {
            sampler = sampler.with_watchdog(d.stats_probe());
        }
        HealthMonitor::start_with(engine.metrics_handle(), sampler, config)
    });
    let gc = GcDriver::start(Arc::clone(&engine), Duration::from_millis(1));
    let elapsed = drive_closed_loop(&engine, profile);
    gc.stop();
    let watchdog = dog.map(|d| {
        // One final deterministic pass over the settled history, so even
        // a very short run reports at least one checked window.
        let _ = d.check_once();
        d.stop()
    });
    // Stop order matters: the watchdog is consumed above, then the
    // monitor takes its closing frame — the detached stats probe keeps
    // reading the final counters through the shared inner state.
    let (timeline, alarms) = health.map_or_else(|| (Vec::new(), Vec::new()), |h| h.stop());
    let exemplars = engine
        .metrics()
        .exemplars()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    LoadReport {
        kind,
        admission,
        class: kind.class(),
        profile: *profile,
        elapsed,
        metrics: engine.metrics().snapshot(),
        history: engine.history(),
        exemplars,
        watchdog,
        timeline,
        alarms,
    }
}

/// Drives the closed-loop worker threads against an *existing* engine
/// until the profile's op budget is spent, returning the wall-clock
/// elapsed time.  This is the piece the recovery tests reuse to resume
/// load on a crash-recovered engine (the engine's shard/entity topology
/// must match the profile's).
pub fn drive_closed_loop(engine: &Arc<Engine>, profile: &LoadProfile) -> Duration {
    // lint: allow(unwrap) — load harness: an invalid profile is a caller bug, fail fast
    profile.validate().expect("invalid load profile");
    // Each worker claims `steps_per_transaction` ops from the shared
    // budget per transaction; the run ends when the budget runs dry.
    let budget = Arc::new(AtomicI64::new(profile.ops as i64));
    // lint: allow(clock) — closed-loop harness measures wall-clock run duration
    let started = Instant::now();
    let mut workers = Vec::with_capacity(profile.threads);
    for worker_idx in 0..profile.threads {
        let engine = Arc::clone(engine);
        let budget = Arc::clone(&budget);
        let profile = *profile;
        workers.push(std::thread::spawn(move || {
            // Each worker derives an independent deterministic stream.
            let mut rng = SmallRng::seed_from_u64(
                profile
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(worker_idx as u64 + 1)),
            );
            let zipf = Zipfian::new(profile.entities, profile.zipf_theta);
            let claim = profile.steps_per_transaction as i64;
            while budget.fetch_sub(claim, Ordering::Relaxed) >= claim {
                // The same access-generation policy as the offline
                // workloads (single source in mvcc-workload).
                let accesses = random_accesses(
                    &mut rng,
                    &zipf,
                    profile.steps_per_transaction,
                    profile.read_ratio,
                );
                let mut session = engine.begin();
                let mut ok = true;
                for (action, entity) in accesses {
                    let outcome = match action {
                        Action::Read => session.read(entity).map(|_| ()),
                        Action::Write => {
                            session.write(entity, Bytes::from(format!("{}", session.id())))
                        }
                    };
                    if outcome.is_err() {
                        // The engine already aborted the session.
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let _ = session.commit();
                }
            }
        }));
    }
    for worker in workers {
        // lint: allow(unwrap) — load harness: a panicked worker must fail the run
        worker.join().expect("worker panicked");
    }
    started.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile(theta: f64) -> LoadProfile {
        LoadProfile {
            threads: 4,
            shards: 2,
            ops: 240,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: theta,
            seed: 0x10ad,
        }
    }

    #[test]
    fn closed_loop_accounts_for_every_transaction() {
        let report = run_closed_loop(CertifierKind::Sgt, &small_profile(0.0));
        let m = &report.metrics;
        assert!(m.committed > 0, "no commits at all");
        assert_eq!(m.begun, m.committed + m.aborted, "unfinished sessions");
        // Every committed transaction admitted all of its steps.
        let committed_steps = report.history.committed_schedule().len();
        assert_eq!(
            committed_steps as u64,
            m.committed * 3,
            "committed projection size"
        );
        assert!(report.throughput_tps() > 0.0);
        assert!(report.history_in_class());
    }

    #[test]
    fn budget_bounds_the_run() {
        let profile = small_profile(0.9);
        let report = run_closed_loop(CertifierKind::SnapshotIsolation, &profile);
        // Workers claim ops up front, so executed ops never exceed the
        // budget (aborted transactions may under-use their claim).
        let m = &report.metrics;
        assert!(m.reads + m.writes <= profile.ops as u64);
        assert!(
            m.begun * 3 >= profile.ops as u64 / 2,
            "budget under-claimed"
        );
    }

    #[test]
    fn history_recording_can_be_skipped() {
        let report = run_closed_loop_with(CertifierKind::Mvto, &small_profile(0.0), false);
        assert!(report.history.admitted.is_empty());
        assert!(report.history_in_class(), "vacuously true");
        assert!(report.metrics.committed > 0);
    }

    #[test]
    fn traced_run_collects_exemplars_and_watchdog_verdicts() {
        let report = run_closed_loop_traced(
            CertifierKind::Sgt,
            &small_profile(0.6),
            true,
            Some(64),
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::On,
            true,
        );
        assert!(report.metrics.committed > 0);
        // 1-in-32 per-thread sampling with the first transaction on every
        // fresh worker always sampled: 4 workers guarantee exemplars.
        assert!(!report.exemplars.is_empty(), "no exemplars retained");
        assert!(
            report.exemplar_attribution() >= 0.95,
            "attribution {}",
            report.exemplar_attribution()
        );
        // Slowest-first ordering.
        for pair in report.exemplars.windows(2) {
            assert!(pair[0].total_us >= pair[1].total_us);
        }
        let stats = report.watchdog.expect("watchdog ran");
        assert!(stats.windows >= 1, "watchdog never checked: {stats:?}");
        assert_eq!(stats.violations, 0, "false alarms: {stats:?}");
        // Untraced baseline keeps the old shape.
        let report = run_closed_loop_instrumented(
            CertifierKind::Sgt,
            &small_profile(0.0),
            true,
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::Off,
        );
        assert!(report.exemplars.is_empty());
        assert!(report.watchdog.is_none());
    }

    #[test]
    fn monitored_run_records_a_timeline_with_no_false_alarms() {
        let report = run_closed_loop_monitored(
            CertifierKind::Sgt,
            &small_profile(0.6),
            true,
            Some(64),
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::On,
            true,
            Some(HealthConfig {
                interval: Duration::from_millis(5),
                ..HealthConfig::default()
            }),
        );
        assert!(report.metrics.committed > 0);
        // The closing sample guarantees at least one frame even if the
        // run finishes inside the first cadence tick.
        assert!(!report.timeline.is_empty(), "no frames recorded");
        for pair in report.timeline.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "frame sequence gap");
            assert!(pair[1].at_us >= pair[0].at_us);
        }
        // Windowed deltas must account for the lifetime totals.
        let committed: u64 = report.timeline.iter().map(|f| f.committed).sum();
        assert_eq!(committed, report.metrics.committed);
        // Watchdog verdicts flow into the frames via the detached probe.
        let windows: u64 = report.timeline.iter().map(|f| f.watchdog_windows).sum();
        assert_eq!(windows, report.watchdog.unwrap().windows);
        assert!(
            report.alarms.is_empty(),
            "steady-state run must not alarm: {:?}",
            report.alarms
        );
        // An unmonitored run keeps the old shape.
        let report = run_closed_loop(CertifierKind::Sgt, &small_profile(0.0));
        assert!(report.timeline.is_empty());
        assert!(report.alarms.is_empty());
    }

    #[test]
    fn both_admission_modes_drive_the_same_workload_soundly() {
        for mode in [AdmissionMode::Batched, AdmissionMode::PerStep] {
            let report =
                run_closed_loop_in_mode(CertifierKind::Sgt, &small_profile(0.0), true, mode);
            assert_eq!(report.admission, mode);
            let m = &report.metrics;
            assert!(m.committed > 0, "{mode}: no commits");
            assert_eq!(m.begun, m.committed + m.aborted, "{mode}");
            assert!(report.history_in_class(), "{mode}: history out of class");
            match mode {
                // Every step and commit goes through a batch (of size ≥ 1);
                // batched steps also count rejected ones, executed ops
                // don't.
                AdmissionMode::Batched => {
                    assert!(m.admission_batches > 0);
                    assert!(m.admission_batch_steps >= m.reads + m.writes);
                    assert_eq!(m.commit_batch_txns, m.committed);
                }
                AdmissionMode::PerStep => {
                    assert_eq!(m.admission_batches, 0);
                    assert_eq!(m.commit_batches, 0);
                }
            }
        }
    }
}
