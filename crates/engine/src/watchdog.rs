//! The online classification watchdog: continuous "theory checks the
//! engine" under live traffic.
//!
//! The offline story so far — run a workload, snapshot the history, hand
//! its committed projection to `mvcc-classify` — only ever checks the
//! *final* history, after the load has stopped.  The watchdog closes the
//! gap: a background thread periodically samples the engine's committed
//! history (ring-truncated histories included), runs the *same* offline
//! checkers against the active certifier's claimed class, and records
//! every verdict into the flight recorder
//! ([`EventKind::WatchdogVerdict`](mvcc_telemetry::EventKind)) — so a
//! violation during a chaos soak lands on the same timeline as the kill
//! sites and fence refusals around it, with the offending transactions
//! named by trace id.
//!
//! ## Soundness of windowed checks
//!
//! A ring-mode history has dropped its oldest steps, so the watchdog
//! checks the *window*: the committed projection restricted to
//! transactions wholly above [`History::drop_horizon`] (transaction ids
//! are monotone, so those transactions have every step retained — see
//! [`History::windowed_schedule`]).  A window is a transaction-subset
//! projection of the full committed history, which means only properties
//! *closed under such projections* may be asserted on it:
//!
//! * **CSR** and **MVCSR** qualify: both are "the conflict graph is
//!   acyclic" ([`mvcc_classify::is_csr`], [`mvcc_classify::is_mvcsr`]),
//!   and deleting transactions deletes nodes and edges — a subgraph of an
//!   acyclic graph is acyclic.  A windowed violation is therefore a real
//!   violation of the full history too.
//! * **MVSR** does not: view-equivalence is a whole-history property, and
//!   the check is the exact NP-complete search besides.  The watchdog
//!   checks MVSR only on *complete* histories small enough to search
//!   ([`WatchdogConfig::max_mvsr_window`]) and counts everything else as
//!   skipped rather than risk a false alarm.
//! * **SI** claims no Figure 1 class; its windows pass vacuously (the
//!   engine-level first-committer-wins tests carry the real assertions).
//!
//! The zero-false-alarm requirement of the chaos soaks rests exactly on
//! this table: every verdict the watchdog emits is one the offline
//! checkers would also emit on the full history.

use crate::certifier::HistoryClass;
use crate::session::{Engine, History};
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_telemetry::{EventKind, TraceId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Watchdog tuning.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How often the background thread samples the history.
    pub interval: Duration,
    /// Largest *complete* committed-transaction count the exact MVSR
    /// search is attempted on; larger (or truncated) MVSR histories are
    /// counted as skipped instead of checked (the search is NP-complete
    /// and MVSR is not closed under windowing — see the module docs).
    pub max_mvsr_window: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            interval: Duration::from_millis(20),
            max_mvsr_window: 64,
        }
    }
}

/// Counters the watchdog has accumulated so far (monotone; readable at
/// any time, e.g. for a soak's zero-false-alarm assertion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// History windows actually checked against the class.
    pub windows: u64,
    /// Checked windows that violated the class (0 on a correct engine).
    pub violations: u64,
    /// Samples skipped: history unchanged since the last check, or a
    /// window the class cannot soundly be asserted on (MVSR truncated or
    /// oversized).
    pub skipped: u64,
}

/// The shared state the sampling thread and the handle both see.
struct WatchdogInner {
    engine: Arc<Engine>,
    config: WatchdogConfig,
    stop: AtomicBool,
    windows: AtomicU64,
    violations: AtomicU64,
    skipped: AtomicU64,
    /// Fingerprint of the last history sampled (admitted len, dropped,
    /// committed len) — re-checking an unchanged history is pure waste.
    last: TrackedMutex<Option<(usize, u64, usize)>>,
}

impl WatchdogInner {
    /// Samples the history once and (when it changed and the class is
    /// checkable) runs the classifier.  Returns `Some(ok)` for a checked
    /// window, `None` for a skip.
    fn check_once(&self) -> Option<bool> {
        let history = self.engine.history();
        let fingerprint = (
            history.admitted.len(),
            history.dropped,
            history.committed.len(),
        );
        {
            let mut last = self.last.lock();
            if *last == Some(fingerprint) {
                self.skipped.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            *last = Some(fingerprint);
        }
        let class = self.engine.class();
        if !Self::checkable(class, &history, self.config.max_mvsr_window) {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let schedule = history.windowed_schedule();
        let ok = class.check(&schedule);
        self.windows.fetch_add(1, Ordering::Relaxed);
        let detail = if ok {
            if history.is_complete() {
                "complete".to_string()
            } else {
                format!("window above tx{}", history.drop_horizon.map_or(0, |t| t.0))
            }
        } else {
            self.violations.fetch_add(1, Ordering::Relaxed);
            // Name the offenders by trace id so the flight-recorder line
            // correlates with the tracing layer's span trees.
            let epoch = self.engine.epoch();
            let mut ids: Vec<String> = schedule
                .tx_ids()
                .into_iter()
                .take(8)
                .map(|tx| TraceId::pack(epoch, tx.0).to_string())
                .collect();
            if schedule.num_transactions() > 8 {
                ids.push("..".to_string());
            }
            format!("violating traces {}", ids.join(","))
        };
        self.engine.metrics().flight(EventKind::WatchdogVerdict {
            class: class.to_string(),
            ok,
            txns: schedule.num_transactions() as u64,
            detail,
        });
        Some(ok)
    }

    /// Whether `class` may soundly be asserted on this history's window
    /// (see the module docs for the closure-under-projection argument).
    fn checkable(class: HistoryClass, history: &History, max_mvsr: usize) -> bool {
        match class {
            HistoryClass::Csr | HistoryClass::Mvcsr | HistoryClass::SnapshotIsolation => true,
            HistoryClass::Mvsr => history.is_complete() && history.committed.len() <= max_mvsr,
        }
    }
}

/// A running classification watchdog; stops (and joins its thread) on
/// [`ClassificationWatchdog::stop`] or drop.
pub struct ClassificationWatchdog {
    inner: Arc<WatchdogInner>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ClassificationWatchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassificationWatchdog")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ClassificationWatchdog {
    /// Starts the sampling thread over `engine`.
    ///
    /// The watchdog holds an `Arc` to the engine, so the engine outlives
    /// it; call [`ClassificationWatchdog::stop`] (or drop the handle)
    /// before tearing the engine down in a test that leaks it on purpose.
    pub fn start(engine: Arc<Engine>, config: WatchdogConfig) -> ClassificationWatchdog {
        let inner = Arc::new(WatchdogInner {
            engine,
            config,
            stop: AtomicBool::new(false),
            windows: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            last: TrackedMutex::new(lock_class!("engine.watchdog-last"), None),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("mvcc-watchdog".into())
            .spawn(move || {
                while !thread_inner.stop.load(Ordering::Acquire) {
                    std::thread::park_timeout(thread_inner.config.interval);
                    if thread_inner.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let _ = thread_inner.check_once();
                }
            })
            // lint: allow(unwrap) — startup path: failing to spawn the watchdog is fatal
            .expect("spawn watchdog thread");
        ClassificationWatchdog {
            inner,
            handle: Some(handle),
        }
    }

    /// Runs one sampling pass synchronously on the caller's thread —
    /// deterministic verdicts for tests, with exactly the thread loop's
    /// dedup and soundness gating.  Returns `Some(ok)` for a checked
    /// window, `None` for a skip.
    pub fn check_once(&self) -> Option<bool> {
        self.inner.check_once()
    }

    /// A detached stats reader: clones the shared inner state, so a
    /// timeline sampler can keep reading verdict counters after the
    /// watchdog handle itself has been consumed by `stop()` (the stop
    /// order in a monitored run is watchdog first, monitor last — the
    /// closing frame still sees the final counts).
    pub fn stats_probe(&self) -> impl Fn() -> WatchdogStats + Send + Sync + 'static {
        let inner = Arc::clone(&self.inner);
        move || WatchdogStats {
            windows: inner.windows.load(Ordering::Relaxed),
            violations: inner.violations.load(Ordering::Relaxed),
            skipped: inner.skipped.load(Ordering::Relaxed),
        }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> WatchdogStats {
        WatchdogStats {
            windows: self.inner.windows.load(Ordering::Relaxed),
            violations: self.inner.violations.load(Ordering::Relaxed),
            skipped: self.inner.skipped.load(Ordering::Relaxed),
        }
    }

    /// Stops the sampling thread and joins it, returning the final
    /// counters.
    pub fn stop(mut self) -> WatchdogStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for ClassificationWatchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::CertifierKind;
    use crate::session::EngineConfig;
    use bytes::Bytes;
    use mvcc_core::EntityId;
    use mvcc_telemetry::TelemetryMode;

    fn engine(kind: CertifierKind, config: EngineConfig) -> Arc<Engine> {
        Arc::new(Engine::new(kind, config))
    }

    #[test]
    fn verdicts_for_every_certifier_on_a_complete_history() {
        for kind in CertifierKind::all() {
            let e = engine(
                kind,
                EngineConfig {
                    telemetry: TelemetryMode::On,
                    ..EngineConfig::default()
                },
            );
            for i in 0..4u32 {
                let mut s = e.begin();
                let _ = s.read(EntityId(i % 2));
                let _ = s.write(EntityId(2 + i % 2), Bytes::from(format!("{i}")));
                let _ = s.commit();
            }
            let dog = ClassificationWatchdog::start(Arc::clone(&e), WatchdogConfig::default());
            assert_eq!(dog.check_once(), Some(true), "{kind}");
            // Unchanged history: the next pass dedups into a skip.
            assert_eq!(dog.check_once(), None, "{kind}");
            let stats = dog.stop();
            assert!(stats.windows >= 1, "{kind}");
            assert_eq!(stats.violations, 0, "{kind}");
            let dump = e.metrics().flight_dump().expect("telemetry on");
            assert!(dump.contains("watchdog class="), "{kind}: {dump}");
            assert!(dump.contains("ok=true"), "{kind}: {dump}");
        }
    }

    #[test]
    fn ring_truncated_windows_are_checked_for_conflict_graph_classes_only() {
        // SGT (CSR) with a tiny ring: truncation forces the windowed
        // projection, which is sound for conflict-graph classes.
        let e = engine(
            CertifierKind::Sgt,
            EngineConfig {
                history_capacity: Some(3),
                ..EngineConfig::default()
            },
        );
        for i in 0..6u32 {
            let mut s = e.begin();
            s.write(EntityId(i % 4), Bytes::from(format!("{i}")))
                .unwrap();
            s.commit().unwrap();
        }
        assert!(!e.history().is_complete());
        let dog = ClassificationWatchdog::start(Arc::clone(&e), WatchdogConfig::default());
        assert_eq!(dog.check_once(), Some(true));
        drop(dog);
        // MVTO (MVSR) with the same truncation: windowing is not sound
        // for view-serializability, so the sample must be skipped.
        let e = engine(
            CertifierKind::Mvto,
            EngineConfig {
                history_capacity: Some(3),
                ..EngineConfig::default()
            },
        );
        for i in 0..6u32 {
            let mut s = e.begin();
            s.write(EntityId(i % 4), Bytes::from(format!("{i}")))
                .unwrap();
            s.commit().unwrap();
        }
        let dog = ClassificationWatchdog::start(Arc::clone(&e), WatchdogConfig::default());
        assert_eq!(dog.check_once(), None);
        let stats = dog.stop();
        assert_eq!(stats.windows, 0);
        assert!(stats.skipped >= 1);
    }

    #[test]
    fn oversized_mvsr_histories_are_skipped_not_searched() {
        let e = engine(CertifierKind::Mvto, EngineConfig::default());
        for i in 0..3u32 {
            let mut s = e.begin();
            s.write(EntityId(i), Bytes::from(format!("{i}"))).unwrap();
            s.commit().unwrap();
        }
        let dog = ClassificationWatchdog::start(
            Arc::clone(&e),
            WatchdogConfig {
                max_mvsr_window: 2,
                ..WatchdogConfig::default()
            },
        );
        assert_eq!(dog.check_once(), None, "3 committed > window of 2");
        drop(dog);
        let dog = ClassificationWatchdog::start(Arc::clone(&e), WatchdogConfig::default());
        assert_eq!(dog.check_once(), Some(true), "default window fits");
        dog.stop();
    }

    #[test]
    fn background_thread_samples_on_its_own() {
        let e = engine(CertifierKind::Sgt, EngineConfig::default());
        let dog = ClassificationWatchdog::start(
            Arc::clone(&e),
            WatchdogConfig {
                interval: Duration::from_millis(1),
                ..WatchdogConfig::default()
            },
        );
        let mut s = e.begin();
        s.write(EntityId(0), Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5); // lint: allow(clock) — test deadline
        loop {
            let stats = dog.stats();
            if stats.windows >= 1 {
                assert_eq!(stats.violations, 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline, // lint: allow(clock) — test deadline
                "watchdog never sampled: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        dog.stop();
    }
}
