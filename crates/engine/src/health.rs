//! Cluster health: the engine-side sampler behind the metrics timeline,
//! the windowed anomaly detector, and the aggregated cluster report.
//!
//! The telemetry crate owns the *mechanism* (frames, ring, recorder,
//! JSONL, Prometheus text — see `mvcc_telemetry::timeline`); this module
//! owns the *policy*: what an engine frame contains
//! ([`EngineSampler`]), what counts as anomalous ([`AnomalyDetector`]),
//! and how a primary + replicas + failover driver roll up into one
//! report ([`ClusterHealth`]).
//!
//! ## Detector soundness vs. the watchdog
//!
//! The [`ClassificationWatchdog`](crate::ClassificationWatchdog) is a
//! *correctness* oracle: a violation means the engine provably emitted a
//! non-serializable window, and one violation is terminal.  The anomaly
//! detector is a *health* heuristic: abort-storm, lag-stall, fsync
//! degradation and throughput collapse are statistical judgements
//! against a windowed baseline, expected to fire under injected chaos
//! and to stay silent in steady state (the release soak asserts zero
//! false alarms).  The detector therefore *forwards* watchdog verdicts
//! as its fifth rule but never reinterprets them: a watchdog violation
//! alarm is exactly as loud as the watchdog itself.
//!
//! Alarms are edge-triggered with hysteresis by construction: an alarm
//! is *active* from its onset frame until its clear frame, transitions
//! are recorded into the flight recorder as
//! [`EventKind::Anomaly`](mvcc_telemetry::EventKind) events, and the
//! baseline only absorbs alarm-free frames (so a storm cannot talk the
//! baseline into accepting it).

use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::session::Engine;
use crate::watchdog::WatchdogStats;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_telemetry::timeline::{
    FrameSource, QuantileSummary, ReplicaFrame, TimelineFrame, TimelineRecorder, TimelineRing,
    DEFAULT_TIMELINE_CAPACITY,
};
use mvcc_telemetry::{EventKind, FlightEvent, Stage};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Probes.
// ---------------------------------------------------------------------

/// A named cluster member the sampler polls each frame: the closure
/// returns the member's apply watermark (next LSN it will apply).
/// Constructed from a `Replica` by the harness that owns one — the
/// engine crate stays below `mvcc-replica` in the dependency order, so
/// the probe is a closure rather than a replica handle.
pub struct MemberProbe {
    name: String,
    watermark: Box<dyn Fn() -> u64 + Send>,
}

impl MemberProbe {
    /// A probe polling `watermark` under `name`.
    pub fn new(name: impl Into<String>, watermark: impl Fn() -> u64 + Send + 'static) -> Self {
        MemberProbe {
            name: name.into(),
            watermark: Box::new(watermark),
        }
    }
}

impl fmt::Debug for MemberProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemberProbe")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// The engine frame source.
// ---------------------------------------------------------------------

/// The engine's [`FrameSource`]: turns two successive
/// [`MetricsSnapshot`]s into one windowed delta [`TimelineFrame`], polls
/// the member probes, and runs the attached [`AnomalyDetector`] over the
/// frame (recording onset/clear transitions into the flight recorder).
///
/// Reading a frame costs one registry snapshot plus the probe closures —
/// all lock-free counter loads — so the sampling cadence adds no
/// synchronization edges to the transaction hot path (the overhead
/// guard test pins recorder-on within 5% of off).
pub struct EngineSampler {
    metrics: Arc<EngineMetrics>,
    /// Returns (last appended LSN, flushed-horizon LSN) of the *current*
    /// primary.  A closure so a failover harness can follow its write
    /// router: after promotion the probe must read the promoted engine,
    /// or replica lag would be measured against a deposed log and the
    /// lag-stall alarm could never clear.
    lsn: Box<dyn Fn() -> (u64, u64) + Send>,
    probes: Vec<MemberProbe>,
    watchdog: Option<Box<dyn Fn() -> WatchdogStats + Send>>,
    detector: Arc<TrackedMutex<AnomalyDetector>>,
    start: Instant,
    prev_at: Instant,
    prev: MetricsSnapshot,
    prev_watchdog: WatchdogStats,
}

impl EngineSampler {
    /// A sampler over `metrics` with an explicit primary-LSN probe.
    pub fn new(
        metrics: Arc<EngineMetrics>,
        lsn: impl Fn() -> (u64, u64) + Send + 'static,
        probes: Vec<MemberProbe>,
        detector: DetectorConfig,
    ) -> Self {
        let prev = metrics.snapshot();
        // The sampler is the timeline's clock; it runs on the recorder
        // cadence thread, never on the hot path.
        // lint: allow(clock) — timeline sampling off the hot path
        let now = Instant::now();
        EngineSampler {
            metrics,
            lsn: Box::new(lsn),
            probes,
            watchdog: None,
            detector: Arc::new(TrackedMutex::new(
                lock_class!("engine.health-detector"),
                AnomalyDetector::new(detector),
            )),
            start: now,
            prev_at: now,
            prev,
            prev_watchdog: WatchdogStats::default(),
        }
    }

    /// A sampler following one engine's own WAL (the common
    /// single-primary case).
    pub fn for_engine(
        engine: &Arc<Engine>,
        probes: Vec<MemberProbe>,
        detector: DetectorConfig,
    ) -> Self {
        let primary = Arc::clone(engine);
        EngineSampler::new(
            engine.metrics_handle(),
            move || -> (u64, u64) {
                (
                    primary.wal_last_lsn().unwrap_or(0),
                    primary.durable_lsn().unwrap_or(0),
                )
            },
            probes,
            detector,
        )
    }

    /// Attaches a watchdog stats probe (see
    /// [`ClassificationWatchdog::stats_probe`](crate::ClassificationWatchdog::stats_probe)),
    /// so frames carry windowed verdict counts.
    pub fn with_watchdog(mut self, probe: impl Fn() -> WatchdogStats + Send + 'static) -> Self {
        self.prev_watchdog = probe();
        self.watchdog = Some(Box::new(probe));
        self
    }

    /// The shared detector handle (alarm state outlives the recorder
    /// thread the sampler moves into).
    pub fn detector(&self) -> Arc<TrackedMutex<AnomalyDetector>> {
        Arc::clone(&self.detector)
    }
}

impl fmt::Debug for EngineSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSampler")
            .field("probes", &self.probes)
            .finish_non_exhaustive()
    }
}

impl FrameSource for EngineSampler {
    fn sample(&mut self, seq: u64) -> TimelineFrame {
        let snap = self.metrics.snapshot();
        // lint: allow(clock) — frame timestamping on the cadence thread.
        let now = Instant::now();
        let window = now.duration_since(self.prev_at);
        let window_us = u64::try_from(window.as_micros()).unwrap_or(u64::MAX).max(1);

        let begun = snap.begun.saturating_sub(self.prev.begun);
        let committed = snap.committed.saturating_sub(self.prev.committed);
        let aborted = snap.aborted.saturating_sub(self.prev.aborted);
        let finished = committed + aborted;
        let mut aborts_by_reason = Vec::new();
        for (reason, count) in &snap.aborts_by_reason {
            let before = self
                .prev
                .aborts_by_reason
                .iter()
                .find(|(r, _)| r == reason)
                .map_or(0, |(_, c)| *c);
            let delta = count.saturating_sub(before);
            if delta > 0 {
                aborts_by_reason.push((reason.to_string(), delta));
            }
        }

        let commit = QuantileSummary::from_histogram(&snap.latency.diff(&self.prev.latency));
        let stage_window = snap.stages.diff(&self.prev.stages);
        let wal_flush = stage_window
            .get(Stage::WalFlush)
            .map(QuantileSummary::from_histogram)
            .unwrap_or_default();
        let stages: Vec<(String, QuantileSummary)> = stage_window
            .stages
            .iter()
            .map(|entry| {
                (
                    entry.stage.name().to_string(),
                    QuantileSummary::from_histogram(&entry.histogram),
                )
            })
            .collect();

        let (primary_lsn, durable_lsn) = (self.lsn)();
        let replicas: Vec<ReplicaFrame> = self
            .probes
            .iter()
            .map(|probe| {
                let watermark = (probe.watermark)();
                ReplicaFrame {
                    name: probe.name.clone(),
                    watermark,
                    // The watermark is the *next* LSN to apply, so a
                    // fully caught-up replica sits at primary_lsn + 1.
                    lag_lsn: (primary_lsn + 1).saturating_sub(watermark),
                }
            })
            .collect();

        let (watchdog_windows, watchdog_violations) = match &self.watchdog {
            Some(probe) => {
                let stats = probe();
                let delta = (
                    stats.windows.saturating_sub(self.prev_watchdog.windows),
                    stats
                        .violations
                        .saturating_sub(self.prev_watchdog.violations),
                );
                self.prev_watchdog = stats;
                delta
            }
            None => (0, 0),
        };

        let frame = TimelineFrame {
            seq,
            at_us: u64::try_from(now.duration_since(self.start).as_micros()).unwrap_or(u64::MAX),
            window_us,
            begun,
            committed,
            aborted,
            txn_s: committed as f64 / (window_us as f64 / 1e6),
            abort_rate: if finished == 0 {
                0.0
            } else {
                aborted as f64 / finished as f64
            },
            aborts_by_reason,
            wal_flushes: snap.wal_flushes.saturating_sub(self.prev.wal_flushes),
            wal_fsyncs: snap.wal_fsyncs.saturating_sub(self.prev.wal_fsyncs),
            commit,
            wal_flush,
            stages,
            primary_lsn,
            durable_lsn,
            epoch: snap.epoch,
            replicas,
            watchdog_windows,
            watchdog_violations,
        };
        self.prev = snap;
        self.prev_at = now;

        for event in self.detector.lock().observe(&frame) {
            self.metrics.flight(event);
        }
        frame
    }
}

// ---------------------------------------------------------------------
// The anomaly detector.
// ---------------------------------------------------------------------

/// What kind of anomaly an [`Alarm`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// Abort fraction jumped far above its baseline.
    AbortStorm,
    /// A replica's watermark stayed flat while it had log left to apply.
    LagStall,
    /// Windowed WAL flush/fsync p99 degraded far above its baseline.
    FsyncDegradation,
    /// Windowed throughput collapsed while clients still offered load.
    ThroughputCollapse,
    /// The classification watchdog ruled a violation inside the window.
    WatchdogViolation,
}

impl AnomalyKind {
    /// The anomaly's stable name (flight events, `mvccstat`, CI greps).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::AbortStorm => "abort-storm",
            AnomalyKind::LagStall => "lag-stall",
            AnomalyKind::FsyncDegradation => "fsync-degradation",
            AnomalyKind::ThroughputCollapse => "throughput-collapse",
            AnomalyKind::WatchdogViolation => "watchdog-violation",
        }
    }
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One alarm: a kind (plus the member, for per-member kinds), its onset
/// frame, and — once the condition released — its clear frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// What fired.
    pub kind: AnomalyKind,
    /// The member it fired for (lag-stall), or `None` for cluster-wide
    /// anomalies.
    pub member: Option<String>,
    /// Frame sequence number of the onset.
    pub onset: u64,
    /// Timeline timestamp (µs) of the onset frame.
    pub onset_at_us: u64,
    /// Frame sequence number the alarm cleared at, `None` while active.
    pub cleared: Option<u64>,
    /// Human-readable trigger detail (rates, baselines, watermarks).
    pub detail: String,
}

impl Alarm {
    /// True while the condition still holds.
    pub fn is_active(&self) -> bool {
        self.cleared.is_none()
    }
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(member) = &self.member {
            write!(f, "[{member}]")?;
        }
        write!(f, " onset frame {}", self.onset)?;
        match self.cleared {
            Some(frame) => write!(f, ", cleared frame {frame}")?,
            None => write!(f, ", ACTIVE")?,
        }
        write!(f, " ({})", self.detail)
    }
}

/// Detector thresholds.  Defaults are tuned so the scripted chaos tests
/// trip reliably while a steady-state closed-loop soak stays silent (the
/// release soak asserts exactly that).
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Frames of history the rolling baseline averages over.
    pub baseline_window: usize,
    /// Minimum finished transactions in a window before the abort-storm
    /// rule may fire (tiny windows have meaningless fractions).
    pub min_txns: u64,
    /// Absolute abort-fraction floor for abort-storm.
    pub abort_rate_threshold: f64,
    /// Abort-storm also requires the fraction to exceed the baseline by
    /// this factor (a workload that *always* aborts half its load is
    /// contention, not a storm).
    pub abort_rate_factor: f64,
    /// Consecutive flat-watermark frames (with lag) before lag-stall
    /// fires.
    pub stall_frames: u64,
    /// Fsync-degradation requires windowed flush p99 ≥ baseline × this.
    pub fsync_factor: f64,
    /// … and ≥ this absolute floor (µs), so µs-scale jitter on an
    /// in-memory WAL never alarms.
    pub fsync_floor_us: f64,
    /// Consecutive degraded windows before fsync-degradation fires (one
    /// slow flush window is an I/O scheduling blip, not a failing disk —
    /// the same persistence discipline as stall/collapse).
    pub fsync_frames: u64,
    /// Throughput-collapse fires when windowed txn/s drops below
    /// baseline × this fraction …
    pub collapse_fraction: f64,
    /// … provided the baseline itself was at least this many txn/s
    /// (an idle engine cannot collapse).
    pub min_baseline_tps: f64,
    /// Consecutive collapsed frames before the alarm fires (one slow
    /// window is scheduling noise).
    pub collapse_frames: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            baseline_window: 5,
            min_txns: 16,
            abort_rate_threshold: 0.5,
            abort_rate_factor: 3.0,
            stall_frames: 2,
            fsync_factor: 4.0,
            fsync_floor_us: 256.0,
            fsync_frames: 2,
            collapse_fraction: 0.2,
            min_baseline_tps: 500.0,
            collapse_frames: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BaselinePoint {
    txn_s: f64,
    abort_rate: f64,
    fsync_p99: Option<f64>,
}

#[derive(Debug, Default)]
struct MemberState {
    last_watermark: u64,
    flat_frames: u64,
}

/// The windowed anomaly detector: feed it frames in order
/// ([`AnomalyDetector::observe`]), read alarms out
/// ([`AnomalyDetector::alarms`]).  Pure frame-in/verdict-out logic — no
/// threads, no clocks — so scripted tests and `mvccstat replay` run the
/// exact detector the live monitor runs.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: DetectorConfig,
    baseline: VecDeque<BaselinePoint>,
    members: Vec<(String, MemberState)>,
    collapse_run: u64,
    fsync_run: u64,
    alarms: Vec<Alarm>,
}

impl AnomalyDetector {
    /// A detector with no history yet.
    pub fn new(config: DetectorConfig) -> Self {
        AnomalyDetector {
            config,
            baseline: VecDeque::new(),
            members: Vec::new(),
            collapse_run: 0,
            fsync_run: 0,
            alarms: Vec::new(),
        }
    }

    /// Every alarm raised so far (cleared ones keep their clear frame).
    pub fn alarms(&self) -> Vec<Alarm> {
        self.alarms.clone()
    }

    /// The alarms whose condition still holds.
    pub fn active_alarms(&self) -> Vec<Alarm> {
        self.alarms
            .iter()
            .filter(|a| a.is_active())
            .cloned()
            .collect()
    }

    /// Runs the detector over a recorded timeline (what `mvccstat
    /// replay` does) and returns the alarms.
    pub fn replay(frames: &[TimelineFrame], config: DetectorConfig) -> Vec<Alarm> {
        let mut detector = AnomalyDetector::new(config);
        for frame in frames {
            detector.observe(frame);
        }
        detector.alarms()
    }

    /// Evaluates one frame, updating alarm state; returns the flight
    /// events for this frame's onset/clear transitions (the caller owns
    /// the flight recorder — the detector stays mechanism-free).
    pub fn observe(&mut self, frame: &TimelineFrame) -> Vec<EventKind> {
        let cfg = self.config;
        let mut events = Vec::new();

        // Rolling baselines over recent alarm-free frames.
        let base_n = self.baseline.len().max(1) as f64;
        let base_tps = self.baseline.iter().map(|p| p.txn_s).sum::<f64>() / base_n;
        let base_abort = self.baseline.iter().map(|p| p.abort_rate).sum::<f64>() / base_n;
        let fsync_points: Vec<f64> = self.baseline.iter().filter_map(|p| p.fsync_p99).collect();
        let base_fsync = if fsync_points.is_empty() {
            None
        } else {
            Some(fsync_points.iter().sum::<f64>() / fsync_points.len() as f64)
        };

        // Rule 1: abort storm.
        let finished = frame.committed + frame.aborted;
        let storm = finished >= cfg.min_txns
            && frame.abort_rate >= cfg.abort_rate_threshold
            && frame.abort_rate >= base_abort * cfg.abort_rate_factor;
        self.transition(
            AnomalyKind::AbortStorm,
            None,
            storm,
            frame,
            || {
                format!(
                    "abort_rate={:.2} baseline={:.2} finished={finished}",
                    frame.abort_rate, base_abort
                )
            },
            &mut events,
        );

        // Rule 2: replication-lag stall, per member.  The watermark is
        // flat *while the member has log left to apply* — a caught-up
        // idle replica is healthy, a pinned one is not.
        for replica in &frame.replicas {
            let state = match self.members.iter_mut().find(|(n, _)| n == &replica.name) {
                Some((_, state)) => state,
                None => {
                    self.members
                        .push((replica.name.clone(), MemberState::default()));
                    let last = self.members.len() - 1;
                    &mut self.members[last].1
                }
            };
            if replica.lag_lsn > 0 && replica.watermark == state.last_watermark {
                state.flat_frames += 1;
            } else {
                state.flat_frames = 0;
            }
            state.last_watermark = replica.watermark;
            let stalled = state.flat_frames >= cfg.stall_frames;
            let (watermark, lag) = (replica.watermark, replica.lag_lsn);
            self.transition(
                AnomalyKind::LagStall,
                Some(replica.name.clone()),
                stalled,
                frame,
                || format!("watermark={watermark} lag={lag}"),
                &mut events,
            );
        }

        // Rule 3: fsync / WAL-flush degradation — only after
        // `fsync_frames` consecutive degraded windows (a single slow
        // flush window is an I/O scheduling blip, not a failing disk).
        let degraded_now = match base_fsync {
            Some(base) => {
                !frame.wal_flush.is_empty()
                    && frame.wal_flush.p99 >= cfg.fsync_floor_us
                    && frame.wal_flush.p99 >= base * cfg.fsync_factor
            }
            None => false,
        };
        self.fsync_run = if degraded_now { self.fsync_run + 1 } else { 0 };
        let degraded = self.fsync_run >= cfg.fsync_frames;
        self.transition(
            AnomalyKind::FsyncDegradation,
            None,
            degraded,
            frame,
            || {
                format!(
                    "flush_p99={:.1}us baseline={:.1}us",
                    frame.wal_flush.p99,
                    base_fsync.unwrap_or(0.0)
                )
            },
            &mut events,
        );

        // Rule 4: throughput collapse.  Only while clients still offer
        // load — the idle tail after a closed-loop run ends is a normal
        // zero, not a collapse — and only after `collapse_frames`
        // consecutive bad windows.
        let offering = frame.begun > 0 || frame.aborted > 0;
        let collapsed_now = !self.baseline.is_empty()
            && base_tps >= cfg.min_baseline_tps
            && frame.txn_s < base_tps * cfg.collapse_fraction
            && offering;
        self.collapse_run = if collapsed_now {
            self.collapse_run + 1
        } else {
            0
        };
        let collapse = self.collapse_run >= cfg.collapse_frames;
        self.transition(
            AnomalyKind::ThroughputCollapse,
            None,
            collapse,
            frame,
            || format!("txn_s={:.0} baseline={:.0}", frame.txn_s, base_tps),
            &mut events,
        );

        // Rule 5: watchdog violation — forwarded, not reinterpreted.
        self.transition(
            AnomalyKind::WatchdogViolation,
            None,
            frame.watchdog_violations > 0,
            frame,
            || format!("violations={}", frame.watchdog_violations),
            &mut events,
        );

        // Only alarm-free frames with traffic teach the baseline: an
        // anomalous frame must not normalize itself, and idle windows
        // would drag the throughput baseline toward zero.  Frames mid-way
        // through a persistence run (degraded or collapsed but not yet
        // past `*_frames`) are suspects, not baselines — learning them
        // would raise the bar the very next window is judged against.
        if events.is_empty()
            && self.active_alarms().is_empty()
            && finished > 0
            && self.fsync_run == 0
            && self.collapse_run == 0
        {
            self.baseline.push_back(BaselinePoint {
                txn_s: frame.txn_s,
                abort_rate: frame.abort_rate,
                fsync_p99: (!frame.wal_flush.is_empty()).then_some(frame.wal_flush.p99),
            });
            while self.baseline.len() > cfg.baseline_window {
                self.baseline.pop_front();
            }
        }
        events
    }

    /// Applies one rule verdict: raises on a fresh condition, clears a
    /// held alarm whose condition released, and emits the corresponding
    /// flight event.
    #[allow(clippy::too_many_arguments)]
    fn transition(
        &mut self,
        kind: AnomalyKind,
        member: Option<String>,
        firing: bool,
        frame: &TimelineFrame,
        detail: impl FnOnce() -> String,
        events: &mut Vec<EventKind>,
    ) {
        let held = self
            .alarms
            .iter_mut()
            .find(|a| a.kind == kind && a.member == member && a.is_active());
        match (firing, held) {
            (true, None) => {
                let detail = detail();
                events.push(EventKind::Anomaly {
                    anomaly: kind.name().to_string(),
                    phase: "onset".to_string(),
                    frame: frame.seq,
                    detail: detail.clone(),
                });
                self.alarms.push(Alarm {
                    kind,
                    member,
                    onset: frame.seq,
                    onset_at_us: frame.at_us,
                    cleared: None,
                    detail,
                });
            }
            (false, Some(alarm)) => {
                alarm.cleared = Some(frame.seq);
                events.push(EventKind::Anomaly {
                    anomaly: kind.name().to_string(),
                    phase: "clear".to_string(),
                    frame: frame.seq,
                    detail: detail(),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Cluster health aggregation.
// ---------------------------------------------------------------------

/// One member's row in a [`ClusterHealth`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberHealth {
    /// Member name (`primary`, or a probe's name).
    pub name: String,
    /// `primary` or `replica`.
    pub role: String,
    /// The epoch the member observes (replicas inherit the frame's).
    pub epoch: u64,
    /// Last appended LSN (primary) or apply watermark (replica).
    pub position: u64,
    /// LSNs behind the primary (0 for the primary itself).
    pub lag_lsn: u64,
}

/// The aggregated cluster report `mvccstat` renders: per-member
/// positions from the newest frame, active/total alarms, and the
/// failover MTTR when the flight recorder saw a promotion.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHealth {
    /// Frame the report was cut from.
    pub frame_seq: u64,
    /// Per-member rows (primary first).
    pub members: Vec<MemberHealth>,
    /// Windowed throughput of the newest frame.
    pub txn_s: f64,
    /// Windowed abort fraction of the newest frame.
    pub abort_rate: f64,
    /// All alarms raised over the run (cleared ones included).
    pub alarms: Vec<Alarm>,
    /// Failover mean-time-to-repair: promotion `detected` → `installed`
    /// (µs), when the flight recorder saw both phases.
    pub failover_mttr_us: Option<u64>,
}

impl ClusterHealth {
    /// Builds the report from the newest frame, the detector's alarms,
    /// and (optionally) flight events for the MTTR annotation.
    pub fn from_frame(frame: &TimelineFrame, alarms: Vec<Alarm>, events: &[FlightEvent]) -> Self {
        let mut members = vec![MemberHealth {
            name: "primary".to_string(),
            role: "primary".to_string(),
            epoch: frame.epoch,
            position: frame.primary_lsn,
            lag_lsn: 0,
        }];
        for replica in &frame.replicas {
            members.push(MemberHealth {
                name: replica.name.clone(),
                role: "replica".to_string(),
                epoch: frame.epoch,
                position: replica.watermark,
                lag_lsn: replica.lag_lsn,
            });
        }
        ClusterHealth {
            frame_seq: frame.seq,
            members,
            txn_s: frame.txn_s,
            abort_rate: frame.abort_rate,
            alarms,
            failover_mttr_us: failover_mttr(events),
        }
    }

    /// Renders the report as the `mvccstat` footer table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cluster health @ frame {}: txn/s {:.0}, abort {:.1}%\n",
            self.frame_seq,
            self.txn_s,
            self.abort_rate * 100.0
        ));
        out.push_str("  member      role     epoch  position  lag\n");
        for m in &self.members {
            out.push_str(&format!(
                "  {:<10}  {:<7}  {:>5}  {:>8}  {:>3}\n",
                m.name, m.role, m.epoch, m.position, m.lag_lsn
            ));
        }
        if let Some(mttr) = self.failover_mttr_us {
            out.push_str(&format!("  failover MTTR: {} µs\n", mttr));
        }
        let active = self.alarms.iter().filter(|a| a.is_active()).count();
        out.push_str(&format!(
            "  alarms: {} raised, {} active\n",
            self.alarms.len(),
            active
        ));
        for alarm in &self.alarms {
            out.push_str(&format!("    {alarm}\n"));
        }
        out
    }
}

/// Promotion `detected` → `installed` latency (µs) from flight events,
/// or `None` when the recorder saw no complete promotion.
pub fn failover_mttr(events: &[FlightEvent]) -> Option<u64> {
    let mut detected = None;
    for event in events {
        if let EventKind::Promotion { phase, .. } = &event.kind {
            match phase.as_str() {
                "detected" if detected.is_none() => detected = Some(event.at_us),
                "installed" => {
                    if let Some(start) = detected {
                        return Some(event.at_us.saturating_sub(start));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// The health monitor (recorder + sampler + detector, bundled).
// ---------------------------------------------------------------------

/// Monitor cadence/capacity/thresholds.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Sampling cadence (default 100 ms).
    pub interval: Duration,
    /// Frame-ring capacity.
    pub capacity: usize,
    /// Detector thresholds.
    pub detector: DetectorConfig,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            interval: Duration::from_millis(100),
            capacity: DEFAULT_TIMELINE_CAPACITY,
            detector: DetectorConfig::default(),
        }
    }
}

/// The bundled continuous-observability surface: a [`TimelineRecorder`]
/// driving an [`EngineSampler`], with the shared ring attached to the
/// engine's metrics (so `Display` grows its `rates:` block) and the
/// detector handle exposed for assertions.
#[derive(Debug)]
pub struct HealthMonitor {
    recorder: TimelineRecorder,
    detector: Arc<TrackedMutex<AnomalyDetector>>,
    metrics: Arc<EngineMetrics>,
}

impl HealthMonitor {
    /// Starts a monitor over one engine with the given member probes.
    pub fn start(engine: &Arc<Engine>, probes: Vec<MemberProbe>, config: HealthConfig) -> Self {
        let sampler = EngineSampler::for_engine(engine, probes, config.detector);
        HealthMonitor::start_with(engine.metrics_handle(), sampler, config)
    }

    /// Starts a monitor over a custom sampler (a failover harness passes
    /// a router-following sampler here).
    pub fn start_with(
        metrics: Arc<EngineMetrics>,
        sampler: EngineSampler,
        config: HealthConfig,
    ) -> Self {
        let detector = sampler.detector();
        let recorder = TimelineRecorder::start(sampler, config.interval, config.capacity);
        metrics.attach_timeline(recorder.ring());
        HealthMonitor {
            recorder,
            detector,
            metrics,
        }
    }

    /// The shared frame ring.
    pub fn ring(&self) -> Arc<TimelineRing> {
        self.recorder.ring()
    }

    /// All alarms raised so far.
    pub fn alarms(&self) -> Vec<Alarm> {
        self.detector.lock().alarms()
    }

    /// The alarms still active.
    pub fn active_alarms(&self) -> Vec<Alarm> {
        self.detector.lock().active_alarms()
    }

    /// The aggregated report for the newest frame (empty-run fallback:
    /// a zeroed frame).
    pub fn health(&self) -> ClusterHealth {
        let frame = self
            .recorder
            .ring()
            .latest()
            .unwrap_or_else(|| TimelineFrame::zeroed(0));
        let events = self
            .metrics
            .telemetry()
            .map(|t| t.flight().events())
            .unwrap_or_default();
        ClusterHealth::from_frame(&frame, self.alarms(), &events)
    }

    /// Stops the recorder (one closing frame lands first) and returns
    /// the recorded frames and alarms.
    pub fn stop(self) -> (Vec<TimelineFrame>, Vec<Alarm>) {
        let ring = self.recorder.stop();
        self.metrics.detach_timeline();
        (ring.frames(), self.detector.lock().alarms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic_frame(seq: u64, committed: u64, aborted: u64) -> TimelineFrame {
        let mut frame = TimelineFrame::zeroed(seq);
        frame.at_us = (seq + 1) * 100_000;
        frame.window_us = 100_000;
        frame.begun = committed + aborted;
        frame.committed = committed;
        frame.aborted = aborted;
        frame.txn_s = committed as f64 / 0.1;
        let finished = committed + aborted;
        frame.abort_rate = if finished == 0 {
            0.0
        } else {
            aborted as f64 / finished as f64
        };
        frame
    }

    #[test]
    fn abort_storm_fires_on_a_jump_and_clears_when_it_passes() {
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        for seq in 0..5 {
            assert!(detector.observe(&traffic_frame(seq, 100, 5)).is_empty());
        }
        // The storm: 80% aborts, well above the ~5% baseline.
        let events = detector.observe(&traffic_frame(5, 20, 80));
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], EventKind::Anomaly { anomaly, phase, frame, .. }
                if anomaly == "abort-storm" && phase == "onset" && *frame == 5),
            "{events:?}"
        );
        assert_eq!(detector.active_alarms().len(), 1);
        // Still storming: no duplicate onset.
        assert!(detector.observe(&traffic_frame(6, 20, 80)).is_empty());
        // Recovery clears it.
        let events = detector.observe(&traffic_frame(7, 100, 5));
        assert!(
            matches!(&events[0], EventKind::Anomaly { phase, frame, .. }
                if phase == "clear" && *frame == 7),
            "{events:?}"
        );
        let alarms = detector.alarms();
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].onset, 5);
        assert_eq!(alarms[0].cleared, Some(7));
        assert!(detector.active_alarms().is_empty());
    }

    #[test]
    fn a_persistently_contended_workload_is_not_a_storm() {
        // 40% aborts every frame: high, but it IS the baseline — the
        // factor condition keeps the detector quiet.
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        for seq in 0..20 {
            assert!(
                detector.observe(&traffic_frame(seq, 60, 40)).is_empty(),
                "frame {seq} must not alarm"
            );
        }
    }

    #[test]
    fn lag_stall_needs_lag_and_a_flat_watermark() {
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        let frame_with = |seq: u64, watermark: u64, primary: u64| {
            let mut frame = traffic_frame(seq, 50, 0);
            frame.primary_lsn = primary;
            frame.replicas = vec![ReplicaFrame {
                name: "replica-0".into(),
                watermark,
                lag_lsn: (primary + 1).saturating_sub(watermark),
            }];
            frame
        };
        // Advancing watermark: healthy.
        assert!(detector.observe(&frame_with(0, 5, 10)).is_empty());
        assert!(detector.observe(&frame_with(1, 8, 12)).is_empty());
        // Flat with lag: one grace frame, then the alarm.
        assert!(detector.observe(&frame_with(2, 8, 14)).is_empty());
        let events = detector.observe(&frame_with(3, 8, 16));
        assert!(
            matches!(&events[0], EventKind::Anomaly { anomaly, phase, .. }
                if anomaly == "lag-stall" && phase == "onset"),
            "{events:?}"
        );
        let alarm = &detector.active_alarms()[0];
        assert_eq!(alarm.member.as_deref(), Some("replica-0"));
        assert_eq!(alarm.onset, 3);
        // Catch-up clears it.
        let events = detector.observe(&frame_with(4, 17, 16));
        assert!(
            matches!(&events[0], EventKind::Anomaly { phase, .. } if phase == "clear"),
            "{events:?}"
        );
        // A caught-up idle replica (flat watermark, zero lag) never alarms.
        for seq in 5..10 {
            assert!(detector.observe(&frame_with(seq, 17, 16)).is_empty());
        }
    }

    #[test]
    fn fsync_degradation_compares_against_the_baseline() {
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        let frame_with = |seq: u64, p99: f64| {
            let mut frame = traffic_frame(seq, 50, 0);
            frame.wal_flushes = 5;
            frame.wal_fsyncs = 5;
            frame.wal_flush = QuantileSummary {
                count: 5,
                mean: p99 / 2.0,
                p50: p99 / 2.0,
                p95: p99,
                p99,
                p999: p99,
            };
            frame
        };
        for seq in 0..5 {
            assert!(detector.observe(&frame_with(seq, 100.0)).is_empty());
        }
        // 8× the baseline and above the floor — but one degraded window
        // is an I/O blip, not a failing disk: the persistence rule
        // (`fsync_frames` = 2) holds fire.
        assert!(detector.observe(&frame_with(5, 800.0)).is_empty());
        // The second consecutive degraded window fires.
        let events = detector.observe(&frame_with(6, 800.0));
        assert!(
            matches!(&events[0], EventKind::Anomaly { anomaly, phase, .. }
                if anomaly == "fsync-degradation" && phase == "onset"),
            "{events:?}"
        );
        // Back to normal: clears.
        let events = detector.observe(&frame_with(7, 110.0));
        assert!(
            matches!(&events[0], EventKind::Anomaly { phase, .. } if phase == "clear"),
            "{events:?}"
        );
        // A blip that recovers for one window resets the run: no alarm.
        let mut blippy = AnomalyDetector::new(DetectorConfig::default());
        for seq in 0..5 {
            assert!(blippy.observe(&frame_with(seq, 100.0)).is_empty());
        }
        assert!(blippy.observe(&frame_with(5, 800.0)).is_empty());
        assert!(blippy.observe(&frame_with(6, 100.0)).is_empty());
        assert!(blippy.observe(&frame_with(7, 800.0)).is_empty());
        // Sub-floor jitter never fires even at a large factor: 10 µs
        // baseline, 80 µs spikes.
        let mut quiet = AnomalyDetector::new(DetectorConfig::default());
        for seq in 0..5 {
            assert!(quiet.observe(&frame_with(seq, 10.0)).is_empty());
        }
        assert!(quiet.observe(&frame_with(5, 80.0)).is_empty());
        assert!(quiet.observe(&frame_with(6, 80.0)).is_empty());
    }

    #[test]
    fn throughput_collapse_requires_offered_load_and_persistence() {
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        for seq in 0..5 {
            assert!(detector.observe(&traffic_frame(seq, 200, 0)).is_empty());
        }
        // The idle tail after a run ends: txn/s drops to zero but nobody
        // is offering load — not a collapse.
        let mut idle = TimelineFrame::zeroed(5);
        idle.at_us = 600_000;
        idle.window_us = 100_000;
        assert!(detector.observe(&idle).is_empty());
        let mut idle2 = idle.clone();
        idle2.seq = 6;
        assert!(detector.observe(&idle2).is_empty());

        // A real collapse: clients begin transactions but almost nothing
        // commits.  One bad frame is noise; the second fires.
        let collapsed = |seq: u64| {
            let mut frame = traffic_frame(seq, 3, 0);
            frame.begun = 100;
            frame
        };
        assert!(detector.observe(&collapsed(7)).is_empty());
        let events = detector.observe(&collapsed(8));
        assert!(
            matches!(&events[0], EventKind::Anomaly { anomaly, phase, .. }
                if anomaly == "throughput-collapse" && phase == "onset"),
            "{events:?}"
        );
        // Recovery clears.
        let events = detector.observe(&traffic_frame(9, 190, 0));
        assert!(
            matches!(&events[0], EventKind::Anomaly { phase, .. } if phase == "clear"),
            "{events:?}"
        );
    }

    #[test]
    fn watchdog_violations_are_forwarded() {
        let mut detector = AnomalyDetector::new(DetectorConfig::default());
        let mut frame = traffic_frame(0, 50, 0);
        frame.watchdog_windows = 2;
        frame.watchdog_violations = 1;
        let events = detector.observe(&frame);
        assert!(
            matches!(&events[0], EventKind::Anomaly { anomaly, phase, .. }
                if anomaly == "watchdog-violation" && phase == "onset"),
            "{events:?}"
        );
        assert_eq!(
            detector.active_alarms()[0].kind,
            AnomalyKind::WatchdogViolation
        );
    }

    #[test]
    fn replay_reproduces_the_live_verdicts() {
        let mut frames: Vec<TimelineFrame> = (0..5).map(|s| traffic_frame(s, 100, 5)).collect();
        frames.push(traffic_frame(5, 20, 80));
        frames.push(traffic_frame(6, 100, 5));
        let alarms = AnomalyDetector::replay(&frames, DetectorConfig::default());
        assert_eq!(alarms.len(), 1);
        assert_eq!(alarms[0].kind, AnomalyKind::AbortStorm);
        assert_eq!(alarms[0].onset, 5);
        assert_eq!(alarms[0].cleared, Some(6));
    }

    #[test]
    fn cluster_health_aggregates_members_and_mttr() {
        let mut frame = traffic_frame(9, 100, 1);
        frame.primary_lsn = 50;
        frame.epoch = 1;
        frame.replicas = vec![ReplicaFrame {
            name: "electee".into(),
            watermark: 48,
            lag_lsn: 3,
        }];
        let events = vec![
            FlightEvent {
                at_us: 1_000,
                kind: EventKind::Promotion {
                    phase: "detected".into(),
                    detail: String::new(),
                },
                trace: None,
            },
            FlightEvent {
                at_us: 4_500,
                kind: EventKind::Promotion {
                    phase: "installed".into(),
                    detail: String::new(),
                },
                trace: None,
            },
        ];
        let alarm = Alarm {
            kind: AnomalyKind::LagStall,
            member: Some("electee".into()),
            onset: 4,
            onset_at_us: 500_000,
            cleared: Some(8),
            detail: "watermark=48 lag=3".into(),
        };
        let health = ClusterHealth::from_frame(&frame, vec![alarm], &events);
        assert_eq!(health.members.len(), 2);
        assert_eq!(health.members[0].role, "primary");
        assert_eq!(health.members[1].lag_lsn, 3);
        assert_eq!(health.failover_mttr_us, Some(3_500));
        let rendered = health.render();
        assert!(rendered.contains("electee"), "{rendered}");
        assert!(rendered.contains("failover MTTR: 3500 µs"), "{rendered}");
        assert!(rendered.contains("lag-stall[electee]"), "{rendered}");
        assert!(rendered.contains("cleared frame 8"), "{rendered}");
        // No promotion events → no MTTR row.
        assert_eq!(failover_mttr(&[]), None);
    }
}
