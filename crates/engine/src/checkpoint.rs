//! The periodic checkpointer.
//!
//! A [`CheckpointDriver`] owns a background thread that periodically cuts
//! a checkpoint ([`Engine::checkpoint`]): the committed state of every
//! shard — plus the GC watermark each shard was cut at — is written to a
//! checkpoint file, bounding how much of the write-ahead log recovery
//! must replay as *data*.  (Log segments are retained past checkpoints:
//! they still carry the admission history the offline classifiers
//! certify after a crash; see `mvcc-durability`'s recovery docs.)
//!
//! Checkpoints are fuzzy — commits keep flowing while the snapshot is
//! cut — and a failed checkpoint (I/O error) is skipped, not fatal: the
//! previous checkpoint plus a longer log tail still recovers the same
//! state, only slower.

use crate::session::Engine;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to the background checkpoint thread.  Stop it explicitly with
/// [`CheckpointDriver::stop`] or implicitly by dropping it.
#[derive(Debug)]
pub struct CheckpointDriver {
    stop: Arc<AtomicBool>,
    skipped: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl CheckpointDriver {
    /// Spawns a checkpoint thread over `engine`, cutting one checkpoint
    /// every `period`.  Panics if the engine runs without durability —
    /// there is nothing to checkpoint into.
    pub fn start(engine: Arc<Engine>, period: Duration) -> Self {
        assert!(
            engine.durability().is_on(),
            "CheckpointDriver requires an engine with durability on"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let skipped = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let skip_count = Arc::clone(&skipped);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if engine.checkpoint().is_err() {
                    skip_count.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        CheckpointDriver {
            stop,
            skipped,
            handle: Some(handle),
        }
    }

    /// Checkpoints skipped because of I/O errors.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Signals the thread to stop and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CheckpointDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certifier::CertifierKind;
    use crate::session::EngineConfig;
    use bytes::Bytes;
    use mvcc_core::EntityId;
    use mvcc_durability::DurabilityConfig;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-ckptdrv-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn driver_cuts_checkpoints_in_the_background() {
        let dir = temp_dir("bg");
        let engine = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 4,
                durability: DurabilityConfig::buffered(&dir),
                ..EngineConfig::default()
            },
        ));
        let driver = CheckpointDriver::start(Arc::clone(&engine), Duration::from_millis(1));
        for i in 0..8u32 {
            let mut s = engine.begin();
            if s.write(EntityId(0), Bytes::from(format!("{i}"))).is_ok() {
                let _ = s.commit();
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.metrics().snapshot().checkpoints == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        driver.stop();
        let snap = engine.metrics().snapshot();
        assert!(snap.checkpoints > 0, "driver never checkpointed");
        assert!(
            mvcc_durability::latest_checkpoint(&dir).unwrap().is_some(),
            "no checkpoint file on disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "durability on")]
    fn driver_refuses_engines_without_durability() {
        let engine = Arc::new(Engine::new(CertifierKind::Sgt, EngineConfig::default()));
        let _ = CheckpointDriver::start(engine, Duration::from_millis(1));
    }
}
