//! The telemetry overhead guard (experiment E17's budget): per-stage
//! tracing must not cost the hot path more than 5% of throughput.
//!
//! The differential runs the E13 workload shape (uncontended, batched
//! admission — the configuration where admission itself is the
//! serialization point, i.e. where probe overhead would show first)
//! telemetry-off and telemetry-on interleaved and compares the
//! *second-best-of-N* throughput of each mode.  The noise defenses are
//! load-bearing on a timeshared single-CPU runner: the workload is
//! single-threaded (multi-threaded throughput on one CPU is a scheduler
//! lottery that swings individual runs 2-4×), each mode is scored near
//! its max over N short runs, since external interference only ever
//! slows a run down — a high order statistic approximates uncontended
//! speed where a mean or per-pair ratio does not — and the *second*
//! best is used so one freak descheduling-free outlier in either mode
//! cannot decide the verdict alone.
//!
//! The budget holds by construction, not luck: with telemetry off the
//! stage probes never read a clock (an `Option` check each), and with it
//! on, the high-frequency batch probes are sampled 1-in-32 per thread, so
//! the true overhead sits well under the 5% gate.
//!
//! A second guard applies the same harness to the continuous timeline
//! recorder (100 ms cadence) — sampling must also stay within 5% of off.

use mvcc_engine::load::{run_closed_loop_instrumented, run_closed_loop_monitored};
use mvcc_engine::{AdmissionMode, CertifierKind, DurabilityConfig, HealthConfig, TelemetryMode};
use mvcc_workload::LoadProfile;
use std::time::Duration;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "throughput differentials are only meaningful in release builds"
)]
fn telemetry_on_stays_within_five_percent_of_telemetry_off() {
    let profile = LoadProfile {
        threads: 1,
        shards: 4,
        ops: 30_000,
        zipf_theta: 0.0,
        seed: 0x0e17,
        ..LoadProfile::default()
    };
    let throughput = |telemetry: TelemetryMode| {
        let report = run_closed_loop_instrumented(
            CertifierKind::Sgt,
            &profile,
            false,
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            telemetry,
        );
        assert!(report.metrics.committed > 0);
        report.throughput_tps()
    };
    // One warm-up pair outside the measurement: first runs pay one-time
    // costs (page faults, allocator warm-up) that would bias round 1.
    let _ = throughput(TelemetryMode::Off);
    let _ = throughput(TelemetryMode::On);
    // A bounded retry keeps the gate honest without making it flaky:
    // the true overhead sits near 2%, so a clean measurement passes with
    // margin, while a real regression past the budget fails every
    // attempt — only ambient-load noise (which is uncorrelated across
    // attempts) needs the extra tries.
    const ROUNDS: usize = 12;
    const ATTEMPTS: usize = 3;
    let mut last = String::new();
    for attempt in 1..=ATTEMPTS {
        let mut offs = Vec::with_capacity(ROUNDS);
        let mut ons = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            offs.push(throughput(TelemetryMode::Off));
            ons.push(throughput(TelemetryMode::On));
        }
        let second_best = |samples: &[f64]| {
            let mut sorted = samples.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted[sorted.len() - 2]
        };
        let off = second_best(&offs);
        let on = second_best(&ons);
        let ratio = on / off;
        if ratio >= 0.95 {
            return;
        }
        last = format!(
            "attempt {attempt}: second-best-of-{ROUNDS} ratio {ratio:.3} \
             (on {on:.0} / off {off:.0} txn/s; off rounds: {offs:?}; on rounds: {ons:?})"
        );
        eprintln!("overhead guard below gate, retrying — {last}");
    }
    panic!(
        "telemetry-on throughput fell below 95% of telemetry-off in all \
         {ATTEMPTS} attempts; last: {last}"
    );
}

/// The timeline recorder's budget, same harness and same 5% gate: a
/// 100 ms-cadence health monitor On vs. Off on the E13 workload.  The
/// budget holds by construction — the sampler reads lock-free counters
/// on its own thread ten times a second; the only shared write is the
/// ring push, which no worker thread ever touches.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "throughput differentials are only meaningful in release builds"
)]
fn timeline_recorder_stays_within_five_percent_of_off() {
    let profile = LoadProfile {
        threads: 1,
        shards: 4,
        ops: 30_000,
        zipf_theta: 0.0,
        seed: 0x0e19,
        ..LoadProfile::default()
    };
    let throughput = |monitor: bool| {
        let report = run_closed_loop_monitored(
            CertifierKind::Sgt,
            &profile,
            false,
            None,
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::Off,
            false,
            monitor.then(|| HealthConfig {
                interval: Duration::from_millis(100),
                ..HealthConfig::default()
            }),
        );
        assert!(report.metrics.committed > 0);
        if monitor {
            assert!(!report.timeline.is_empty(), "monitor recorded nothing");
        }
        report.throughput_tps()
    };
    let _ = throughput(false);
    let _ = throughput(true);
    const ROUNDS: usize = 12;
    const ATTEMPTS: usize = 3;
    let mut last = String::new();
    for attempt in 1..=ATTEMPTS {
        let mut offs = Vec::with_capacity(ROUNDS);
        let mut ons = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            offs.push(throughput(false));
            ons.push(throughput(true));
        }
        let second_best = |samples: &[f64]| {
            let mut sorted = samples.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            sorted[sorted.len() - 2]
        };
        let off = second_best(&offs);
        let on = second_best(&ons);
        let ratio = on / off;
        if ratio >= 0.95 {
            return;
        }
        last = format!(
            "attempt {attempt}: second-best-of-{ROUNDS} ratio {ratio:.3} \
             (on {on:.0} / off {off:.0} txn/s; off rounds: {offs:?}; on rounds: {ons:?})"
        );
        eprintln!("timeline overhead guard below gate, retrying — {last}");
    }
    panic!(
        "monitor-on throughput fell below 95% of monitor-off in all \
         {ATTEMPTS} attempts; last: {last}"
    );
}
