//! The tail-exemplar attribution gate (experiment E18's acceptance):
//! on the E13 workload shape (4 threads, batched admission, buffered
//! durability so the WAL stages participate), every certifier's traced
//! run must retain tail exemplars, and at least 95% of the captured
//! outliers must name a dominant stage — an exemplar whose span tree
//! cannot say *where* the time went is a report that explains nothing.
//!
//! The watchdog rides along: the same runs double as the online
//! classification check under plain load (the chaos soaks cover the
//! failover story), with the zero-false-alarm assertion every
//! watchdog-enabled run carries.

use mvcc_engine::load::run_closed_loop_traced;
use mvcc_engine::{AdmissionMode, CertifierKind, DurabilityConfig, TelemetryMode};
use mvcc_workload::LoadProfile;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "tail capture needs release-build traffic volumes to be meaningful"
)]
fn every_certifier_attributes_at_least_95_percent_of_tail_exemplars() {
    let profile = LoadProfile {
        threads: 4,
        shards: 4,
        ops: 20_000,
        zipf_theta: 0.0,
        seed: 0x0e13,
        ..LoadProfile::default()
    };
    for kind in CertifierKind::all() {
        let dir = std::env::temp_dir().join(format!(
            "mvcc-exemplar-gate-{}-{}",
            std::process::id(),
            kind.name()
        ));
        let report = run_closed_loop_traced(
            kind,
            &profile,
            true,
            Some(512),
            AdmissionMode::Batched,
            DurabilityConfig::buffered(&dir),
            TelemetryMode::On,
            true,
        );
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            !report.exemplars.is_empty(),
            "{kind}: a traced release run must capture tail exemplars"
        );
        let attribution = report.exemplar_attribution();
        assert!(
            attribution >= 0.95,
            "{kind}: only {:.0}% of {} exemplars name a dominant stage",
            attribution * 100.0,
            report.exemplars.len()
        );
        // Slowest-first is the reservoir's contract — the report's
        // "worst offender" really is the worst the run saw.
        for pair in report.exemplars.windows(2) {
            assert!(pair[0].total_us >= pair[1].total_us, "{kind}: not sorted");
        }
        let watchdog = report.watchdog.expect("watchdog was on");
        if kind != CertifierKind::Mvto {
            // MVTO's class (MVSR) is NP-complete and only soundly
            // checkable on small complete histories — at release traffic
            // volumes with a ring history every sample is (correctly)
            // skipped; the failover chaos soak covers MVTO's online
            // verification at checkable sizes.
            assert!(
                watchdog.windows >= 1,
                "{kind}: the watchdog never classified a window"
            );
        }
        assert_eq!(
            watchdog.violations, 0,
            "{kind}: the watchdog false-alarmed under plain load"
        );
    }
}
