//! Theorem 5: membership in any maximal OLS subset of MVSR is NP-hard.
//!
//! The construction maps a polygraph `P` (assumptions (b), (c)) to a single
//! schedule `s` whose read-froms are *forced* — every serializing version
//! function must assign `R_i(a) ← a_0`, `R_j(b) ← b_i` and `R_j(b') ← b'_i`
//! — so that by Corollary 1 the schedule is accepted by **every** maximal
//! multiversion scheduler when it is MVSR, and by none when it is not.  The
//! schedule is MVSR iff `P` is acyclic, so an efficient maximal scheduler
//! would decide polygraph acyclicity.
//!
//! For each choice `b = (j, k, i)` with mandatory arc `a = (i, j)` the
//! segment
//!
//! ```text
//! R_i(a) W_j(a)  W_i(b) R_j(b) W_k(b)  W_k(b') W_i(b') R_j(b')
//! ```
//!
//! is appended (fresh entities per choice); bare arcs contribute only their
//! `R_i(a) W_j(a)` part, as in [`crate::theorem4`].

use mvcc_core::{EntityId, Schedule, Step, TxId};
use mvcc_graph::Polygraph;
use std::collections::BTreeSet;

/// Runs the Theorem 5 construction, returning the schedule with forced
/// read-froms.
pub fn theorem5_schedule(polygraph: &Polygraph) -> Schedule {
    assert!(
        polygraph.first_branches_acyclic(),
        "Theorem 5 uses polygraphs with acyclic first branches"
    );
    assert!(
        polygraph.base_acyclic(),
        "Theorem 5 uses polygraphs with acyclic mandatory arcs"
    );
    let tx = |node: mvcc_graph::NodeId| TxId(node.0 + 1);
    let mut steps: Vec<Step> = Vec::new();
    let mut next_entity = 0u32;
    let mut fresh = || {
        let e = EntityId(next_entity);
        next_entity += 1;
        e
    };

    for choice in polygraph.choices() {
        let (j, k, i) = (tx(choice.j), tx(choice.k), tx(choice.i));
        let ea = fresh();
        let eb = fresh();
        let ebp = fresh();
        // R_i(a) W_j(a): forces R_i(a) <- a_0, hence i before j.
        steps.push(Step::read(i, ea));
        steps.push(Step::write(j, ea));
        // W_i(b) R_j(b) W_k(b): R_j(b) can only be served b_i or b_0; b_0 is
        // excluded by i < j, so k may not fall between i and j.
        steps.push(Step::write(i, eb));
        steps.push(Step::read(j, eb));
        steps.push(Step::write(k, eb));
        // W_k(b') W_i(b') R_j(b'): R_j(b') could be served b'_k, but that
        // would require k between i and j, contradicting the previous
        // segment; so it too is forced to b'_i.
        steps.push(Step::write(k, ebp));
        steps.push(Step::write(i, ebp));
        steps.push(Step::read(j, ebp));
    }

    let with_choice: BTreeSet<_> = polygraph
        .choices()
        .iter()
        .map(|c| c.mandatory_arc())
        .collect();
    for (from, to) in polygraph.arcs() {
        if with_choice.contains(&(from, to)) {
            continue;
        }
        let ea = fresh();
        steps.push(Step::read(tx(from), ea));
        steps.push(Step::write(tx(to), ea));
    }

    Schedule::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificates::forced_read_froms;
    use crate::sat::{CnfFormula, Literal};
    use crate::sat_to_polygraph::sat_to_polygraph;
    use mvcc_classify::is_mvsr;
    use mvcc_graph::poly_acyclic::is_acyclic_polygraph;
    use mvcc_graph::NodeId;

    fn acyclic_polygraph() -> Polygraph {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(NodeId(0), NodeId(1), NodeId(2));
        p
    }

    fn cyclic_polygraph() -> Polygraph {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![Literal::pos(0)]);
        f.add_clause(vec![Literal::neg(0)]);
        sat_to_polygraph(&f).polygraph
    }

    #[test]
    fn acyclic_polygraph_gives_an_mvsr_schedule() {
        let p = acyclic_polygraph();
        assert!(is_acyclic_polygraph(&p));
        let s = theorem5_schedule(&p);
        assert!(is_mvsr(&s));
    }

    #[test]
    fn cyclic_polygraph_gives_a_non_mvsr_schedule() {
        let p = cyclic_polygraph();
        assert!(!is_acyclic_polygraph(&p));
        let s = theorem5_schedule(&p);
        assert!(!is_mvsr(&s));
    }

    #[test]
    fn read_froms_are_forced_when_mvsr() {
        // Corollary 1's hypothesis: the serializing version function of the
        // schedule is uniquely determined.
        let p = acyclic_polygraph();
        let s = theorem5_schedule(&p);
        assert!(forced_read_froms(&s).is_some());
    }

    #[test]
    fn forced_read_froms_point_at_the_choice_transactions() {
        use mvcc_core::VersionSource;
        let p = acyclic_polygraph();
        let s = theorem5_schedule(&p);
        let forced = forced_read_froms(&s).unwrap();
        // Choice (j=0, k=1, i=2) maps to transactions j=T1, k=T2, i=T3.
        // R_i(a) at position 0 reads the initial version; R_j(b) at position
        // 3 and R_j(b') at position 7 read T3's versions.
        assert_eq!(forced.get(&0), Some(&VersionSource::Initial));
        assert_eq!(forced.get(&3), Some(&VersionSource::Tx(TxId(3))));
        assert_eq!(forced.get(&7), Some(&VersionSource::Tx(TxId(3))));
    }

    #[test]
    fn equivalence_on_pseudorandom_polygraphs() {
        let mut seed = 0x77777777u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut both = [0usize; 2];
        for _ in 0..40 {
            let base = 4 + (next() % 2) as usize;
            let mut p = Polygraph::with_nodes(base);
            for a in 0..base {
                for b in (a + 1)..base {
                    if next() % 3 == 0 {
                        p.add_arc(NodeId(b as u32), NodeId(a as u32));
                    }
                }
            }
            for _ in 0..2 {
                let j = (next() % base as u64) as u32;
                let i = (next() % base as u64) as u32;
                let k = (next() % base as u64) as u32;
                if i == j || j == k || i == k {
                    continue;
                }
                p.add_choice(NodeId(j), NodeId(k), NodeId(i));
            }
            if !p.base_acyclic() || !p.first_branches_acyclic() || p.choice_count() == 0 {
                continue;
            }
            let acyclic = is_acyclic_polygraph(&p);
            let s = theorem5_schedule(&p);
            assert_eq!(is_mvsr(&s), acyclic, "Theorem 5 equivalence broke on {p}");
            both[acyclic as usize] += 1;
        }
        assert!(both[1] > 0, "corpus never produced an acyclic case");
    }
}
