//! Reduction from CNF satisfiability to polygraph acyclicity.
//!
//! The paper relies on the reduction of [Papadimitriou 1979], which produces
//! polygraphs with three structural properties that the proofs of Theorems
//! 4–6 use:
//!
//! * **(b)** the first branches `(j, k)` of the choices form no cycle,
//! * **(c)** the mandatory arcs `(N, A)` form no cycle, and
//! * (for Theorem 6) the choices are **node-disjoint** — no node appears in
//!   two choices.
//!
//! This module implements a reduction with the same properties (documented
//! below and verified by property tests against the DPLL solver); it is a
//! streamlined variant of the original construction.
//!
//! ## Construction
//!
//! For every variable `x` we create a *variable choice* `Vx = (j, k, i)` on
//! three fresh nodes (mandatory arc `(i, j)`): selecting the first branch
//! `(j, k)` means `x = true`, selecting `(k, i)` means `x = false`.
//!
//! For every occurrence of a literal in a clause we create an *occurrence
//! choice* `Oo = (j', k', i')` on three fresh nodes: first branch `(j', k')`
//! means "this occurrence is asserted true".  Consistency arcs tie an
//! occurrence to its variable so that asserting the occurrence true while
//! the variable has the opposite value closes a 4-cycle:
//!
//! * positive occurrence of `x`: arcs `(k', k)` and `(i, j')` — cycle
//!   `j' → k' → k → i → j'` iff the occurrence is asserted true **and**
//!   `x = false`;
//! * negative occurrence: arcs `(k', j)` and `(k, j')` — cycle
//!   `j' → k' → j → k → j'` iff the occurrence is asserted true **and**
//!   `x = true`.
//!
//! Finally, for every clause the "asserted false" branches of its
//! occurrences are chained into a cycle with connector arcs
//! `(i'_t, k'_{t+1 (mod m)})`: if *every* occurrence of the clause is
//! asserted false, the selected arcs `(k'_t, i'_t)` close the cycle.
//!
//! The formula is satisfiable iff the polygraph is acyclic: a satisfying
//! assignment yields an acyclic selection (assert occurrences true exactly
//! when their literal is true), and conversely any acyclic selection must be
//! consistent (else a consistency cycle) and must satisfy every clause (else
//! a clause cycle).

use crate::sat::CnfFormula;
use mvcc_graph::{NodeId, Polygraph};

/// Book-keeping of the reduction: which choice belongs to which variable or
/// literal occurrence.
#[derive(Debug, Clone)]
pub struct SatPolygraph {
    /// The produced polygraph.
    pub polygraph: Polygraph,
    /// Choice index of each variable's choice.
    pub variable_choice: Vec<usize>,
    /// Choice index of each literal occurrence, indexed `[clause][literal]`.
    pub occurrence_choice: Vec<Vec<usize>>,
}

impl SatPolygraph {
    /// Decodes a branch selection of the polygraph into a variable
    /// assignment (`selection[variable_choice[v]]` = first branch = true).
    pub fn decode_assignment(&self, selection: &[bool]) -> Vec<bool> {
        self.variable_choice.iter().map(|&c| selection[c]).collect()
    }
}

/// Runs the reduction on `formula`.
pub fn sat_to_polygraph(formula: &CnfFormula) -> SatPolygraph {
    let mut p = Polygraph::with_nodes(0);
    let mut variable_choice = Vec::with_capacity(formula.num_vars);
    let mut variable_nodes: Vec<(NodeId, NodeId, NodeId)> = Vec::with_capacity(formula.num_vars);

    // Variable choices.
    for v in 0..formula.num_vars {
        let j = p.add_node(format!("x{v}.j"));
        let k = p.add_node(format!("x{v}.k"));
        let i = p.add_node(format!("x{v}.i"));
        variable_choice.push(p.choice_count());
        p.add_choice(j, k, i);
        variable_nodes.push((j, k, i));
    }

    // Occurrence choices, consistency arcs and clause cycles.
    let mut occurrence_choice = Vec::with_capacity(formula.clauses.len());
    for (c_idx, clause) in formula.clauses.iter().enumerate() {
        let mut occ_nodes: Vec<(NodeId, NodeId, NodeId)> = Vec::with_capacity(clause.len());
        let mut occ_choices = Vec::with_capacity(clause.len());
        for (l_idx, lit) in clause.iter().enumerate() {
            let j = p.add_node(format!("c{c_idx}l{l_idx}.j"));
            let k = p.add_node(format!("c{c_idx}l{l_idx}.k"));
            let i = p.add_node(format!("c{c_idx}l{l_idx}.i"));
            occ_choices.push(p.choice_count());
            p.add_choice(j, k, i);
            occ_nodes.push((j, k, i));

            let (vj, vk, vi) = variable_nodes[lit.var];
            if lit.positive {
                // Forbid: occurrence true (j' -> k') while x = false (k -> i).
                p.add_arc(k, vk); // k' -> k
                p.add_arc(vi, j); // i  -> j'
            } else {
                // Forbid: occurrence true while x = true (j -> k).
                p.add_arc(k, vj); // k' -> j
                p.add_arc(vk, j); // k  -> j'
            }
        }
        // Clause cycle over the "asserted false" branches (k' -> i').
        let m = occ_nodes.len();
        for t in 0..m {
            let (_, _, i_t) = occ_nodes[t];
            let (_, k_next, _) = occ_nodes[(t + 1) % m];
            p.add_arc(i_t, k_next);
        }
        occurrence_choice.push(occ_choices);
    }

    SatPolygraph {
        polygraph: p,
        variable_choice,
        occurrence_choice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::Literal;
    use mvcc_graph::poly_acyclic::{brute_force_acyclic, solve_polygraph};
    use mvcc_graph::topo::is_acyclic;

    fn formula(num_vars: usize, clauses: &[&[i64]]) -> CnfFormula {
        // Positive literal v+1, negative literal -(v+1).
        let mut f = CnfFormula::new(num_vars);
        for c in clauses {
            f.add_clause(
                c.iter()
                    .map(|&l| {
                        if l > 0 {
                            Literal::pos((l - 1) as usize)
                        } else {
                            Literal::neg((-l - 1) as usize)
                        }
                    })
                    .collect(),
            );
        }
        f
    }

    #[test]
    fn produced_polygraph_has_the_structural_properties() {
        let f = formula(3, &[&[1, 2], &[-1, -3], &[2, 3]]);
        let sp = sat_to_polygraph(&f);
        assert!(sp.polygraph.choices_node_disjoint(), "Theorem 6 property");
        assert!(sp.polygraph.first_branches_acyclic(), "assumption (b)");
        assert!(sp.polygraph.base_acyclic(), "assumption (c)");
        // One choice per variable plus one per literal occurrence.
        assert_eq!(
            sp.polygraph.choice_count(),
            f.num_vars + f.num_literal_occurrences()
        );
    }

    #[test]
    fn satisfiable_formula_gives_acyclic_polygraph_with_decodable_assignment() {
        let f = formula(2, &[&[1, 2], &[-1, -2]]);
        let sp = sat_to_polygraph(&f);
        let sol = solve_polygraph(&sp.polygraph).expect("acyclic");
        let assignment = sp.decode_assignment(&sol.selection);
        assert!(
            f.eval(&assignment),
            "decoded assignment must satisfy the formula"
        );
    }

    #[test]
    fn unsatisfiable_formula_gives_cyclic_polygraph() {
        let f = formula(1, &[&[1, 1], &[-1, -1]]);
        assert!(f.satisfiable_dpll().is_none());
        let sp = sat_to_polygraph(&f);
        assert!(solve_polygraph(&sp.polygraph).is_none());
    }

    #[test]
    fn consistent_selection_from_satisfying_assignment_is_acyclic() {
        let f = formula(3, &[&[1, 2, 3], &[-1, -2], &[2, 3]]);
        let assignment = f.satisfiable_dpll().expect("satisfiable");
        let sp = sat_to_polygraph(&f);
        // Build the selection by hand: variable choices follow the
        // assignment, occurrence choices are asserted true iff their literal
        // is true.
        let mut selection = vec![false; sp.polygraph.choice_count()];
        for (v, &c) in sp.variable_choice.iter().enumerate() {
            selection[c] = assignment[v];
        }
        for (c_idx, clause) in f.clauses.iter().enumerate() {
            for (l_idx, lit) in clause.iter().enumerate() {
                selection[sp.occurrence_choice[c_idx][l_idx]] = lit.eval(&assignment);
            }
        }
        let g = sp.polygraph.compatible_graph(&selection);
        assert!(
            is_acyclic(&g),
            "hand-built consistent selection must be acyclic"
        );
    }

    #[test]
    fn reduction_agrees_with_dpll_on_pseudorandom_formulas() {
        let mut seed = 0xabcdef12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut sat_seen = 0;
        let mut unsat_seen = 0;
        for _ in 0..60 {
            let num_vars = 1 + (next() % 3) as usize;
            let num_clauses = 1 + (next() % 4) as usize;
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                f.add_clause(
                    (0..len)
                        .map(|_| Literal {
                            var: (next() % num_vars as u64) as usize,
                            positive: next() % 2 == 0,
                        })
                        .collect(),
                );
            }
            let sat = f.satisfiable_dpll().is_some();
            let sp = sat_to_polygraph(&f);
            let acyclic = solve_polygraph(&sp.polygraph).is_some();
            assert_eq!(sat, acyclic, "disagreement on {f}");
            if sat {
                sat_seen += 1;
            } else {
                unsat_seen += 1;
            }
        }
        assert!(sat_seen > 0 && unsat_seen > 0);
    }

    #[test]
    fn backtracking_and_brute_force_agree_on_reduction_outputs() {
        // The reduction outputs are the polygraphs the benches exercise;
        // make sure the two solvers agree on them (choice counts are small
        // enough for brute force here).
        let f = formula(2, &[&[1, 2], &[-1, -2], &[1, -2]]);
        let sp = sat_to_polygraph(&f);
        assert_eq!(
            brute_force_acyclic(&sp.polygraph).is_some(),
            solve_polygraph(&sp.polygraph).is_some()
        );
    }

    #[test]
    fn normalized_reduction_satisfies_theorem4_assumption_a() {
        let f = formula(2, &[&[1, -2]]);
        let sp = sat_to_polygraph(&f);
        assert!(
            !sp.polygraph.every_arc_has_choice(),
            "consistency arcs have no choices"
        );
        let normalized = sp.polygraph.normalized();
        assert!(normalized.satisfies_theorem4_assumptions());
        // Normalisation preserves acyclicity.
        assert_eq!(
            solve_polygraph(&normalized).is_some(),
            solve_polygraph(&sp.polygraph).is_some()
        );
    }
}
