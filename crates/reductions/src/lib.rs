//! # mvcc-reductions
//!
//! The NP-completeness machinery of Sections 4 and 5 of the paper, in
//! executable form:
//!
//! * [`sat`] — CNF formulas with a brute-force solver and a small DPLL
//!   solver (the starting point of every hardness proof);
//! * [`sat_to_polygraph`](mod@sat_to_polygraph) — a verified reduction from satisfiability to
//!   polygraph acyclicity with the structural properties the paper's proofs
//!   rely on (node-disjoint choices, acyclic first branches, acyclic
//!   mandatory arcs);
//! * [`ols`] — the definition-level checker for *on-line schedulability*
//!   (OLS) of a set of schedules;
//! * [`theorem4`] — the construction mapping a polygraph `P` to a pair of
//!   MVCSR schedules `{s1, s2}` that is OLS iff `P` is acyclic
//!   (NP-completeness of OLS);
//! * [`theorem5`] — the construction mapping `P` to a single schedule with
//!   forced read-froms that is MVSR (and hence accepted by every maximal
//!   multiversion scheduler) iff `P` is acyclic (NP-hardness of every
//!   maximal OLS subset of MVSR);
//! * [`theorem6`] — the adaptive construction that drives a concrete
//!   scheduler and produces an MVCSR schedule the scheduler accepts iff `P`
//!   is acyclic (no polynomial maximal MVCSR scheduler unless P = NP);
//! * [`certificates`] — verification of the succinct certificates used in
//!   the NP-membership arguments (Lemma 1 / Corollary 1 helpers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificates;
pub mod ols;
pub mod sat;
pub mod sat_to_polygraph;
pub mod theorem4;
pub mod theorem5;
pub mod theorem6;

pub use ols::{is_ols, ols_violation, OlsViolation};
pub use sat::{CnfFormula, Literal};
pub use sat_to_polygraph::sat_to_polygraph;
pub use theorem4::theorem4_schedules;
pub use theorem5::theorem5_schedule;
pub use theorem6::{adaptive_schedule, AdaptiveOutcome};
