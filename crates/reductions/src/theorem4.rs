//! Theorem 4: testing OLS is NP-complete, even for pairs of MVCSR schedules.
//!
//! The reduction maps a polygraph `P = (N, A, C)` satisfying assumptions
//! (b) and (c) (the first branches of the choices are acyclic; the mandatory
//! arcs are acyclic) to a pair of schedules `{s1, s2}` over one transaction
//! per node such that `{s1, s2}` is OLS iff `P` is acyclic.
//!
//! For each choice `b = (j, k, i)` (with its mandatory arc `a = (i, j)`)
//! three fresh entities `a`, `b`, `b'` are used and the following segments
//! added:
//!
//! * (i) `W_k(b) W_i(b) R_j(b)` — to **both** schedules (this forms the
//!   common prefix `p`);
//! * (ii₁) `W_i(b') W_k(b') R_j(b')` to `s1`, (ii₂) `W_i(b') R_j(b') W_k(b')`
//!   to `s2`;
//! * (iii₁) `R_i(a) W_j(a)` to `s1`, (iii₂) `W_j(a) R_i(a)` to `s2`.
//!
//! `s1 = p·q1·r1` and `s2 = p·q2·r2`.
//!
//! The paper assumes in addition that every arc has a corresponding choice
//! (assumption (a)), obtained WLOG by adding a dummy node and choice per
//! bare arc.  We avoid the blow-up: a bare arc `(i, j)` contributes only the
//! (iii) segments (`R_i(a) W_j(a)` to `s1`, reversed to `s2`) on a fresh
//! entity, which enforces `i < j` in every serialization of `s1` — the only
//! place the proof uses arc constraints.  This keeps the instances small
//! enough for the exact OLS checker while preserving the equivalence, which
//! the tests verify against the polygraph solver.
//!
//! `MVCG(s1)` consists of the arcs `A` (acyclic by (c)) and `MVCG(s2)` of
//! the first branches of `C` (acyclic by (b)), so both schedules are MVCSR;
//! the shared read `R_j(b)` of the common prefix can only be given `b_i`
//! consistently across both schedules, which encodes the choices of `P`.

use mvcc_core::{EntityId, Schedule, Step, TxId};
use mvcc_graph::Polygraph;
use std::collections::BTreeSet;

/// The output of the Theorem 4 construction.
#[derive(Debug, Clone)]
pub struct Theorem4Instance {
    /// The first schedule (`p·q1·r1`).
    pub s1: Schedule,
    /// The second schedule (`p·q2·r2`).
    pub s2: Schedule,
    /// Length of the common prefix `p`.
    pub prefix_len: usize,
}

/// Runs the Theorem 4 construction on `polygraph`.
///
/// Panics unless assumptions (b) and (c) hold.
pub fn theorem4_schedules(polygraph: &Polygraph) -> Theorem4Instance {
    assert!(
        polygraph.first_branches_acyclic(),
        "Theorem 4 requires assumption (b): acyclic first branches"
    );
    assert!(
        polygraph.base_acyclic(),
        "Theorem 4 requires assumption (c): acyclic mandatory arcs"
    );

    let tx = |node: mvcc_graph::NodeId| TxId(node.0 + 1);

    let mut prefix: Vec<Step> = Vec::new();
    let mut q1: Vec<Step> = Vec::new();
    let mut q2: Vec<Step> = Vec::new();
    let mut r1: Vec<Step> = Vec::new();
    let mut r2: Vec<Step> = Vec::new();
    let mut next_entity = 0u32;
    let mut fresh = || {
        let e = EntityId(next_entity);
        next_entity += 1;
        e
    };

    for choice in polygraph.choices() {
        let (j, k, i) = (tx(choice.j), tx(choice.k), tx(choice.i));
        let ea = fresh(); // the arc entity "a"
        let eb = fresh(); // the choice entity "b"
        let ebp = fresh(); // the auxiliary entity "b'"

        // (i) W_k(b) W_i(b) R_j(b) -> common prefix.
        prefix.push(Step::write(k, eb));
        prefix.push(Step::write(i, eb));
        prefix.push(Step::read(j, eb));

        // (ii1) W_i(b') W_k(b') R_j(b') in s1.
        q1.push(Step::write(i, ebp));
        q1.push(Step::write(k, ebp));
        q1.push(Step::read(j, ebp));
        // (ii2) W_i(b') R_j(b') W_k(b') in s2.
        q2.push(Step::write(i, ebp));
        q2.push(Step::read(j, ebp));
        q2.push(Step::write(k, ebp));

        // (iii1) R_i(a) W_j(a) in s1; (iii2) W_j(a) R_i(a) in s2.
        r1.push(Step::read(i, ea));
        r1.push(Step::write(j, ea));
        r2.push(Step::write(j, ea));
        r2.push(Step::read(i, ea));
    }

    // Bare arcs (without a corresponding choice) contribute only the (iii)
    // segments.
    let with_choice: BTreeSet<_> = polygraph
        .choices()
        .iter()
        .map(|c| c.mandatory_arc())
        .collect();
    for (from, to) in polygraph.arcs() {
        if with_choice.contains(&(from, to)) {
            continue;
        }
        let (i, j) = (tx(from), tx(to));
        let ea = fresh();
        r1.push(Step::read(i, ea));
        r1.push(Step::write(j, ea));
        r2.push(Step::write(j, ea));
        r2.push(Step::read(i, ea));
    }

    let prefix_len = prefix.len();
    let mut steps1 = prefix.clone();
    steps1.extend(q1);
    steps1.extend(r1);
    let mut steps2 = prefix;
    steps2.extend(q2);
    steps2.extend(r2);

    Theorem4Instance {
        s1: Schedule::from_steps(steps1),
        s2: Schedule::from_steps(steps2),
        prefix_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols::is_ols;
    use crate::sat::{CnfFormula, Literal};
    use crate::sat_to_polygraph::sat_to_polygraph;
    use mvcc_classify::is_mvcsr;
    use mvcc_graph::poly_acyclic::is_acyclic_polygraph;
    use mvcc_graph::NodeId;

    fn small_acyclic_polygraph() -> Polygraph {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(NodeId(0), NodeId(1), NodeId(2));
        p
    }

    /// A handcrafted six-node cyclic polygraph satisfying assumptions (b)
    /// and (c): each choice's first branch is killed by a bare back-arc, and
    /// the two remaining second branches close a cycle through two more bare
    /// arcs — so every selection is cyclic, yet the mandatory arcs and the
    /// first branches are acyclic and the choices are node-disjoint.
    fn small_cyclic_polygraph() -> Polygraph {
        let mut p = Polygraph::with_nodes(6);
        p.add_choice(NodeId(0), NodeId(1), NodeId(2)); // branches (0,1)/(1,2), arc (2,0)
        p.add_choice(NodeId(3), NodeId(4), NodeId(5)); // branches (3,4)/(4,5), arc (5,3)
        p.add_arc(NodeId(1), NodeId(0)); // kills branch (0,1)
        p.add_arc(NodeId(4), NodeId(3)); // kills branch (3,4)
        p.add_arc(NodeId(2), NodeId(4)); // with (1,2) and (4,5) and (5,1):
        p.add_arc(NodeId(5), NodeId(1)); //   1 -> 2 -> 4 -> 5 -> 1
        assert!(p.base_acyclic() && p.first_branches_acyclic());
        p
    }

    #[test]
    fn schedules_are_mvcsr_and_share_the_stated_prefix() {
        for p in [small_acyclic_polygraph(), small_cyclic_polygraph()] {
            let inst = theorem4_schedules(&p);
            assert!(is_mvcsr(&inst.s1), "s1 must be MVCSR");
            assert!(is_mvcsr(&inst.s2), "s2 must be MVCSR");
            // The stated prefix p is common; the (ii) segments may extend the
            // literal common prefix by one more step (both start with W_i(b')).
            assert!(inst.s1.common_prefix_len(&inst.s2) >= inst.prefix_len);
            assert_eq!(inst.s1.tx_system(), inst.s2.tx_system());
        }
    }

    #[test]
    fn acyclic_polygraph_gives_an_ols_pair() {
        let p = small_acyclic_polygraph();
        assert!(is_acyclic_polygraph(&p));
        let inst = theorem4_schedules(&p);
        assert!(is_ols(&[inst.s1, inst.s2]));
    }

    #[test]
    fn cyclic_polygraph_gives_a_non_ols_pair() {
        let p = small_cyclic_polygraph();
        assert!(!is_acyclic_polygraph(&p));
        let inst = theorem4_schedules(&p);
        assert!(!is_ols(&[inst.s1, inst.s2]));
    }

    #[test]
    fn reduction_chain_from_sat_agrees_end_to_end_satisfiable() {
        // SAT formula -> polygraph -> schedule pair: OLS iff satisfiable.
        // (The satisfiable leg; the unsatisfiable leg is covered by the
        // expensive `--ignored` test below and, piecewise, by the
        // SAT->polygraph tests plus `cyclic_polygraph_gives_a_non_ols_pair`.)
        let mut formula = CnfFormula::new(1);
        formula.add_clause(vec![Literal::pos(0)]);
        assert!(formula.satisfiable_dpll().is_some());
        let sp = sat_to_polygraph(&formula);
        let inst = theorem4_schedules(&sp.polygraph);
        assert!(is_ols(&[inst.s1, inst.s2]));
    }

    #[test]
    fn reduction_chain_from_sat_agrees_end_to_end_unsatisfiable() {
        // Once ~1 minute of full serialization enumeration; the prefix-first
        // OLS checker settles it in milliseconds.
        let mut formula = CnfFormula::new(1);
        formula.add_clause(vec![Literal::pos(0)]);
        formula.add_clause(vec![Literal::neg(0)]);
        assert!(formula.satisfiable_dpll().is_none());
        let sp = sat_to_polygraph(&formula);
        let inst = theorem4_schedules(&sp.polygraph);
        assert!(!is_ols(&[inst.s1, inst.s2]));
    }

    #[test]
    fn pseudorandom_polygraphs_ols_iff_acyclic() {
        let mut seed = 0x1234567fu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut acyclic_seen = 0;
        let mut cyclic_seen = 0;
        for _ in 0..40 {
            // Random small polygraph keeping assumptions (b) and (c):
            // mandatory arcs only go from higher to lower node ids (a DAG),
            // and every choice's first branch goes "downhill" as well.
            let base = 4 + (next() % 2) as usize;
            let mut p = Polygraph::with_nodes(base);
            for a in 0..base {
                for b in (a + 1)..base {
                    if next() % 3 == 0 {
                        p.add_arc(NodeId(b as u32), NodeId(a as u32));
                    }
                }
            }
            for _ in 0..2 {
                let j = (next() % base as u64) as u32;
                let i = (next() % base as u64) as u32;
                let k = (next() % base as u64) as u32;
                if i == j || j == k || i == k {
                    continue;
                }
                p.add_choice(NodeId(j), NodeId(k), NodeId(i));
            }
            if !p.base_acyclic() || !p.first_branches_acyclic() || p.choice_count() == 0 {
                continue;
            }
            let acyclic = is_acyclic_polygraph(&p);
            let inst = theorem4_schedules(&p);
            assert_eq!(
                is_ols(&[inst.s1, inst.s2]),
                acyclic,
                "Theorem 4 equivalence broke on {p}"
            );
            if acyclic {
                acyclic_seen += 1;
            } else {
                cyclic_seen += 1;
            }
        }
        assert!(acyclic_seen > 0, "corpus never produced an acyclic case");
        let _ = cyclic_seen;
    }
}
