//! NP certificates and the Lemma 1 / Corollary 1 helpers.
//!
//! * Theorem 4's membership argument: "a succinct certificate of on-line
//!   schedulability of `{s1, s2}` consists of two version functions
//!   `V1, V2` and two serial schedules `r1, r2`; `V1` and `V2` must agree on
//!   the longest common prefix" — [`verify_ols_certificate`] checks exactly
//!   that.
//! * Corollary 1: "if the version function of a prefix of an MVSR schedule
//!   is uniquely determined then the prefix is accepted by all maximal
//!   multiversion schedulers" — [`forced_read_froms`] reports the uniquely
//!   determined read-froms (when they are unique), which the Theorem 5 and
//!   Theorem 6 constructions rely on.

use mvcc_classify::serialization::{
    achievable_prefix_restrictions, achievable_prefix_restrictions_bounded,
    has_serialization_extending, serializations_extending,
};
use mvcc_core::equivalence::full_view_equivalent;
use mvcc_core::{Schedule, TxId, VersionFunction, VersionSource};
use std::collections::{BTreeMap, HashMap};

/// A certificate for the on-line schedulability of a pair of schedules.
#[derive(Debug, Clone)]
pub struct OlsCertificate {
    /// Version function for the first schedule.
    pub v1: VersionFunction,
    /// Serial order witnessing serializability of `(s1, v1)`.
    pub r1: Vec<TxId>,
    /// Version function for the second schedule.
    pub v2: VersionFunction,
    /// Serial order witnessing serializability of `(s2, v2)`.
    pub r2: Vec<TxId>,
}

/// Verifies an OLS certificate for the pair `{s1, s2}` exactly as in the
/// NP-membership argument of Theorem 4:
///
/// 1. `(s1, v1)` is view-equivalent to the serial schedule `r1` (and likewise
///    for `s2`), and
/// 2. `v1` and `v2` agree on every read step of the longest common prefix.
pub fn verify_ols_certificate(s1: &Schedule, s2: &Schedule, cert: &OlsCertificate) -> bool {
    let serial1 = Schedule::serial(&s1.tx_system(), &cert.r1);
    let serial2 = Schedule::serial(&s2.tx_system(), &cert.r2);
    if !full_view_equivalent(s1, &cert.v1, &serial1, &VersionFunction::standard(&serial1)) {
        return false;
    }
    if !full_view_equivalent(s2, &cert.v2, &serial2, &VersionFunction::standard(&serial2)) {
        return false;
    }
    let common = s1.common_prefix_len(s2);
    for pos in 0..common {
        if s1.steps()[pos].is_read() && cert.v1.get(pos) != cert.v2.get(pos) {
            return false;
        }
    }
    true
}

/// Produces an OLS certificate for a pair of schedules by exhaustive search,
/// or `None` if the pair is not OLS (used to cross-validate the checker and
/// to print witnesses in the experiment harness).
pub fn find_ols_certificate(s1: &Schedule, s2: &Schedule) -> Option<OlsCertificate> {
    let common = s1.common_prefix_len(s2);
    // Search over achievable prefix *restrictions* instead of pairs of full
    // serializations: two serializations agree on the common prefix iff they
    // extend the same restriction, so it suffices to enumerate one side's
    // restrictions, find one `s2` can extend too (budget-first probing, see
    // `first_shared_restriction`), and materialize a serialization per side.
    let candidates = achievable_prefix_restrictions(s1, common);
    let required = crate::ols::first_shared_restriction(&candidates, &[s2])?;
    let rf1 = serializations_extending(s1, &required, Some(1)).pop()?;
    let rf2 = serializations_extending(s2, &required, Some(1)).pop()?;
    Some(OlsCertificate {
        v1: rf1.to_version_function(s1),
        r1: rf1.order.clone(),
        v2: rf2.to_version_function(s2),
        r2: rf2.order.clone(),
    })
}

/// If every serialization of `s` induces the *same* read-from assignment,
/// returns that assignment (read position ↦ source); returns `None` when the
/// schedule is not MVSR or when two serializations disagree on some read.
///
/// This is the hypothesis of Corollary 1 ("there are no read-from choices"),
/// which the Theorem 5 construction establishes for its output schedules.
pub fn forced_read_froms(s: &Schedule) -> Option<BTreeMap<usize, VersionSource>> {
    // The read-froms are forced iff the achievable restrictions to the whole
    // schedule form a singleton — checked without enumerating the (possibly
    // factorially many) serializations behind them, and stopping as soon as
    // a second restriction turns up.
    let mut all = achievable_prefix_restrictions_bounded(s, s.len(), Some(2)).into_iter();
    let first = all.next()?;
    if all.next().is_some() {
        return None;
    }
    Some(first)
}

/// Lemma 1, as a checkable predicate: a (maximal) scheduler may reject step
/// `h` after accepting the prefix `p` with read-froms `assigned` only if
/// `p·h` has no serializable completion extending `assigned`.  This helper
/// reports whether such a completion of the *offered prefix itself* exists;
/// the Theorem 6 construction uses it to decide which step a maximal
/// scheduler must accept.
pub fn has_serializable_completion(
    prefix_with_step: &Schedule,
    assigned: &BTreeMap<usize, VersionSource>,
) -> bool {
    let required: HashMap<usize, VersionSource> = assigned.iter().map(|(&p, &v)| (p, v)).collect();
    has_serialization_extending(prefix_with_step, &required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::examples::section4_pair;

    #[test]
    fn certificate_found_for_an_ols_pair() {
        let s1 = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let s2 = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        let cert = find_ols_certificate(&s1, &s2).expect("pair is OLS");
        assert!(verify_ols_certificate(&s1, &s2, &cert));
    }

    #[test]
    fn no_certificate_for_the_section4_pair() {
        let (s, s_prime) = section4_pair();
        assert!(find_ols_certificate(&s, &s_prime).is_none());
    }

    #[test]
    fn tampered_certificate_is_rejected() {
        let s1 = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let s2 = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        let mut cert = find_ols_certificate(&s1, &s2).unwrap();
        // Flip the shared read's assignment in one of the version functions
        // (to whichever value it does not currently hold, so the tamper is
        // never a no-op): the two halves now disagree on the common prefix.
        let flipped = match cert.v1.get(1) {
            Some(VersionSource::Initial) => VersionSource::Tx(TxId(1)),
            _ => VersionSource::Initial,
        };
        cert.v1.assign(1, flipped);
        assert!(!verify_ols_certificate(&s1, &s2, &cert));
    }

    #[test]
    fn forced_read_froms_of_a_forced_schedule() {
        // Wa(x) Rb(x) Rb(y) Wb(y): B must read x from A (reading x0 would
        // put B before A, but then the final read of x ... is unconstrained;
        // actually both orders serialize, so the read is NOT forced).
        let free = Schedule::parse("Wa(x) Rb(x)").unwrap();
        assert!(forced_read_froms(&free).is_none());

        // Ra(y) Wb(y) forces A before B, and then Wa(x) Rb(x) pins R_b(x).
        let forced = Schedule::parse("Ra(y) Wa(x) Wb(y) Rb(x)").unwrap();
        let map = forced_read_froms(&forced).expect("unique serialization");
        assert_eq!(map.get(&3), Some(&VersionSource::Tx(TxId(1))));
    }

    #[test]
    fn forced_read_froms_none_for_non_mvsr() {
        let s1 = &mvcc_core::examples::figure1()[0].schedule;
        assert!(forced_read_froms(s1).is_none());
    }

    #[test]
    fn lemma1_predicate() {
        // After accepting Wa(x) Rb(x) with R_b(x) <- A, the continuation
        // exists (serialize A B)...
        let prefix = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let mut assigned = BTreeMap::new();
        assigned.insert(1usize, VersionSource::Tx(TxId(1)));
        assert!(has_serializable_completion(&prefix, &assigned));
        // ...but after also seeing W_b(x) R_a(x) with R_a(x) forced to read
        // B's version AND R_b(x) pinned to A's, no serial order works.
        let longer = Schedule::parse("Wa(x) Rb(x) Wb(x) Ra(x)").unwrap();
        let mut impossible = BTreeMap::new();
        impossible.insert(1usize, VersionSource::Tx(TxId(1)));
        impossible.insert(3usize, VersionSource::Tx(TxId(2)));
        assert!(!has_serializable_completion(&longer, &impossible));
    }
}
