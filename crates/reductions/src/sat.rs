//! CNF satisfiability: the root of the paper's hardness results.
//!
//! The reduction chain of the paper is
//! `SAT → polygraph acyclicity → {OLS, maximal schedulers}`; this module
//! provides the formulas and two exact solvers (brute force and DPLL) used
//! to validate the chain end-to-end in the tests and experiment harness.
//!
//! The paper's source reduction uses *restricted* satisfiability — clauses
//! of two or three literals, each clause all-positive or all-negative —
//! which remains NP-complete; [`CnfFormula::is_restricted`] recognises that
//! fragment and the generators in `mvcc-workload` can be asked to produce
//! it, but the solvers and the polygraph reduction accept arbitrary CNF.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal: variable index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Zero-based variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal of `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal of `var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }

    /// The complementary literal.
    pub fn negated(&self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CnfFormula {
    /// Number of variables (indices `0..num_vars`).
    pub num_vars: usize,
    /// Clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<Literal>>,
}

impl CnfFormula {
    /// Creates a formula with `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause. Panics if a literal mentions an out-of-range variable
    /// or the clause is empty.
    pub fn add_clause(&mut self, clause: Vec<Literal>) {
        assert!(!clause.is_empty(), "empty clause");
        assert!(clause.iter().all(|l| l.var < self.num_vars));
        self.clauses.push(clause);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences.
    pub fn num_literal_occurrences(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// Evaluates the formula under a complete assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// `true` if the formula is in the restricted fragment used by the
    /// paper's source reduction: every clause has two or three literals and
    /// is either all-positive or all-negative.
    pub fn is_restricted(&self) -> bool {
        self.clauses.iter().all(|c| {
            (2..=3).contains(&c.len())
                && (c.iter().all(|l| l.positive) || c.iter().all(|l| !l.positive))
        })
    }

    /// Brute-force satisfiability check (reference implementation).
    pub fn satisfiable_brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars < 24, "brute force is for small formulas");
        for bits in 0..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|i| bits & (1 << i) != 0).collect();
            if self.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// DPLL satisfiability with unit propagation and pure-literal
    /// elimination.
    pub fn satisfiable_dpll(&self) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Evaluate clause status under the partial assignment.
        loop {
            let mut unit: Option<Literal> = None;
            for clause in &self.clauses {
                let mut satisfied = false;
                let mut unassigned: Vec<Literal> = Vec::new();
                for lit in clause {
                    match assignment[lit.var] {
                        Some(v) if v == lit.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => unassigned.push(*lit),
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned.len() {
                    0 => return false, // conflict
                    1 => {
                        unit = Some(unassigned[0]);
                        break;
                    }
                    _ => {}
                }
            }
            match unit {
                Some(lit) => assignment[lit.var] = Some(lit.positive),
                None => break,
            }
        }
        // Pick an unassigned variable occurring in an unsatisfied clause.
        let next = self.clauses.iter().find_map(|clause| {
            let satisfied = clause.iter().any(|l| assignment[l.var] == Some(l.positive));
            if satisfied {
                None
            } else {
                clause.iter().find(|l| assignment[l.var].is_none()).copied()
            }
        });
        let Some(lit) = next else {
            return true; // every clause satisfied
        };
        for value in [lit.positive, !lit.positive] {
            let snapshot = assignment.clone();
            assignment[lit.var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            *assignment = snapshot;
        }
        false
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clauses: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.iter().map(|l| l.to_string()).collect();
                format!("({})", lits.join(" ∨ "))
            })
            .collect();
        write!(f, "{}", clauses.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_formula() -> CnfFormula {
        // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): satisfied by exactly one of them.
        let mut f = CnfFormula::new(2);
        f.add_clause(vec![Literal::pos(0), Literal::pos(1)]);
        f.add_clause(vec![Literal::neg(0), Literal::neg(1)]);
        f
    }

    fn unsat_formula() -> CnfFormula {
        // (x0) ∧ (¬x0) via two 2-literal clauses to stay in the restricted
        // fragment: (x0 ∨ x0) ∧ (¬x0 ∨ ¬x0)
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![Literal::pos(0), Literal::pos(0)]);
        f.add_clause(vec![Literal::neg(0), Literal::neg(0)]);
        f
    }

    #[test]
    fn eval_and_satisfiability() {
        let f = xor_formula();
        assert!(f.eval(&[true, false]));
        assert!(!f.eval(&[true, true]));
        let a = f.satisfiable_brute_force().unwrap();
        assert!(f.eval(&a));
        let d = f.satisfiable_dpll().unwrap();
        assert!(f.eval(&d));
    }

    #[test]
    fn unsat_detected_by_both_solvers() {
        let f = unsat_formula();
        assert!(f.satisfiable_brute_force().is_none());
        assert!(f.satisfiable_dpll().is_none());
    }

    #[test]
    fn restricted_fragment_detection() {
        assert!(xor_formula().is_restricted());
        let mut mixed = CnfFormula::new(2);
        mixed.add_clause(vec![Literal::pos(0), Literal::neg(1)]);
        assert!(!mixed.is_restricted());
        let mut long = CnfFormula::new(4);
        long.add_clause(vec![
            Literal::pos(0),
            Literal::pos(1),
            Literal::pos(2),
            Literal::pos(3),
        ]);
        assert!(!long.is_restricted());
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_pseudorandom_formulas() {
        let mut seed = 0xdeadbeefu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut sat_count = 0;
        let mut unsat_count = 0;
        for _ in 0..200 {
            let num_vars = 2 + (next() % 5) as usize;
            let num_clauses = 1 + (next() % 8) as usize;
            let mut f = CnfFormula::new(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let clause: Vec<Literal> = (0..len)
                    .map(|_| Literal {
                        var: (next() % num_vars as u64) as usize,
                        positive: next() % 2 == 0,
                    })
                    .collect();
                f.add_clause(clause);
            }
            let bf = f.satisfiable_brute_force().is_some();
            let dp = f.satisfiable_dpll().is_some();
            assert_eq!(bf, dp, "formula {f}");
            if bf {
                sat_count += 1;
            } else {
                unsat_count += 1;
            }
        }
        assert!(sat_count > 0 && unsat_count > 0);
    }

    #[test]
    fn display_and_counts() {
        let f = xor_formula();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_literal_occurrences(), 4);
        let text = f.to_string();
        assert!(text.contains("∨"));
        assert!(text.contains("¬x1"));
        assert_eq!(Literal::pos(3).negated(), Literal::neg(3));
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn empty_clause_rejected() {
        CnfFormula::new(1).add_clause(vec![]);
    }
}
