//! On-line schedulability (OLS) of a set of schedules — Section 4.
//!
//! A subset `S` of MVSR is *on-line schedulable* if, for every prefix `p` of
//! a schedule in `S`, there is a version function `V` defined on `p` such
//! that every schedule `p·q` in `S` has a serializing version function
//! extending `V`.  OLS is exactly the property a set of schedules must have
//! to be recognisable by a multiversion scheduler, and Theorem 4 shows that
//! deciding it is NP-complete even for pairs of MVCSR schedules.
//!
//! The checker below is definition-level and exact: for every prefix it
//! intersects the restrictions of the schedules' serializing read-from
//! assignments.  It is exponential (it has to be, unless P = NP) and is
//! meant for the reduction-scale instances used in tests, examples and the
//! experiment harness.

use mvcc_classify::serialization::{
    achievable_prefix_restrictions, has_serialization_extending,
    has_serialization_extending_budgeted, serializations,
};
use mvcc_core::{Schedule, VersionSource};
use std::collections::{BTreeSet, HashMap};

/// Node budget of the first-pass extension probes: feasible candidates are
/// usually confirmed within a handful of search nodes, while refutations may
/// need exhaustive search, so everything inconclusive is deferred.
const PROBE_BUDGET: u64 = 2_000;

/// Returns the first candidate restriction (as a required read-from map)
/// that every schedule in `others` can extend, or `None` when none can.
///
/// Probing is two-pass: a budgeted sweep first (feasible candidates confirm
/// almost immediately), full refutations only for the candidates the sweep
/// left unresolved.  Shared by [`ols_violation`] and
/// [`crate::certificates::find_ols_certificate`].
pub(crate) fn first_shared_restriction(
    candidates: &BTreeSet<std::collections::BTreeMap<usize, VersionSource>>,
    others: &[&Schedule],
) -> Option<HashMap<usize, VersionSource>> {
    let mut unresolved = Vec::new();
    for r in candidates {
        let required: HashMap<usize, VersionSource> = r.iter().map(|(&p, &v)| (p, v)).collect();
        let mut verdict = Some(true);
        for s in others {
            match has_serialization_extending_budgeted(s, &required, PROBE_BUDGET) {
                Some(true) => {}
                Some(false) => {
                    verdict = Some(false);
                    break;
                }
                None => verdict = None,
            }
        }
        match verdict {
            Some(true) => return Some(required),
            Some(false) => {}
            None => unresolved.push(required),
        }
    }
    unresolved.into_iter().find(|required| {
        others
            .iter()
            .all(|s| has_serialization_extending(s, required))
    })
}

/// A witness that a set of schedules is *not* OLS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OlsViolation {
    /// Length of the offending prefix.
    pub prefix_len: usize,
    /// Indices (into the input slice) of the schedules sharing that prefix
    /// whose serializing version functions cannot be reconciled.
    pub schedules: Vec<usize>,
}

/// Checks whether `schedules` is an OLS set, returning a violation witness
/// if it is not.
///
/// A schedule that is not MVSR at all makes the set trivially non-OLS (the
/// full schedule is a prefix of itself with no serializing version
/// function); this matches the definition, which requires `S ⊆ MVSR`.
///
/// The check works prefix-first: for every branch-point prefix it computes
/// each member's achievable read-from *restrictions* to that prefix
/// (`achievable_prefix_restrictions`, which never enumerates whole
/// serializations) and intersects them.  Reduction-scale instances — the
/// Theorem 4 schedules of a SAT-derived polygraph have one transaction per
/// polygraph node — are far beyond full serialization enumeration but well
/// within this search.
pub fn ols_violation(schedules: &[Schedule]) -> Option<OlsViolation> {
    for (idx, s) in schedules.iter().enumerate() {
        if serializations(s, Some(1)).is_empty() {
            return Some(OlsViolation {
                prefix_len: s.len(),
                schedules: vec![idx],
            });
        }
    }

    // Candidate prefixes.  Checking *every* prefix is sound but wasteful:
    // if two prefixes p ⊂ p' have the same member set, a common assignment
    // for p' restricts to one for p, so only the longest prefix of each
    // member set matters.  The longest prefix shared by a group of
    // schedules always has the length of some pairwise longest common
    // prefix, so those lengths (the "branch points") are the only ones we
    // need to examine.
    let mut interesting: BTreeSet<(usize, usize)> = BTreeSet::new(); // (schedule idx, len)
    for (a_idx, a) in schedules.iter().enumerate() {
        for (b_idx, b) in schedules.iter().enumerate() {
            if a_idx == b_idx {
                continue;
            }
            let common = a.common_prefix_len(b);
            if common > 0 {
                interesting.insert((a_idx, common));
            }
        }
    }

    let mut seen_prefixes: BTreeSet<Vec<mvcc_core::Step>> = BTreeSet::new();
    for (a_idx, len) in interesting {
        let s = &schedules[a_idx];
        {
            let prefix_steps = s.steps()[..len].to_vec();
            if !seen_prefixes.insert(prefix_steps.clone()) {
                continue;
            }
            // Schedules having this prefix.
            let members: Vec<usize> = schedules
                .iter()
                .enumerate()
                .filter(|(_, t)| t.len() >= len && t.steps()[..len] == prefix_steps[..])
                .map(|(i, _)| i)
                .collect();
            if members.len() < 2 {
                continue;
            }
            // Intersect the members' achievable restriction sets,
            // asymmetrically: enumerate one member's set, then probe the
            // candidates against the other members with existence queries
            // (far cheaper than enumerating every member's set), stopping at
            // the first restriction everyone can extend.  Probing is
            // two-pass: a budgeted sweep first (feasible candidates confirm
            // almost immediately), full refutations only if nothing
            // confirmed.
            let candidates = achievable_prefix_restrictions(&schedules[members[0]], len);
            let others: Vec<&Schedule> = members[1..].iter().map(|&m| &schedules[m]).collect();
            if first_shared_restriction(&candidates, &others).is_none() {
                return Some(OlsViolation {
                    prefix_len: len,
                    schedules: members,
                });
            }
        }
    }
    None
}

/// `true` iff `schedules` is an OLS set.
pub fn is_ols(schedules: &[Schedule]) -> bool {
    ols_violation(schedules).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_mvsr_sets_are_ols() {
        assert!(is_ols(&[]));
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_ols(&[s]));
    }

    #[test]
    fn a_non_mvsr_member_breaks_ols() {
        let s1 = mvcc_core::examples::figure1()[0].schedule.clone();
        let violation = ols_violation(std::slice::from_ref(&s1)).unwrap();
        assert_eq!(violation.prefix_len, s1.len());
        assert_eq!(violation.schedules, vec![0]);
    }

    #[test]
    fn section4_pair_is_not_ols() {
        // The paper's own witness that MVCSR (even DMVSR) is not OLS.
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let violation = ols_violation(&[s.clone(), s_prime.clone()]).unwrap();
        assert!(violation.prefix_len <= s.common_prefix_len(&s_prime));
        assert_eq!(violation.schedules, vec![0, 1]);
        assert!(!is_ols(&[s, s_prime]));
    }

    #[test]
    fn identical_schedules_are_ols() {
        let (s, _) = mvcc_core::examples::section4_pair();
        assert!(is_ols(&[s.clone(), s.clone()]));
    }

    #[test]
    fn disjoint_transaction_systems_are_ols() {
        let s1 = Schedule::parse("Ra(x) Wa(x)").unwrap();
        let s2 = Schedule::parse("Rb(y) Wb(y)").unwrap();
        assert!(is_ols(&[s1, s2]));
    }

    #[test]
    fn compatible_continuations_are_ols() {
        // Two continuations of the same prefix that can both be serialized
        // with the same choice for the shared read.
        let s1 = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let s2 = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        // s2 extends s1; both serializable as A B with R_B(x) <- A.
        assert!(is_ols(&[s1, s2]));
    }

    #[test]
    fn serial_schedules_of_the_same_system_can_fail_ols() {
        // Even two *serial* schedules may be incompatible if an early read
        // must be assigned differently: here they do not share a non-trivial
        // prefix, so they are OLS.
        let sys = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)")
            .unwrap()
            .tx_system();
        let ab = Schedule::serial(&sys, &[mvcc_core::TxId(1), mvcc_core::TxId(2)]);
        let ba = Schedule::serial(&sys, &[mvcc_core::TxId(2), mvcc_core::TxId(1)]);
        assert!(is_ols(&[ab, ba]));
    }

    #[test]
    fn violation_reports_the_shortest_bad_prefix() {
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let violation = ols_violation(&[s, s_prime]).unwrap();
        // The incompatibility appears exactly when R_B(x) (step index 2) has
        // been read: prefix length 3.
        assert_eq!(violation.prefix_len, 3);
    }
}
