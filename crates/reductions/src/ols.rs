//! On-line schedulability (OLS) of a set of schedules — Section 4.
//!
//! A subset `S` of MVSR is *on-line schedulable* if, for every prefix `p` of
//! a schedule in `S`, there is a version function `V` defined on `p` such
//! that every schedule `p·q` in `S` has a serializing version function
//! extending `V`.  OLS is exactly the property a set of schedules must have
//! to be recognisable by a multiversion scheduler, and Theorem 4 shows that
//! deciding it is NP-complete even for pairs of MVCSR schedules.
//!
//! The checker below is definition-level and exact: for every prefix it
//! intersects the restrictions of the schedules' serializing read-from
//! assignments.  It is exponential (it has to be, unless P = NP) and is
//! meant for the reduction-scale instances used in tests, examples and the
//! experiment harness.

use mvcc_classify::serialization::{serializations, SerialReadFroms};
use mvcc_core::{Schedule, VersionSource};
use std::collections::{BTreeMap, BTreeSet};

/// A witness that a set of schedules is *not* OLS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OlsViolation {
    /// Length of the offending prefix.
    pub prefix_len: usize,
    /// Indices (into the input slice) of the schedules sharing that prefix
    /// whose serializing version functions cannot be reconciled.
    pub schedules: Vec<usize>,
}

/// The restriction of a serializing read-from assignment to the first
/// `prefix_len` steps, as a canonical map.
fn restriction(rf: &SerialReadFroms, prefix_len: usize) -> BTreeMap<usize, VersionSource> {
    rf.read_sources
        .iter()
        .filter(|(&pos, _)| pos < prefix_len)
        .map(|(&pos, &src)| (pos, src))
        .collect()
}

/// All distinct restrictions of the schedule's serializations to the given
/// prefix length.
fn restrictions(
    serializations_of: &[SerialReadFroms],
    prefix_len: usize,
) -> BTreeSet<BTreeMap<usize, VersionSource>> {
    serializations_of
        .iter()
        .map(|rf| restriction(rf, prefix_len))
        .collect()
}

/// Checks whether `schedules` is an OLS set, returning a violation witness
/// if it is not.
///
/// A schedule that is not MVSR at all makes the set trivially non-OLS (the
/// full schedule is a prefix of itself with no serializing version
/// function); this matches the definition, which requires `S ⊆ MVSR`.
pub fn ols_violation(schedules: &[Schedule]) -> Option<OlsViolation> {
    // Pre-compute the serializations of every schedule once.
    let all: Vec<Vec<SerialReadFroms>> =
        schedules.iter().map(|s| serializations(s, None)).collect();

    for (idx, (s, sers)) in schedules.iter().zip(&all).enumerate() {
        if sers.is_empty() {
            return Some(OlsViolation {
                prefix_len: s.len(),
                schedules: vec![idx],
            });
        }
    }

    // Candidate prefixes.  Checking *every* prefix is sound but wasteful:
    // if two prefixes p ⊂ p' have the same member set, a common assignment
    // for p' restricts to one for p, so only the longest prefix of each
    // member set matters.  The longest prefix shared by a group of
    // schedules always has the length of some pairwise longest common
    // prefix, so those lengths (the "branch points") are the only ones we
    // need to examine.
    let mut interesting: BTreeSet<(usize, usize)> = BTreeSet::new(); // (schedule idx, len)
    for (a_idx, a) in schedules.iter().enumerate() {
        for (b_idx, b) in schedules.iter().enumerate() {
            if a_idx == b_idx {
                continue;
            }
            let common = a.common_prefix_len(b);
            if common > 0 {
                interesting.insert((a_idx, common));
            }
        }
    }

    let mut seen_prefixes: BTreeSet<Vec<mvcc_core::Step>> = BTreeSet::new();
    for (a_idx, len) in interesting {
        let s = &schedules[a_idx];
        {
            let prefix_steps = s.steps()[..len].to_vec();
            if !seen_prefixes.insert(prefix_steps.clone()) {
                continue;
            }
            // Schedules having this prefix.
            let members: Vec<usize> = schedules
                .iter()
                .enumerate()
                .filter(|(_, t)| t.len() >= len && t.steps()[..len] == prefix_steps[..])
                .map(|(i, _)| i)
                .collect();
            if members.len() < 2 {
                continue;
            }
            // Intersect the restriction sets of all members.
            let mut common: Option<BTreeSet<BTreeMap<usize, VersionSource>>> = None;
            for &m in &members {
                let r = restrictions(&all[m], len);
                common = Some(match common {
                    None => r,
                    Some(c) => c.intersection(&r).cloned().collect(),
                });
            }
            if common.map(|c| c.is_empty()).unwrap_or(false) {
                return Some(OlsViolation {
                    prefix_len: len,
                    schedules: members,
                });
            }
        }
    }
    None
}

/// `true` iff `schedules` is an OLS set.
pub fn is_ols(schedules: &[Schedule]) -> bool {
    ols_violation(schedules).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_mvsr_sets_are_ols() {
        assert!(is_ols(&[]));
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_ols(&[s]));
    }

    #[test]
    fn a_non_mvsr_member_breaks_ols() {
        let s1 = mvcc_core::examples::figure1()[0].schedule.clone();
        let violation = ols_violation(&[s1.clone()]).unwrap();
        assert_eq!(violation.prefix_len, s1.len());
        assert_eq!(violation.schedules, vec![0]);
    }

    #[test]
    fn section4_pair_is_not_ols() {
        // The paper's own witness that MVCSR (even DMVSR) is not OLS.
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let violation = ols_violation(&[s.clone(), s_prime.clone()]).unwrap();
        assert!(violation.prefix_len <= s.common_prefix_len(&s_prime));
        assert_eq!(violation.schedules, vec![0, 1]);
        assert!(!is_ols(&[s, s_prime]));
    }

    #[test]
    fn identical_schedules_are_ols() {
        let (s, _) = mvcc_core::examples::section4_pair();
        assert!(is_ols(&[s.clone(), s.clone()]));
    }

    #[test]
    fn disjoint_transaction_systems_are_ols() {
        let s1 = Schedule::parse("Ra(x) Wa(x)").unwrap();
        let s2 = Schedule::parse("Rb(y) Wb(y)").unwrap();
        assert!(is_ols(&[s1, s2]));
    }

    #[test]
    fn compatible_continuations_are_ols() {
        // Two continuations of the same prefix that can both be serialized
        // with the same choice for the shared read.
        let s1 = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let s2 = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        // s2 extends s1; both serializable as A B with R_B(x) <- A.
        assert!(is_ols(&[s1, s2]));
    }

    #[test]
    fn serial_schedules_of_the_same_system_can_fail_ols() {
        // Even two *serial* schedules may be incompatible if an early read
        // must be assigned differently: here they do not share a non-trivial
        // prefix, so they are OLS.
        let sys = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap().tx_system();
        let ab = Schedule::serial(&sys, &[mvcc_core::TxId(1), mvcc_core::TxId(2)]);
        let ba = Schedule::serial(&sys, &[mvcc_core::TxId(2), mvcc_core::TxId(1)]);
        assert!(is_ols(&[ab, ba]));
    }

    #[test]
    fn violation_reports_the_shortest_bad_prefix() {
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let violation = ols_violation(&[s, s_prime]).unwrap();
        // The incompatibility appears exactly when R_B(x) (step index 2) has
        // been read: prefix length 3.
        assert_eq!(violation.prefix_len, 3);
    }
}
