//! Theorem 6: no polynomial-time scheduler recognises a maximal OLS subset
//! of MVCSR (unless P = NP).
//!
//! The proof is *adaptive*: the schedule is constructed choice by choice
//! while being submitted to the scheduler `R`, and the construction reacts
//! to the version function `R` computes.  For each choice `b = (j, k, i)` of
//! the polygraph a segment `W_k(b) W_i(b) R_j(b)` is submitted; the
//! construction wants `R` to serve `R_j(b)` the version written by `T_i`:
//!
//! * if `R` serves `b_i`, nothing needs to change;
//! * if `R` serves `b_k`, the two writes are swapped and the run restarted —
//!   by determinism and the symmetry of the segment, `R` now serves the
//!   first-written version, which after the swap belongs to `T_i` (the
//!   paper's "renaming trick");
//! * if `R` serves the initial version `b_0`, a forcing segment
//!   `R_i(d) W_j(d)` on a fresh entity is prepended, which pins `T_i` before
//!   `T_j` in every serialization and rules `b_0` out.  (The paper uses a
//!   helper transaction for this; we reuse the arc gadget instead — the arc
//!   `(i, j)` is part of the polygraph anyway, so revealing it early cannot
//!   change the reduction's outcome.)
//!
//! After all choices are in place, the arc segments `R_i(a) W_j(a)` are
//! appended.  The resulting schedule is MVCSR, its read-froms (under the
//! choices `R` was manoeuvred into) force exactly the constraints of the
//! polygraph, and `R` — if it is maximal, i.e. only rejects when no
//! serializable completion exists (Lemma 2) — accepts the whole schedule iff
//! the polygraph is acyclic.

use mvcc_core::{EntityId, Schedule, Step, TxId, VersionSource};
use mvcc_graph::{Choice, Polygraph};
use mvcc_scheduler::{Decision, Scheduler};
use std::collections::BTreeSet;

/// How the segment of one choice is currently laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChoiceGadget {
    /// Swap the order of the two writes (`W_i` first instead of `W_k`).
    swapped: bool,
    /// Prepend the forcing segment `R_i(d) W_j(d)`.
    force_arc: bool,
}

/// Outcome of the adaptive construction.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The schedule that was finally submitted.
    pub schedule: Schedule,
    /// Whether the scheduler accepted every step of it.
    pub accepted: bool,
    /// Number of times the construction had to amend a gadget and restart.
    pub amendments: usize,
    /// Whether every choice's read ended up being served `T_i`'s version.
    pub choices_pinned: bool,
}

fn build_schedule(polygraph: &Polygraph, gadgets: &[ChoiceGadget]) -> (Schedule, Vec<usize>) {
    let tx = |node: mvcc_graph::NodeId| TxId(node.0 + 1);
    let mut steps: Vec<Step> = Vec::new();
    let mut read_positions = Vec::with_capacity(gadgets.len());
    let mut next_entity = 0u32;
    let mut fresh = || {
        let e = EntityId(next_entity);
        next_entity += 1;
        e
    };

    for (choice, gadget) in polygraph.choices().iter().zip(gadgets) {
        let Choice { j, k, i } = *choice;
        let (j, k, i) = (tx(j), tx(k), tx(i));
        if gadget.force_arc {
            let d = fresh();
            steps.push(Step::read(i, d));
            steps.push(Step::write(j, d));
        }
        let b = fresh();
        if gadget.swapped {
            steps.push(Step::write(i, b));
            steps.push(Step::write(k, b));
        } else {
            steps.push(Step::write(k, b));
            steps.push(Step::write(i, b));
        }
        read_positions.push(steps.len());
        steps.push(Step::read(j, b));
    }

    // Arc segments.
    let with_choice: BTreeSet<_> = polygraph
        .choices()
        .iter()
        .map(|c| c.mandatory_arc())
        .collect();
    for choice in polygraph.choices() {
        let (i, j) = choice.mandatory_arc();
        let a = fresh();
        steps.push(Step::read(tx(i), a));
        steps.push(Step::write(tx(j), a));
    }
    for (from, to) in polygraph.arcs() {
        if with_choice.contains(&(from, to)) {
            continue;
        }
        let a = fresh();
        steps.push(Step::read(tx(from), a));
        steps.push(Step::write(tx(to), a));
    }

    (Schedule::from_steps(steps), read_positions)
}

/// Runs the adaptive construction of Theorem 6 against the scheduler
/// produced by `make_scheduler` (a fresh instance is created for every
/// restart; the scheduler must be deterministic).
pub fn adaptive_schedule(
    polygraph: &Polygraph,
    mut make_scheduler: impl FnMut() -> Box<dyn Scheduler>,
) -> AdaptiveOutcome {
    assert!(
        polygraph.first_branches_acyclic() && polygraph.base_acyclic(),
        "Theorem 6 uses polygraphs satisfying assumptions (b) and (c)"
    );
    let tx = |node: mvcc_graph::NodeId| TxId(node.0 + 1);
    let mut gadgets = vec![
        ChoiceGadget {
            swapped: false,
            force_arc: false,
        };
        polygraph.choice_count()
    ];
    let mut amendments = 0usize;
    // Each gadget can be amended at most twice (force the arc, then swap),
    // so the loop terminates after at most 2·|C| restarts.
    let max_rounds = 2 * polygraph.choice_count() + 1;

    for _round in 0..=max_rounds {
        let (schedule, read_positions) = build_schedule(polygraph, &gadgets);
        let mut scheduler = make_scheduler();
        let mut accepted = true;
        let mut decisions: Vec<Decision> = Vec::with_capacity(schedule.len());
        for &step in schedule.steps() {
            let d = scheduler.offer(step);
            if !d.is_accept() {
                accepted = false;
                decisions.push(d);
                break;
            }
            decisions.push(d);
        }

        // Inspect the version served to each choice's read (if reached).
        let mut needs_amendment: Option<(usize, ChoiceGadget)> = None;
        for (c_idx, &pos) in read_positions.iter().enumerate() {
            if pos >= decisions.len() {
                break;
            }
            let choice = polygraph.choices()[c_idx];
            let want = VersionSource::Tx(tx(choice.i));
            let got = decisions[pos].read_from();
            if got == Some(want) || got.is_none() {
                continue;
            }
            let gadget = gadgets[c_idx];
            let amended = if got == Some(VersionSource::Initial) && !gadget.force_arc {
                ChoiceGadget {
                    force_arc: true,
                    ..gadget
                }
            } else if !gadget.swapped {
                ChoiceGadget {
                    swapped: true,
                    ..gadget
                }
            } else if !gadget.force_arc {
                ChoiceGadget {
                    force_arc: true,
                    ..gadget
                }
            } else {
                // The scheduler keeps refusing to serve T_i's version even
                // though it is the only serializable option; it is not a
                // maximal scheduler.  Report the run as-is.
                continue;
            };
            needs_amendment = Some((c_idx, amended));
            break;
        }

        match needs_amendment {
            Some((idx, gadget)) => {
                gadgets[idx] = gadget;
                amendments += 1;
            }
            None => {
                let choices_pinned = read_positions.iter().enumerate().all(|(c_idx, &pos)| {
                    pos < decisions.len()
                        && decisions[pos].read_from()
                            == Some(VersionSource::Tx(tx(polygraph.choices()[c_idx].i)))
                });
                return AdaptiveOutcome {
                    schedule,
                    accepted,
                    amendments,
                    choices_pinned,
                };
            }
        }
    }
    // Unreachable in practice; return the last state conservatively.
    let (schedule, _) = build_schedule(polygraph, &gadgets);
    AdaptiveOutcome {
        schedule,
        accepted: false,
        amendments,
        choices_pinned: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{CnfFormula, Literal};
    use crate::sat_to_polygraph::sat_to_polygraph;
    use mvcc_classify::is_mvcsr;
    use mvcc_graph::poly_acyclic::is_acyclic_polygraph;
    use mvcc_graph::NodeId;
    use mvcc_scheduler::{GreedyMaximalScheduler, MvSgtScheduler};

    fn acyclic_polygraph() -> Polygraph {
        let mut p = Polygraph::with_nodes(6);
        p.add_choice(NodeId(0), NodeId(1), NodeId(2));
        p.add_choice(NodeId(3), NodeId(4), NodeId(5));
        p.add_arc(NodeId(2), NodeId(3));
        p
    }

    fn cyclic_polygraph() -> Polygraph {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![Literal::pos(0)]);
        f.add_clause(vec![Literal::neg(0)]);
        sat_to_polygraph(&f).polygraph
    }

    #[test]
    fn greedy_maximal_scheduler_accepts_iff_acyclic() {
        let acyclic = acyclic_polygraph();
        let out = adaptive_schedule(&acyclic, || Box::new(GreedyMaximalScheduler::new()));
        assert!(out.accepted, "acyclic polygraph must be accepted");
        assert!(out.choices_pinned);
        assert!(is_mvcsr(&out.schedule), "the constructed schedule is MVCSR");

        let cyclic = cyclic_polygraph();
        assert!(!is_acyclic_polygraph(&cyclic));
        let out = adaptive_schedule(&cyclic, || Box::new(GreedyMaximalScheduler::new()));
        assert!(!out.accepted, "cyclic polygraph must be rejected");
        assert!(
            is_mvcsr(&out.schedule),
            "the schedule itself is still MVCSR"
        );
    }

    #[test]
    fn mv_sgt_scheduler_is_not_maximal_but_stays_sound() {
        // MV-SGT is not a maximal scheduler; the construction still runs and
        // the submitted schedule is MVCSR, but acceptance of the cyclic case
        // says nothing (it only recognises MVCSR, a superset of any maximal
        // OLS class member's needs).
        let p = acyclic_polygraph();
        let out = adaptive_schedule(&p, || Box::new(MvSgtScheduler::new()));
        assert!(is_mvcsr(&out.schedule));
        assert!(out.accepted);
    }

    #[test]
    fn amendment_loop_is_bounded() {
        let p = cyclic_polygraph();
        let out = adaptive_schedule(&p, || Box::new(GreedyMaximalScheduler::new()));
        assert!(out.amendments <= 2 * p.choice_count());
    }

    #[test]
    fn constructed_schedule_encodes_every_choice_and_arc() {
        let p = acyclic_polygraph();
        let out = adaptive_schedule(&p, || Box::new(GreedyMaximalScheduler::new()));
        // 3 steps per choice + 2 per choice's arc + 2 per bare arc.
        let bare_arcs = p.arc_count() - p.choice_count();
        let min_len = 3 * p.choice_count() + 2 * p.choice_count() + 2 * bare_arcs;
        assert!(out.schedule.len() >= min_len);
        assert_eq!(
            out.schedule.num_transactions(),
            p.node_count(),
            "one transaction per polygraph node"
        );
    }
}
