//! Schedules: interleavings of the steps of a transaction system.

use crate::{
    Action, CoreError, EntityId, EntityInterner, Step, Transaction, TransactionSystem, TxId,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A schedule: a finite sequence of steps, together with the transaction
/// system it interleaves (derived from the per-transaction projections).
///
/// Any step sequence is a schedule of *some* transaction system — namely the
/// system whose transactions are the per-transaction projections of the
/// sequence — so construction never fails.  Use [`Schedule::is_shuffle_of`]
/// to check a schedule against an externally given system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    steps: Vec<Step>,
    /// Optional entity names, populated by [`Schedule::parse`].
    entities: Option<EntityInterner>,
}

impl Schedule {
    /// Creates a schedule from an explicit step sequence.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        Schedule {
            steps,
            entities: None,
        }
    }

    /// Creates the empty schedule.
    pub fn empty() -> Self {
        Schedule::from_steps(Vec::new())
    }

    /// Creates the serial schedule of `system` in which transactions run in
    /// the given `order`.
    pub fn serial(system: &TransactionSystem, order: &[TxId]) -> Self {
        Schedule::from_steps(system.serial_steps(order))
    }

    /// Parses the paper's notation, e.g. `"Ra(x) Wa(x) Rb(x) Wb(y)"` or
    /// `"R1(x) W2(y)"`.
    ///
    /// * `R`/`W` (case-insensitive) selects the action;
    /// * the transaction label is either a decimal number or a letter
    ///   (`a`/`A` ↦ `T1`, `b` ↦ `T2`, ...);
    /// * the entity name is any identifier inside parentheses. The names
    ///   `x y z u v w` receive the fixed ids `0..=5` so that display
    ///   round-trips; other names are interned after them.
    pub fn parse(text: &str) -> Result<Self, CoreError> {
        let mut steps = Vec::new();
        let mut interner = EntityInterner::new();
        // Pre-intern the conventional letters so ids line up with Display.
        for name in ["x", "y", "z", "u", "v", "w"] {
            interner.intern(name);
        }
        for (idx, token) in text.split_whitespace().enumerate() {
            let token = token.trim_matches(|c| c == ',' || c == ';');
            if token.is_empty() {
                continue;
            }
            let mut chars = token.chars();
            let action = match chars.next() {
                Some('r') | Some('R') => Action::Read,
                Some('w') | Some('W') => Action::Write,
                other => {
                    return Err(CoreError::Parse {
                        position: idx,
                        message: format!("expected R or W, found {other:?}"),
                    })
                }
            };
            let rest: String = chars.collect();
            let open = rest.find('(').ok_or_else(|| CoreError::Parse {
                position: idx,
                message: "missing '('".into(),
            })?;
            let close = rest.rfind(')').ok_or_else(|| CoreError::Parse {
                position: idx,
                message: "missing ')'".into(),
            })?;
            if close < open {
                return Err(CoreError::Parse {
                    position: idx,
                    message: "')' before '('".into(),
                });
            }
            let tx_label = &rest[..open];
            let entity_name = &rest[open + 1..close];
            if entity_name.is_empty() {
                return Err(CoreError::Parse {
                    position: idx,
                    message: "empty entity name".into(),
                });
            }
            let tx = parse_tx_label(tx_label).ok_or_else(|| CoreError::Parse {
                position: idx,
                message: format!("cannot parse transaction label {tx_label:?}"),
            })?;
            let entity = interner.intern(entity_name);
            steps.push(Step { tx, action, entity });
        }
        Ok(Schedule {
            steps,
            entities: Some(interner),
        })
    }

    /// The underlying step sequence.
    #[inline]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the schedule has no steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The entity name interner, if the schedule was parsed from text.
    pub fn entity_names(&self) -> Option<&EntityInterner> {
        self.entities.as_ref()
    }

    /// The distinct transaction ids, in order of first appearance.
    pub fn tx_ids(&self) -> Vec<TxId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for s in &self.steps {
            if seen.insert(s.tx) {
                out.push(s.tx);
            }
        }
        out
    }

    /// Number of distinct transactions.
    pub fn num_transactions(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.tx)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The distinct entities accessed, in ascending id order.
    pub fn entities_accessed(&self) -> Vec<EntityId> {
        self.steps
            .iter()
            .map(|s| s.entity)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// The transaction system induced by this schedule: each transaction is
    /// the projection of the schedule onto its steps.
    pub fn tx_system(&self) -> TransactionSystem {
        let mut per_tx: BTreeMap<TxId, Vec<(Action, EntityId)>> = BTreeMap::new();
        for s in &self.steps {
            per_tx.entry(s.tx).or_default().push((s.action, s.entity));
        }
        TransactionSystem::new(
            per_tx
                .into_iter()
                .map(|(id, accesses)| Transaction::new(id, accesses))
                .collect(),
        )
    }

    /// Checks that this schedule is a shuffle of `system`: it contains
    /// exactly the steps of every transaction of the system, in program
    /// order.
    pub fn is_shuffle_of(&self, system: &TransactionSystem) -> bool {
        self.tx_system() == *system
    }

    /// `true` if any two adjacent steps of the same transaction are also
    /// adjacent in the schedule — i.e. transactions run one after another.
    pub fn is_serial(&self) -> bool {
        let mut finished: BTreeSet<TxId> = BTreeSet::new();
        let mut current: Option<TxId> = None;
        for s in &self.steps {
            match current {
                Some(tx) if tx == s.tx => {}
                _ => {
                    if finished.contains(&s.tx) {
                        return false;
                    }
                    if let Some(prev) = current {
                        finished.insert(prev);
                    }
                    current = Some(s.tx);
                }
            }
        }
        true
    }

    /// If the schedule is serial, returns the order in which transactions
    /// run.
    pub fn serial_order(&self) -> Option<Vec<TxId>> {
        if self.is_serial() {
            Some(self.tx_ids())
        } else {
            None
        }
    }

    /// The prefix consisting of the first `n` steps.
    pub fn prefix(&self, n: usize) -> Schedule {
        Schedule {
            steps: self.steps[..n.min(self.steps.len())].to_vec(),
            entities: self.entities.clone(),
        }
    }

    /// All proper and improper prefixes, from the empty schedule to the full
    /// schedule.
    pub fn prefixes(&self) -> impl Iterator<Item = Schedule> + '_ {
        (0..=self.steps.len()).map(move |n| self.prefix(n))
    }

    /// `true` if `other` is a prefix of this schedule.
    pub fn has_prefix(&self, other: &Schedule) -> bool {
        other.len() <= self.len() && self.steps[..other.len()] == other.steps[..]
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Schedule) -> usize {
        self.steps
            .iter()
            .zip(other.steps.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Appends a step, returning the extended schedule.
    pub fn appended(&self, step: Step) -> Schedule {
        let mut steps = self.steps.clone();
        steps.push(step);
        Schedule {
            steps,
            entities: self.entities.clone(),
        }
    }

    /// Positions (indices into the schedule) of all write steps on `entity`,
    /// in schedule order.
    pub fn write_positions(&self, entity: EntityId) -> Vec<usize> {
        self.positions(|s| s.is_write() && s.entity == entity)
    }

    /// Positions of all read steps on `entity`, in schedule order.
    pub fn read_positions(&self, entity: EntityId) -> Vec<usize> {
        self.positions(|s| s.is_read() && s.entity == entity)
    }

    /// Positions of all read steps, in schedule order.
    pub fn all_read_positions(&self) -> Vec<usize> {
        self.positions(|s| s.is_read())
    }

    /// Positions of the steps of transaction `tx`, in schedule order.
    pub fn tx_positions(&self, tx: TxId) -> Vec<usize> {
        self.positions(|s| s.tx == tx)
    }

    fn positions(&self, pred: impl Fn(&Step) -> bool) -> Vec<usize> {
        self.steps
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i)
            .collect()
    }

    /// The position of the last write on `entity` strictly before position
    /// `pos`, or `None` if there is none (the read would read the initial
    /// version written by `T0`).
    pub fn last_write_before(&self, pos: usize, entity: EntityId) -> Option<usize> {
        self.steps[..pos.min(self.steps.len())]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| s.is_write() && s.entity == entity)
            .map(|(i, _)| i)
    }

    /// The transaction that wrote the version a *single-version* database
    /// would serve to a read at position `pos` of `entity`: the last previous
    /// writer, or `None` for the initial version.
    pub fn last_writer_before(&self, pos: usize, entity: EntityId) -> Option<TxId> {
        self.last_write_before(pos, entity)
            .map(|i| self.steps[i].tx)
    }

    /// The transaction that wrote the final version of `entity`, or `None`
    /// if nobody wrote it (the final version is the initial one).
    pub fn final_writer(&self, entity: EntityId) -> Option<TxId> {
        self.steps
            .iter()
            .rev()
            .find(|s| s.is_write() && s.entity == entity)
            .map(|s| s.tx)
    }

    /// Swaps the adjacent steps at positions `i` and `i + 1`, returning the
    /// new schedule. Returns `None` if `i + 1` is out of range or the two
    /// steps belong to the same transaction (swapping them would violate
    /// program order, so the result would not be a schedule of the same
    /// transaction system).
    pub fn swap_adjacent(&self, i: usize) -> Option<Schedule> {
        if i + 1 >= self.steps.len() || self.steps[i].tx == self.steps[i + 1].tx {
            return None;
        }
        let mut steps = self.steps.clone();
        steps.swap(i, i + 1);
        Some(Schedule {
            steps,
            entities: self.entities.clone(),
        })
    }

    /// Enumerates every interleaving of the transactions of `system`.
    ///
    /// The number of interleavings is the multinomial coefficient of the
    /// transaction lengths; this is intended for the small systems used in
    /// tests, examples and the Figure 1 census.
    pub fn all_interleavings(system: &TransactionSystem) -> Vec<Schedule> {
        let txs: Vec<&Transaction> = system.transactions().iter().collect();
        let mut cursors = vec![0usize; txs.len()];
        let mut current: Vec<Step> = Vec::with_capacity(system.total_steps());
        let mut out = Vec::new();
        fn rec(
            txs: &[&Transaction],
            cursors: &mut Vec<usize>,
            current: &mut Vec<Step>,
            out: &mut Vec<Schedule>,
            total: usize,
        ) {
            if current.len() == total {
                out.push(Schedule::from_steps(current.clone()));
                return;
            }
            for (k, tx) in txs.iter().enumerate() {
                if cursors[k] < tx.len() {
                    let (action, entity) = tx.accesses[cursors[k]];
                    cursors[k] += 1;
                    current.push(Step {
                        tx: tx.id,
                        action,
                        entity,
                    });
                    rec(txs, cursors, current, out, total);
                    current.pop();
                    cursors[k] -= 1;
                }
            }
        }
        rec(
            &txs,
            &mut cursors,
            &mut current,
            &mut out,
            system.total_steps(),
        );
        out
    }

    /// Renders the schedule as the paper's two-dimensional figure layout:
    /// one row per transaction, one column per step.
    pub fn to_grid(&self) -> String {
        crate::display::grid(self)
    }
}

fn parse_tx_label(label: &str) -> Option<TxId> {
    if label.is_empty() {
        return None;
    }
    if let Ok(n) = label.parse::<u32>() {
        return Some(TxId(n));
    }
    if label.len() == 1 {
        // lint: allow(unwrap) — label is non-empty here; the empty case returned above
        let c = label.chars().next().unwrap().to_ascii_lowercase();
        if c.is_ascii_lowercase() {
            return Some(TxId((c as u32) - ('a' as u32) + 1));
        }
    }
    if let Some(rest) = label.strip_prefix('t').or_else(|| label.strip_prefix('T')) {
        if let Ok(n) = rest.parse::<u32>() {
            return Some(TxId(n));
        }
    }
    None
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in &self.steps {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(y)").unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_string(), "R1(x) W1(x) R2(x) W2(y)");
        let s2 = Schedule::parse(&s.to_string()).unwrap();
        assert_eq!(s.steps(), s2.steps());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("Q1(x)").is_err());
        assert!(Schedule::parse("R1 x").is_err());
        assert!(Schedule::parse("R1()").is_err());
        assert!(Schedule::parse("R?(x)").is_err());
    }

    #[test]
    fn parse_numeric_and_t_prefixed_labels() {
        let s = Schedule::parse("R1(x) Wt2(y) rA(z)").unwrap();
        let ids: Vec<TxId> = s.steps().iter().map(|s| s.tx).collect();
        assert_eq!(ids, vec![TxId(1), TxId(2), TxId(1)]);
    }

    #[test]
    fn serial_detection() {
        let serial = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(serial.is_serial());
        assert_eq!(serial.serial_order(), Some(vec![TxId(1), TxId(2)]));

        let interleaved = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!interleaved.is_serial());
        assert_eq!(interleaved.serial_order(), None);

        // Returning to an already-finished transaction is not serial.
        let revisit = Schedule::parse("Ra(x) Rb(x) Ra(y)").unwrap();
        assert!(!revisit.is_serial());
    }

    #[test]
    fn tx_system_round_trip() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x) Wb(y)").unwrap();
        let sys = s.tx_system();
        assert_eq!(sys.len(), 2);
        assert!(s.is_shuffle_of(&sys));
        let serial = Schedule::serial(&sys, &[TxId(2), TxId(1)]);
        assert_eq!(serial.to_string(), "R2(y) W2(y) R1(x) W1(x)");
        assert!(serial.is_shuffle_of(&sys));
        // A different system is rejected.
        let other = Schedule::parse("Ra(x)").unwrap().tx_system();
        assert!(!s.is_shuffle_of(&other));
    }

    #[test]
    fn position_queries() {
        let s = Schedule::parse("Ra(x) Wb(x) Ra(y) Wa(x) Rb(x)").unwrap();
        let x = EntityId(0);
        let y = EntityId(1);
        assert_eq!(s.write_positions(x), vec![1, 3]);
        assert_eq!(s.read_positions(x), vec![0, 4]);
        assert_eq!(s.read_positions(y), vec![2]);
        assert_eq!(s.all_read_positions(), vec![0, 2, 4]);
        assert_eq!(s.tx_positions(TxId(1)), vec![0, 2, 3]);
        assert_eq!(s.last_write_before(0, x), None);
        assert_eq!(s.last_write_before(4, x), Some(3));
        assert_eq!(s.last_writer_before(4, x), Some(TxId(1)));
        assert_eq!(s.last_writer_before(2, x), Some(TxId(2)));
        assert_eq!(s.final_writer(x), Some(TxId(1)));
        assert_eq!(s.final_writer(y), None);
    }

    #[test]
    fn prefixes_and_common_prefix() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x)").unwrap();
        let t = Schedule::parse("Ra(x) Wa(x) Wb(y)").unwrap();
        assert_eq!(s.prefixes().count(), 4);
        assert_eq!(s.common_prefix_len(&t), 2);
        assert!(s.has_prefix(&s.prefix(2)));
        assert!(!t.has_prefix(&s.prefix(3)));
        assert!(s.has_prefix(&Schedule::empty()));
    }

    #[test]
    fn swap_adjacent_respects_program_order() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x)").unwrap();
        assert!(s.swap_adjacent(0).is_none(), "same-transaction swap");
        let swapped = s.swap_adjacent(1).unwrap();
        assert_eq!(swapped.to_string(), "R1(x) R2(x) W1(x)");
        assert!(s.swap_adjacent(2).is_none(), "out of range");
    }

    #[test]
    fn all_interleavings_counts_match_multinomial() {
        // Two transactions with 2 steps each: C(4,2) = 6 interleavings.
        let sys = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)")
            .unwrap()
            .tx_system();
        let all = Schedule::all_interleavings(&sys);
        assert_eq!(all.len(), 6);
        assert!(all.iter().all(|s| s.is_shuffle_of(&sys)));
        // All interleavings are distinct.
        let set: BTreeSet<Vec<Step>> = all.iter().map(|s| s.steps().to_vec()).collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn appended_extends_schedule() {
        let s = Schedule::parse("Ra(x)").unwrap();
        let s2 = s.appended(Step::write(TxId(1), EntityId(0)));
        assert_eq!(s2.to_string(), "R1(x) W1(x)");
        assert_eq!(s.len(), 1, "original is unchanged");
    }

    #[test]
    fn entity_names_preserved_by_parse() {
        let s = Schedule::parse("Ra(balance) Wa(balance)").unwrap();
        let names = s.entity_names().unwrap();
        let id = names.get("balance").unwrap();
        assert_eq!(names.name(id), Some("balance"));
        assert!(id.index() >= 6, "custom names come after the letter block");
    }

    #[test]
    fn empty_schedule_properties() {
        let e = Schedule::empty();
        assert!(e.is_empty());
        assert!(e.is_serial());
        assert_eq!(e.num_transactions(), 0);
        assert_eq!(e.entities_accessed(), vec![]);
        assert_eq!(e.to_string(), "");
    }
}
