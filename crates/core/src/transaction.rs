//! Transactions and transaction systems.
//!
//! A *transaction* is a finite sequence of read/write steps on entities; a
//! *transaction system* `τ = {T1, ..., Tn}` is a finite set of transactions.
//! A schedule of `τ` is a sequence in the shuffle of `τ`: the steps of each
//! transaction appear in program order.

use crate::{Action, EntityId, Step};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a transaction.
///
/// Ordinary transactions use small non-negative indices.  The implicit
/// padding transactions of the paper are represented by the reserved values
/// [`TxId::INITIAL`] (`T0`, which writes every entity before the schedule)
/// and [`TxId::FINAL`] (`Tf`, which reads every entity after it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u32);

impl TxId {
    /// The padding transaction `T0` that writes all entities before the
    /// schedule starts.
    pub const INITIAL: TxId = TxId(u32::MAX - 1);
    /// The padding transaction `Tf` that reads all entities after the
    /// schedule ends.
    pub const FINAL: TxId = TxId(u32::MAX);

    /// Returns the raw index. Panics on the reserved padding ids.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(!self.is_padding(), "padding transactions have no index");
        self.0 as usize
    }

    /// `true` for `T0` or `Tf`.
    #[inline]
    pub fn is_padding(self) -> bool {
        self == TxId::INITIAL || self == TxId::FINAL
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TxId::INITIAL {
            write!(f, "T0")
        } else if *self == TxId::FINAL {
            write!(f, "Tf")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

/// A transaction: an ordered sequence of accesses by a single [`TxId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// The transaction's identifier.
    pub id: TxId,
    /// The program-order sequence of (action, entity) accesses.
    pub accesses: Vec<(Action, EntityId)>,
}

impl Transaction {
    /// Creates a transaction from its id and access list.
    pub fn new(id: TxId, accesses: Vec<(Action, EntityId)>) -> Self {
        Transaction { id, accesses }
    }

    /// The steps of this transaction in program order.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        self.accesses.iter().map(move |&(action, entity)| Step {
            tx: self.id,
            action,
            entity,
        })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the transaction has no steps.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The read set: entities accessed by a read step (paper, Section 2).
    pub fn read_set(&self) -> BTreeSet<EntityId> {
        self.accesses
            .iter()
            .filter(|(a, _)| a.is_read())
            .map(|&(_, e)| e)
            .collect()
    }

    /// The write set: entities accessed by a write step.
    pub fn write_set(&self) -> BTreeSet<EntityId> {
        self.accesses
            .iter()
            .filter(|(a, _)| a.is_write())
            .map(|&(_, e)| e)
            .collect()
    }

    /// `true` if the transaction contains a write on an entity it never
    /// reads ("readless write").  The restricted model of \[PK84\] disallows
    /// these; DMVSR is defined by patching them (see `mvcc-classify`).
    pub fn has_readless_write(&self) -> bool {
        let reads = self.read_set();
        self.write_set().iter().any(|e| !reads.contains(e))
    }

    /// `true` if the transaction reads each entity it writes *before* the
    /// write (the "two-step" discipline of the restricted model).
    pub fn reads_before_writes(&self) -> bool {
        let mut seen_reads: BTreeSet<EntityId> = BTreeSet::new();
        for &(action, entity) in &self.accesses {
            match action {
                Action::Read => {
                    seen_reads.insert(entity);
                }
                Action::Write => {
                    if !seen_reads.contains(&entity) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.id)?;
        for step in self.steps() {
            write!(f, " {}({})", step.action, step.entity)?;
        }
        Ok(())
    }
}

/// A finite set of transactions `τ = {T1, ..., Tn}`.
///
/// Transactions are stored in `TxId` order; the system is the *program* that
/// schedules interleave.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TransactionSystem {
    transactions: Vec<Transaction>,
}

impl TransactionSystem {
    /// Builds a system from a list of transactions (sorted by id).
    pub fn new(mut transactions: Vec<Transaction>) -> Self {
        transactions.sort_by_key(|t| t.id);
        TransactionSystem { transactions }
    }

    /// The transactions in id order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Finds the transaction with the given id.
    pub fn get(&self, id: TxId) -> Option<&Transaction> {
        self.transactions.iter().find(|t| t.id == id)
    }

    /// All transaction ids in order.
    pub fn tx_ids(&self) -> Vec<TxId> {
        self.transactions.iter().map(|t| t.id).collect()
    }

    /// The set of entities accessed by any transaction.
    pub fn entities(&self) -> BTreeSet<EntityId> {
        self.transactions
            .iter()
            .flat_map(|t| t.accesses.iter().map(|&(_, e)| e))
            .collect()
    }

    /// Total number of steps across all transactions.
    pub fn total_steps(&self) -> usize {
        self.transactions.iter().map(|t| t.len()).sum()
    }

    /// `true` if no transaction has a readless write (the restricted model
    /// of \[PK84\] in which MVSR is polynomial).
    pub fn is_restricted_model(&self) -> bool {
        self.transactions.iter().all(|t| !t.has_readless_write())
    }

    /// The serial schedule obtained by running the transactions in the given
    /// order, returned as a step sequence.
    pub fn serial_steps(&self, order: &[TxId]) -> Vec<Step> {
        let mut steps = Vec::with_capacity(self.total_steps());
        for &id in order {
            if let Some(tx) = self.get(id) {
                steps.extend(tx.steps());
            }
        }
        steps
    }
}

impl fmt::Display for TransactionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.transactions {
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u32, accesses: &[(Action, u32)]) -> Transaction {
        Transaction::new(
            TxId(id),
            accesses.iter().map(|&(a, e)| (a, EntityId(e))).collect(),
        )
    }

    #[test]
    fn padding_ids_are_recognised() {
        assert!(TxId::INITIAL.is_padding());
        assert!(TxId::FINAL.is_padding());
        assert!(!TxId(0).is_padding());
        assert_eq!(TxId::INITIAL.to_string(), "T0");
        assert_eq!(TxId::FINAL.to_string(), "Tf");
        assert_eq!(TxId(4).to_string(), "T4");
    }

    #[test]
    fn read_and_write_sets() {
        let t = tx(
            1,
            &[
                (Action::Read, 0),
                (Action::Write, 0),
                (Action::Read, 1),
                (Action::Write, 2),
            ],
        );
        assert_eq!(t.read_set(), [EntityId(0), EntityId(1)].into());
        assert_eq!(t.write_set(), [EntityId(0), EntityId(2)].into());
        assert!(t.has_readless_write()); // writes z without reading it
        assert!(!t.reads_before_writes());
    }

    #[test]
    fn restricted_model_detection() {
        let good = tx(1, &[(Action::Read, 0), (Action::Write, 0)]);
        let bad = tx(2, &[(Action::Write, 0)]);
        assert!(!good.has_readless_write());
        assert!(good.reads_before_writes());
        assert!(bad.has_readless_write());

        let sys_good = TransactionSystem::new(vec![good.clone()]);
        let sys_bad = TransactionSystem::new(vec![good, bad]);
        assert!(sys_good.is_restricted_model());
        assert!(!sys_bad.is_restricted_model());
    }

    #[test]
    fn serial_steps_follow_requested_order() {
        let a = tx(0, &[(Action::Read, 0), (Action::Write, 0)]);
        let b = tx(1, &[(Action::Write, 1)]);
        let sys = TransactionSystem::new(vec![a, b]);
        let steps = sys.serial_steps(&[TxId(1), TxId(0)]);
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0], Step::write(TxId(1), EntityId(1)));
        assert_eq!(steps[1], Step::read(TxId(0), EntityId(0)));
    }

    #[test]
    fn system_accessors() {
        let a = tx(0, &[(Action::Read, 0)]);
        let b = tx(1, &[(Action::Write, 1), (Action::Write, 2)]);
        let sys = TransactionSystem::new(vec![b.clone(), a.clone()]);
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.tx_ids(), vec![TxId(0), TxId(1)]);
        assert_eq!(sys.total_steps(), 3);
        assert_eq!(sys.get(TxId(1)), Some(&b));
        assert_eq!(sys.get(TxId(7)), None);
        assert_eq!(
            sys.entities(),
            [EntityId(0), EntityId(1), EntityId(2)].into()
        );
        assert!(!sys.is_empty());
        assert!(TransactionSystem::default().is_empty());
    }

    #[test]
    fn transaction_step_iteration_preserves_program_order() {
        let t = tx(3, &[(Action::Read, 0), (Action::Write, 1)]);
        let steps: Vec<Step> = t.steps().collect();
        assert_eq!(
            steps,
            vec![
                Step::read(TxId(3), EntityId(0)),
                Step::write(TxId(3), EntityId(1))
            ]
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
