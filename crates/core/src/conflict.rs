//! The two notions of conflict used by the paper.
//!
//! *Single-version conflict* (Section 2): two steps conflict iff they access
//! the same entity and at least one of them is a write.  This is the notion
//! behind conflict-serializability (CSR) and locking.
//!
//! *Multiversion conflict* (Section 3): two steps of a schedule conflict iff
//! the **first** (in schedule order) is a **read** and the **second** is a
//! **write** on the same entity.  The notion is deliberately asymmetric:
//! write–read and write–write pairs can always be reconciled by serving an
//! older version, but a read that happened before a write can never be made
//! to observe that later write — "the multiversion approach can help a read
//! request that arrived too late, but it can do nothing about a read request
//! that arrived too early."

use crate::{Schedule, Step, TxId};
use serde::{Deserialize, Serialize};

/// Classification of a single-version conflict between two steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConflictKind {
    /// First step reads, second writes (same entity).
    ReadWrite,
    /// First step writes, second reads (same entity).
    WriteRead,
    /// Both steps write (same entity).
    WriteWrite,
}

/// Returns the single-version conflict kind of the ordered pair
/// `(first, second)`, if the steps conflict.
///
/// Steps of the *same* transaction are never reported as conflicting: their
/// order is fixed by program order in every schedule of the system, so they
/// never constrain equivalence.
pub fn sv_conflict_kind(first: &Step, second: &Step) -> Option<ConflictKind> {
    if first.tx == second.tx || first.entity != second.entity {
        return None;
    }
    match (first.action, second.action) {
        (crate::Action::Read, crate::Action::Write) => Some(ConflictKind::ReadWrite),
        (crate::Action::Write, crate::Action::Read) => Some(ConflictKind::WriteRead),
        (crate::Action::Write, crate::Action::Write) => Some(ConflictKind::WriteWrite),
        (crate::Action::Read, crate::Action::Read) => None,
    }
}

/// `true` iff the ordered pair `(first, second)` is a single-version
/// conflict.
pub fn sv_conflicts(first: &Step, second: &Step) -> bool {
    sv_conflict_kind(first, second).is_some()
}

/// `true` iff the ordered pair `(first, second)` is a *multiversion*
/// conflict: `first` is a read, `second` is a write on the same entity, and
/// the steps belong to different transactions.
pub fn mv_conflicts(first: &Step, second: &Step) -> bool {
    first.tx != second.tx && first.entity == second.entity && first.is_read() && second.is_write()
}

/// An ordered conflicting pair of step positions within one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConflictPair {
    /// Position of the earlier step.
    pub first: usize,
    /// Position of the later step.
    pub second: usize,
    /// Transaction of the earlier step.
    pub first_tx: TxId,
    /// Transaction of the later step.
    pub second_tx: TxId,
}

/// Enumerates all ordered single-version conflicting pairs of `schedule`
/// (earlier step first).
pub fn sv_conflict_pairs(schedule: &Schedule) -> Vec<ConflictPair> {
    conflict_pairs_by(schedule, sv_conflicts)
}

/// Enumerates all ordered multiversion conflicting pairs of `schedule`
/// (earlier step first; the earlier step is necessarily a read and the later
/// one a write on the same entity).
pub fn mv_conflict_pairs(schedule: &Schedule) -> Vec<ConflictPair> {
    conflict_pairs_by(schedule, mv_conflicts)
}

fn conflict_pairs_by(
    schedule: &Schedule,
    pred: impl Fn(&Step, &Step) -> bool,
) -> Vec<ConflictPair> {
    let steps = schedule.steps();
    let mut out = Vec::new();
    for i in 0..steps.len() {
        for j in (i + 1)..steps.len() {
            if pred(&steps[i], &steps[j]) {
                out.push(ConflictPair {
                    first: i,
                    second: j,
                    first_tx: steps[i].tx,
                    second_tx: steps[j].tx,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, Schedule};

    fn r(tx: u32, e: u32) -> Step {
        Step::read(TxId(tx), EntityId(e))
    }
    fn w(tx: u32, e: u32) -> Step {
        Step::write(TxId(tx), EntityId(e))
    }

    #[test]
    fn single_version_conflicts_cover_rw_wr_ww() {
        assert_eq!(
            sv_conflict_kind(&r(1, 0), &w(2, 0)),
            Some(ConflictKind::ReadWrite)
        );
        assert_eq!(
            sv_conflict_kind(&w(1, 0), &r(2, 0)),
            Some(ConflictKind::WriteRead)
        );
        assert_eq!(
            sv_conflict_kind(&w(1, 0), &w(2, 0)),
            Some(ConflictKind::WriteWrite)
        );
        assert_eq!(sv_conflict_kind(&r(1, 0), &r(2, 0)), None);
    }

    #[test]
    fn conflicts_require_same_entity_and_different_tx() {
        assert!(!sv_conflicts(&w(1, 0), &w(2, 1)), "different entities");
        assert!(!sv_conflicts(&w(1, 0), &r(1, 0)), "same transaction");
        assert!(!mv_conflicts(&r(1, 0), &w(1, 0)), "same transaction");
        assert!(!mv_conflicts(&r(1, 0), &w(2, 1)), "different entities");
    }

    #[test]
    fn multiversion_conflict_is_read_then_write_only() {
        assert!(mv_conflicts(&r(1, 0), &w(2, 0)));
        assert!(
            !mv_conflicts(&w(1, 0), &r(2, 0)),
            "write-read is not an MV conflict"
        );
        assert!(
            !mv_conflicts(&w(1, 0), &w(2, 0)),
            "write-write is not an MV conflict"
        );
        assert!(!mv_conflicts(&r(1, 0), &r(2, 0)));
    }

    #[test]
    fn mv_conflicts_are_a_subset_of_sv_conflicts() {
        let steps = [r(1, 0), w(1, 0), r(2, 0), w(2, 1), r(3, 1), w(3, 0)];
        for a in &steps {
            for b in &steps {
                if mv_conflicts(a, b) {
                    assert!(sv_conflicts(a, b));
                }
            }
        }
    }

    #[test]
    fn conflict_pair_enumeration() {
        // Ra(x) Wb(x) Wa(y) Rb(y)
        let s = Schedule::parse("Ra(x) Wb(x) Wa(y) Rb(y)").unwrap();
        let sv = sv_conflict_pairs(&s);
        // (0,1) R-W on x, (2,3) W-R on y.
        assert_eq!(sv.len(), 2);
        assert_eq!((sv[0].first, sv[0].second), (0, 1));
        assert_eq!((sv[1].first, sv[1].second), (2, 3));

        let mv = mv_conflict_pairs(&s);
        // Only the read-before-write pair on x.
        assert_eq!(mv.len(), 1);
        assert_eq!((mv[0].first, mv[0].second), (0, 1));
        assert_eq!(mv[0].first_tx, TxId(1));
        assert_eq!(mv[0].second_tx, TxId(2));
    }

    #[test]
    fn no_conflicts_in_read_only_schedule() {
        let s = Schedule::parse("Ra(x) Rb(x) Rc(x)").unwrap();
        assert!(sv_conflict_pairs(&s).is_empty());
        assert!(mv_conflict_pairs(&s).is_empty());
    }
}
