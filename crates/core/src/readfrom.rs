//! READ-FROM relations and views.
//!
//! The READ-FROM relation of a (full) schedule is the set of triples
//! `(reader, entity, writer)` stating that a read step of `reader` on
//! `entity` was served the version written by `writer` (or the initial
//! version, written by the padding transaction `T0`).  The padded final
//! transaction `Tf` reads every entity, so the relation also records which
//! transaction produced the *final* version of each entity.
//!
//! Two (full) schedules are *view-equivalent* iff they have identical
//! READ-FROM relations (Section 2).

use crate::{EntityId, Schedule, TxId, VersionFunction, VersionSource};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One entry of a READ-FROM relation: `reader` reads `entity` from `writer`.
///
/// `reader` is [`TxId::FINAL`] for the padded final reads; `writer` is
/// [`TxId::INITIAL`] when the initial version is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReadFrom {
    /// The transaction issuing the read (or `Tf`).
    pub reader: TxId,
    /// The entity read.
    pub entity: EntityId,
    /// The transaction whose version is read (or `T0`).
    pub writer: TxId,
}

impl fmt::Display for ReadFrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reads {} from {}",
            self.reader, self.entity, self.writer
        )
    }
}

/// A READ-FROM relation: a set of [`ReadFrom`] triples.
///
/// Because the relation is a *set* of triples, two reads of the same entity
/// by the same transaction served by the same writer collapse into one
/// entry — exactly as in the paper, where the relation is defined as a set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReadFromRelation {
    entries: BTreeSet<ReadFrom>,
}

impl ReadFromRelation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an entry.
    pub fn insert(&mut self, entry: ReadFrom) {
        self.entries.insert(entry);
    }

    /// The entries in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = &ReadFrom> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if the relation contains the given triple.
    pub fn contains(&self, reader: TxId, entity: EntityId, writer: TxId) -> bool {
        self.entries.contains(&ReadFrom {
            reader,
            entity,
            writer,
        })
    }

    /// The READ-FROM relation of the *padded* full schedule `(schedule, vf)`.
    ///
    /// The padding is implicit: reads assigned [`VersionSource::Initial`]
    /// produce entries with writer `T0`, and one entry per accessed entity is
    /// produced for the final transaction `Tf` using `vf`'s final-read
    /// assignments (falling back to the last writer in the schedule when the
    /// version function does not pin them, which is what the standard
    /// version function of the padded schedule would do).
    pub fn of_full_schedule(schedule: &Schedule, vf: &VersionFunction) -> Self {
        let mut rel = ReadFromRelation::new();
        for pos in schedule.all_read_positions() {
            let step = schedule.steps()[pos];
            let source = vf.get(pos).unwrap_or_else(|| {
                schedule
                    .last_writer_before(pos, step.entity)
                    .map_or(VersionSource::Initial, VersionSource::Tx)
            });
            rel.insert(ReadFrom {
                reader: step.tx,
                entity: step.entity,
                writer: source.as_tx(),
            });
        }
        for entity in schedule.entities_accessed() {
            let source = vf.get_final(entity).unwrap_or_else(|| {
                schedule
                    .final_writer(entity)
                    .map_or(VersionSource::Initial, VersionSource::Tx)
            });
            rel.insert(ReadFrom {
                reader: TxId::FINAL,
                entity,
                writer: source.as_tx(),
            });
        }
        rel
    }

    /// The READ-FROM relation of the padded schedule under its *standard*
    /// version function (i.e. the single-version semantics).
    pub fn of_schedule(schedule: &Schedule) -> Self {
        Self::of_full_schedule(schedule, &VersionFunction::standard(schedule))
    }

    /// The *view* of transaction `tx`: the set of `(entity, writer)` pairs it
    /// reads (Section 2).
    pub fn view_of(&self, tx: TxId) -> BTreeSet<(EntityId, TxId)> {
        self.entries
            .iter()
            .filter(|e| e.reader == tx)
            .map(|e| (e.entity, e.writer))
            .collect()
    }

    /// Groups the relation by reader.
    pub fn by_reader(&self) -> BTreeMap<TxId, BTreeSet<(EntityId, TxId)>> {
        let mut out: BTreeMap<TxId, BTreeSet<(EntityId, TxId)>> = BTreeMap::new();
        for e in &self.entries {
            out.entry(e.reader)
                .or_default()
                .insert((e.entity, e.writer));
        }
        out
    }
}

impl FromIterator<ReadFrom> for ReadFromRelation {
    fn from_iter<I: IntoIterator<Item = ReadFrom>>(iter: I) -> Self {
        ReadFromRelation {
            entries: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for ReadFromRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "READ-FROM {{")?;
        for e in &self.entries {
            writeln!(f, "  {e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;

    #[test]
    fn standard_relation_of_simple_schedule() {
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y) Rc(y)").unwrap();
        let rel = ReadFromRelation::of_schedule(&s);
        assert!(rel.contains(TxId(2), EntityId(0), TxId(1)));
        assert!(rel.contains(TxId(3), EntityId(1), TxId(2)));
        // Final reads: x from A, y from B.
        assert!(rel.contains(TxId::FINAL, EntityId(0), TxId(1)));
        assert!(rel.contains(TxId::FINAL, EntityId(1), TxId(2)));
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn reads_with_no_writer_come_from_t0() {
        let s = Schedule::parse("Ra(x) Rb(x)").unwrap();
        let rel = ReadFromRelation::of_schedule(&s);
        assert!(rel.contains(TxId(1), EntityId(0), TxId::INITIAL));
        assert!(rel.contains(TxId(2), EntityId(0), TxId::INITIAL));
        assert!(rel.contains(TxId::FINAL, EntityId(0), TxId::INITIAL));
    }

    #[test]
    fn version_function_overrides_standard() {
        let s = Schedule::parse("Wa(x) Wb(x) Rc(x)").unwrap();
        let mut vf = VersionFunction::standard(&s);
        vf.assign(2, VersionSource::Tx(TxId(1)));
        vf.assign_final(EntityId(0), VersionSource::Tx(TxId(1)));
        let rel = ReadFromRelation::of_full_schedule(&s, &vf);
        assert!(rel.contains(TxId(3), EntityId(0), TxId(1)));
        assert!(rel.contains(TxId::FINAL, EntityId(0), TxId(1)));
        assert!(!rel.contains(TxId(3), EntityId(0), TxId(2)));
    }

    #[test]
    fn views_group_by_reader() {
        let s = Schedule::parse("Wa(x) Wa(y) Rb(x) Rb(y)").unwrap();
        let rel = ReadFromRelation::of_schedule(&s);
        let view_b = rel.view_of(TxId(2));
        assert_eq!(
            view_b,
            [(EntityId(0), TxId(1)), (EntityId(1), TxId(1))].into()
        );
        let by_reader = rel.by_reader();
        assert_eq!(by_reader.len(), 2); // B and Tf
        assert!(rel.view_of(TxId(9)).is_empty());
    }

    #[test]
    fn relation_is_a_set() {
        // Two reads of the same entity by the same reader from the same
        // writer collapse.
        let s = Schedule::parse("Wa(x) Rb(x) Rb(x)").unwrap();
        let rel = ReadFromRelation::of_schedule(&s);
        assert_eq!(rel.len(), 2); // B<-A and Tf<-A
    }

    #[test]
    fn display_mentions_every_entry() {
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let rel = ReadFromRelation::of_schedule(&s);
        let text = rel.to_string();
        assert!(text.contains("T2 reads x from T1"));
        assert!(text.contains("Tf reads x from T1"));
    }

    #[test]
    fn from_iterator_collects() {
        let rel: ReadFromRelation = vec![ReadFrom {
            reader: TxId(1),
            entity: EntityId(0),
            writer: TxId::INITIAL,
        }]
        .into_iter()
        .collect();
        assert_eq!(rel.len(), 1);
        assert!(!rel.is_empty());
        assert!(ReadFromRelation::new().is_empty());
    }
}
