//! Rendering schedules in the paper's two-dimensional figure layout.
//!
//! Figure 1 of the paper draws each schedule as a grid with one row per
//! transaction and time flowing left to right; a transaction's steps appear
//! in its row at the column corresponding to their position in the schedule.
//! [`grid`] reproduces that layout as plain text, which the example binaries
//! and the Figure 1 harness print.

use crate::Schedule;
use std::fmt::Write as _;

/// Renders `schedule` as the paper's grid layout.
///
/// ```
/// use mvcc_core::Schedule;
/// let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
/// let grid = mvcc_core::display::grid(&s);
/// assert!(grid.lines().count() >= 2);
/// assert!(grid.contains("T1:"));
/// ```
pub fn grid(schedule: &Schedule) -> String {
    let txs = schedule.tx_ids();
    if txs.is_empty() {
        return String::from("(empty schedule)\n");
    }
    // Column width: widest rendered step plus one space.
    let rendered: Vec<String> = schedule
        .steps()
        .iter()
        .map(|s| format!("{}({})", s.action, s.entity))
        .collect();
    let col_width = rendered.iter().map(|r| r.len()).max().unwrap_or(4) + 1;

    let label_width = txs.iter().map(|t| format!("{t}").len()).max().unwrap_or(2) + 1;

    let mut out = String::new();
    for &tx in &txs {
        let mut line = format!("{:<width$}", format!("{tx}:"), width = label_width + 1);
        for (pos, step) in schedule.steps().iter().enumerate() {
            if step.tx == tx {
                let _ = write!(line, "{:<width$}", rendered[pos], width = col_width);
            } else {
                let _ = write!(line, "{:<width$}", "", width = col_width);
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders a one-line summary: the linear schedule plus the count of steps
/// and transactions (used by the experiment tables).
pub fn summary(schedule: &Schedule) -> String {
    format!(
        "{} ({} steps, {} transactions)",
        schedule,
        schedule.len(),
        schedule.num_transactions()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;

    #[test]
    fn grid_has_one_row_per_transaction() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let g = grid(&s);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("T1:"));
        assert!(lines[1].starts_with("T2:"));
    }

    #[test]
    fn grid_columns_align_with_schedule_positions() {
        let s = Schedule::parse("Ra(x) Wb(y)").unwrap();
        let g = grid(&s);
        let lines: Vec<&str> = g.lines().collect();
        // T1's step is in the first column, T2's in the second: T2's row
        // must therefore have more leading blank space before its step.
        let t1_col = lines[0].find("R(x)").unwrap();
        let t2_col = lines[1].find("W(y)").unwrap();
        assert!(t2_col > t1_col);
    }

    #[test]
    fn empty_schedule_grid() {
        assert_eq!(grid(&Schedule::empty()), "(empty schedule)\n");
    }

    #[test]
    fn summary_mentions_counts() {
        let s = Schedule::parse("Ra(x) Wb(y)").unwrap();
        let text = summary(&s);
        assert!(text.contains("2 steps"));
        assert!(text.contains("2 transactions"));
    }
}
