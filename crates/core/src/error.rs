//! Error type for the core schedule model.

use std::fmt;

/// Errors raised while building, parsing or validating schedules and version
/// functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The schedule text could not be parsed.
    Parse {
        /// Zero-based token index at which parsing failed.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// A step sequence is not a valid shuffle of its transaction system
    /// (e.g. a transaction's steps appear out of program order).
    NotAShuffle {
        /// The offending transaction.
        tx: crate::TxId,
        /// Description of the problem.
        message: String,
    },
    /// A version function refers to a step that is not a read step, or
    /// assigns a version that is not available at that point of the schedule.
    InvalidVersionFunction {
        /// Index of the offending read step (schedule position), or the
        /// length of the schedule for the padded final reads.
        position: usize,
        /// Description of the problem.
        message: String,
    },
    /// An operation was asked about a transaction or entity that does not
    /// occur in the schedule.
    UnknownId(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse { position, message } => {
                write!(f, "parse error at token {position}: {message}")
            }
            CoreError::NotAShuffle { tx, message } => {
                write!(f, "steps of {tx} do not form a shuffle: {message}")
            }
            CoreError::InvalidVersionFunction { position, message } => {
                write!(f, "invalid version function at step {position}: {message}")
            }
            CoreError::UnknownId(what) => write!(f, "unknown identifier: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxId;

    #[test]
    fn display_parse_error() {
        let e = CoreError::Parse {
            position: 3,
            message: "expected '('".into(),
        };
        assert_eq!(e.to_string(), "parse error at token 3: expected '('");
    }

    #[test]
    fn display_not_a_shuffle() {
        let e = CoreError::NotAShuffle {
            tx: TxId(2),
            message: "duplicate step".into(),
        };
        assert!(e.to_string().contains("T2"));
    }

    #[test]
    fn display_invalid_version_function() {
        let e = CoreError::InvalidVersionFunction {
            position: 5,
            message: "write follows read".into(),
        };
        assert!(e.to_string().contains("step 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(CoreError::UnknownId("x".into()));
    }
}
