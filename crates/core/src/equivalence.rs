//! Equivalence notions between schedules.
//!
//! * **Conflict equivalence** (single-version): all single-version
//!   conflicting pairs appear in the same order in both schedules.
//! * **Multiversion conflict equivalence** (Section 3): all *multiversion*
//!   conflicting pairs of `s` (read before a later write of the same entity)
//!   appear in the same order in `s'`.  Note the asymmetry: this is *not* an
//!   equivalence relation, exactly as the paper points out.
//! * **View equivalence**: identical READ-FROM relations of the padded
//!   schedules (under the standard version function, or under explicitly
//!   provided version functions for *full* schedules).

use crate::conflict::{mv_conflicts, sv_conflicts};
use crate::{ReadFromRelation, Schedule, Step, VersionFunction};
use std::collections::HashMap;

/// Returns the position of every step of `schedule` keyed by the step's
/// occurrence: `(step, k)` means the `k`-th occurrence (0-based) of an
/// identical step value.  Duplicate steps (same transaction, action and
/// entity appearing twice) are disambiguated by occurrence index.
fn occurrence_positions(schedule: &Schedule) -> HashMap<(Step, usize), usize> {
    let mut counts: HashMap<Step, usize> = HashMap::new();
    let mut map = HashMap::new();
    for (pos, &step) in schedule.steps().iter().enumerate() {
        let k = counts.entry(step).or_insert(0);
        map.insert((step, *k), pos);
        *k += 1;
    }
    map
}

/// Checks that every ordered pair of steps of `a` selected by `pred` appears
/// in the same relative order in `b`.  Both schedules must contain the same
/// multiset of steps (i.e. be schedules of the same transaction system);
/// otherwise `false` is returned.
fn order_preserved(a: &Schedule, b: &Schedule, pred: impl Fn(&Step, &Step) -> bool) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let pos_b = occurrence_positions(b);
    let mut counts: HashMap<Step, usize> = HashMap::new();
    // Occurrence-indexed position of every step of `a` in `b`.
    let mut a_in_b: Vec<usize> = Vec::with_capacity(a.len());
    for &step in a.steps() {
        let k = counts.entry(step).or_insert(0);
        match pos_b.get(&(step, *k)) {
            Some(&p) => a_in_b.push(p),
            None => return false,
        }
        *k += 1;
    }
    let steps = a.steps();
    for i in 0..steps.len() {
        for j in (i + 1)..steps.len() {
            if pred(&steps[i], &steps[j]) && a_in_b[i] > a_in_b[j] {
                return false;
            }
        }
    }
    true
}

/// Single-version conflict equivalence: `a` and `b` are schedules of the same
/// transaction system and order every single-version conflicting pair the
/// same way.
pub fn conflict_equivalent(a: &Schedule, b: &Schedule) -> bool {
    order_preserved(a, b, sv_conflicts) && order_preserved(b, a, sv_conflicts)
}

/// Multiversion conflict equivalence of `a` **to** `b` (Section 3): every
/// multiversion conflicting pair of `a` appears in the same order in `b`.
///
/// This relation is *not* symmetric; [`mv_conflict_equivalent`] checks the
/// direction used in the definition of MVCSR ("s is multiversion
/// conflict-equivalent to s′").
pub fn mv_conflict_equivalent(a: &Schedule, b: &Schedule) -> bool {
    order_preserved(a, b, mv_conflicts)
}

/// View equivalence of two schedules under their standard version functions
/// (padded with `T0`/`Tf`), i.e. the single-version notion used to define
/// view-serializability.
pub fn view_equivalent(a: &Schedule, b: &Schedule) -> bool {
    if a.tx_system() != b.tx_system() {
        return false;
    }
    ReadFromRelation::of_schedule(a) == ReadFromRelation::of_schedule(b)
}

/// View equivalence of two *full* schedules `(a, va)` and `(b, vb)`:
/// identical READ-FROM relations of the padded full schedules.
pub fn full_view_equivalent(
    a: &Schedule,
    va: &VersionFunction,
    b: &Schedule,
    vb: &VersionFunction,
) -> bool {
    if a.tx_system() != b.tx_system() {
        return false;
    }
    ReadFromRelation::of_full_schedule(a, va) == ReadFromRelation::of_full_schedule(b, vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, TxId};
    use crate::{Schedule, VersionFunction, VersionSource};

    #[test]
    fn conflict_equivalence_is_symmetric_and_detects_reordering() {
        let a = Schedule::parse("Ra(x) Wb(y) Wa(x)").unwrap();
        let b = Schedule::parse("Wb(y) Ra(x) Wa(x)").unwrap();
        assert!(conflict_equivalent(&a, &b));
        assert!(conflict_equivalent(&b, &a));

        let c = Schedule::parse("Ra(x) Wa(x) Rb(x)").unwrap();
        let d = Schedule::parse("Ra(x) Rb(x) Wa(x)").unwrap();
        assert!(!conflict_equivalent(&c, &d));
    }

    #[test]
    fn conflict_equivalence_requires_same_system() {
        let a = Schedule::parse("Ra(x)").unwrap();
        let b = Schedule::parse("Rb(x)").unwrap();
        assert!(!conflict_equivalent(&a, &b));
        let c = Schedule::parse("Ra(x) Ra(x)").unwrap();
        assert!(!conflict_equivalent(&a, &c));
    }

    #[test]
    fn mv_conflict_equivalence_is_asymmetric() {
        // s:  Wa(x) Rb(x)   (no MV conflicts: write before read)
        // s': Rb(x) Wa(x)   (one MV conflict: the read precedes the write)
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let s_prime = Schedule::parse("Rb(x) Wa(x)").unwrap();
        // s has no MV conflicting pairs, so it is MV-conflict-equivalent to
        // anything with the same steps ...
        assert!(mv_conflict_equivalent(&s, &s_prime));
        // ... but s' has the pair (Rb, Wa) which appears reversed in s.
        assert!(!mv_conflict_equivalent(&s_prime, &s));
    }

    #[test]
    fn view_equivalence_standard() {
        // Classic: these two are view-equivalent but order WW differently.
        let a = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        let serial_ab = Schedule::serial(&a.tx_system(), &[TxId(1), TxId(2)]);
        assert!(view_equivalent(&a, &serial_ab));

        let c = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!view_equivalent(&c, &serial_ab));
    }

    #[test]
    fn full_view_equivalence_with_custom_version_function() {
        // s2 of Figure 1: MVSR via a version function under which the padded
        // final transaction observes A's version of x (an *older* version
        // than the latest one, which C wrote).
        let s = Schedule::parse("Wa(x) Rb(x) Rc(y) Wb(y) Wc(x)").unwrap();
        let serial = Schedule::serial(&s.tx_system(), &[TxId(3), TxId(1), TxId(2)]);
        let v_serial = VersionFunction::standard(&serial);

        let mut v = VersionFunction::standard(&s);
        v.assign_final(EntityId(0), VersionSource::Tx(TxId(1))); // final x observed from A

        assert!(full_view_equivalent(&s, &v, &serial, &v_serial));
        // The standard version function does not serialize it this way.
        let v_std = VersionFunction::standard(&s);
        assert!(!full_view_equivalent(&s, &v_std, &serial, &v_serial));
    }

    #[test]
    fn order_preserved_handles_duplicate_steps() {
        // A transaction reading the same entity twice: occurrences must be
        // matched positionally, not collapsed.
        let a = Schedule::parse("Ra(x) Wb(x) Ra(x)").unwrap();
        let b = Schedule::parse("Ra(x) Ra(x) Wb(x)").unwrap();
        // In `a` the second read follows the write; in `b` it precedes it.
        assert!(!conflict_equivalent(&a, &b));
        assert!(!mv_conflict_equivalent(&b, &a));
    }

    #[test]
    fn identical_schedules_are_equivalent_under_every_notion() {
        let s = Schedule::parse("Ra(x) Wb(x) Rc(y) Wa(y)").unwrap();
        assert!(conflict_equivalent(&s, &s));
        assert!(mv_conflict_equivalent(&s, &s));
        assert!(view_equivalent(&s, &s));
    }
}
