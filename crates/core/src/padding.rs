//! Explicit padding of schedules with the initial transaction `T0` and the
//! final transaction `Tf`.
//!
//! The paper pads every schedule with an initial transaction `T0` that writes
//! all entities and a final transaction `Tf` that reads all entities; "the
//! padded schedule of s is correct iff s is correct".  Most of this workspace
//! treats padding *implicitly* (see [`crate::readfrom`]), which avoids
//! cluttering schedules with bookkeeping steps; this module provides the
//! explicit, materialised padded schedule for code (and tests) that want to
//! work with it directly, plus helpers to go back and forth.

use crate::{Schedule, Step, TxId};

/// A materialised padded schedule: `T0`'s writes, then the original steps,
/// then `Tf`'s reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedSchedule {
    /// The padded step sequence.
    schedule: Schedule,
    /// Number of `T0` write steps at the front.
    prefix_len: usize,
    /// Number of `Tf` read steps at the back.
    suffix_len: usize,
}

impl PaddedSchedule {
    /// Pads `schedule` with `T0` writes of every accessed entity at the front
    /// and `Tf` reads of every accessed entity at the back.
    pub fn new(schedule: &Schedule) -> Self {
        let entities = schedule.entities_accessed();
        let mut steps: Vec<Step> = Vec::with_capacity(schedule.len() + 2 * entities.len());
        for &e in &entities {
            steps.push(Step::write(TxId::INITIAL, e));
        }
        steps.extend_from_slice(schedule.steps());
        for &e in &entities {
            steps.push(Step::read(TxId::FINAL, e));
        }
        PaddedSchedule {
            schedule: Schedule::from_steps(steps),
            prefix_len: entities.len(),
            suffix_len: entities.len(),
        }
    }

    /// The padded schedule as a plain [`Schedule`].
    pub fn as_schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Number of `T0` steps at the front.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Number of `Tf` steps at the back.
    pub fn suffix_len(&self) -> usize {
        self.suffix_len
    }

    /// Recovers the original, unpadded schedule.
    pub fn unpadded(&self) -> Schedule {
        let steps = self.schedule.steps();
        Schedule::from_steps(steps[self.prefix_len..steps.len() - self.suffix_len].to_vec())
    }

    /// Maps a position of the unpadded schedule to the corresponding
    /// position of the padded schedule.
    pub fn pad_position(&self, unpadded_pos: usize) -> usize {
        unpadded_pos + self.prefix_len
    }

    /// Maps a position of the padded schedule back to the unpadded schedule,
    /// returning `None` for padding steps.
    pub fn unpad_position(&self, padded_pos: usize) -> Option<usize> {
        if padded_pos < self.prefix_len {
            return None;
        }
        let p = padded_pos - self.prefix_len;
        if p < self.schedule.len() - self.prefix_len - self.suffix_len {
            Some(p)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EntityId, Schedule};

    #[test]
    fn padding_adds_t0_writes_and_tf_reads() {
        let s = Schedule::parse("Ra(x) Wb(y)").unwrap();
        let p = PaddedSchedule::new(&s);
        let steps = p.as_schedule().steps();
        assert_eq!(steps.len(), 2 + 2 + 2);
        assert_eq!(steps[0], Step::write(TxId::INITIAL, EntityId(0)));
        assert_eq!(steps[1], Step::write(TxId::INITIAL, EntityId(1)));
        assert_eq!(steps[4], Step::read(TxId::FINAL, EntityId(0)));
        assert_eq!(steps[5], Step::read(TxId::FINAL, EntityId(1)));
        assert_eq!(p.prefix_len(), 2);
        assert_eq!(p.suffix_len(), 2);
    }

    #[test]
    fn unpadded_round_trips() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x)").unwrap();
        let p = PaddedSchedule::new(&s);
        assert_eq!(p.unpadded().steps(), s.steps());
    }

    #[test]
    fn position_mapping() {
        let s = Schedule::parse("Ra(x) Wa(y) Rb(z)").unwrap();
        let p = PaddedSchedule::new(&s);
        assert_eq!(p.pad_position(0), 3);
        assert_eq!(p.unpad_position(3), Some(0));
        assert_eq!(p.unpad_position(0), None, "T0 write");
        assert_eq!(p.unpad_position(7), None, "Tf read");
    }

    #[test]
    fn padded_reads_from_t0_under_standard_version_function() {
        use crate::ReadFromRelation;
        let s = Schedule::parse("Ra(x)").unwrap();
        let p = PaddedSchedule::new(&s);
        // In the materialised padded schedule, the standard version function
        // sends A's read to T0's explicit write.
        let rel = ReadFromRelation::of_schedule(p.as_schedule());
        assert!(rel.contains(TxId(1), EntityId(0), TxId::INITIAL));
    }

    #[test]
    fn empty_schedule_pads_to_empty() {
        let p = PaddedSchedule::new(&Schedule::empty());
        assert!(p.as_schedule().is_empty());
        assert!(p.unpadded().is_empty());
    }
}
