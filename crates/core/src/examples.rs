//! The worked examples of the paper.
//!
//! * [`figure1`] returns the six example schedules of Figure 1, one per
//!   region of the "topography of all schedules".
//! * [`section4_pair`] returns the pair `{s, s'}` of MVCSR schedules used in
//!   Section 4 to show that MVCSR is **not** on-line schedulable: both start
//!   with the same prefix, but `s` can only be serialized as `A B` (which
//!   forces `R_B(x)` to read A's version) while `s'` can only be serialized
//!   as `B A` (which forces `R_B(x)` to read the initial version).
//!
//! Two of the Figure 1 schedules are reconstructed from a scan of the paper
//! whose transaction lists are ambiguous (`s3`'s fourth transaction and
//! `s5`'s third transaction); the versions used here are chosen so that every
//! region of Figure 1 is witnessed, and the classification of every example
//! is asserted by the integration tests in `tests/theorems.rs` and by the
//! Figure 1 harness.

use crate::Schedule;

/// Which region of Figure 1 a schedule belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Figure1Region {
    /// Outside MVSR altogether.
    NotMvsr,
    /// MVSR, but neither view-serializable nor MVCSR.
    MvsrOnly,
    /// View-serializable (SR) but not MVCSR (hence not CSR).
    SrNotMvcsr,
    /// MVCSR but not view-serializable.
    MvcsrNotSr,
    /// Both MVCSR and view-serializable, but not CSR.
    MvcsrAndSrNotCsr,
    /// Serial (hence in every class).
    Serial,
}

impl Figure1Region {
    /// Every region, in the order the paper lists its examples.
    pub fn all() -> [Figure1Region; 6] {
        [
            Figure1Region::NotMvsr,
            Figure1Region::MvsrOnly,
            Figure1Region::SrNotMvcsr,
            Figure1Region::MvcsrNotSr,
            Figure1Region::MvcsrAndSrNotCsr,
            Figure1Region::Serial,
        ]
    }

    /// The paper's one-line description of the region.
    pub fn description(self) -> &'static str {
        match self {
            Figure1Region::NotMvsr => "a non-MVSR schedule",
            Figure1Region::MvsrOnly => "an MVSR schedule that is not SR or MVCSR",
            Figure1Region::SrNotMvcsr => "an SR schedule that is not MVCSR",
            Figure1Region::MvcsrNotSr => "an MVCSR schedule that is not SR",
            Figure1Region::MvcsrAndSrNotCsr => "an MVCSR schedule that is SR but not CSR",
            Figure1Region::Serial => "any serial schedule",
        }
    }
}

/// One example of Figure 1: the schedule and the region it witnesses.
#[derive(Debug, Clone)]
pub struct Figure1Example {
    /// Index in the figure (1..=6).
    pub number: usize,
    /// The example schedule.
    pub schedule: Schedule,
    /// The region it is claimed to witness.
    pub region: Figure1Region,
}

/// The six example schedules of Figure 1.
///
/// Transactions are written `a`, `b`, `c`, `d` (mapping to `T1..T4`).
pub fn figure1() -> Vec<Figure1Example> {
    // lint: allow(unwrap) — the worked examples are compile-time constants
    let parse = |text: &str| Schedule::parse(text).expect("example schedules are well formed");
    vec![
        // (1) Both transactions read x before either writes it; no version
        // function can make either read the other's write.
        Figure1Example {
            number: 1,
            schedule: parse("Ra(x) Rb(x) Wa(x) Wb(x)"),
            region: Figure1Region::NotMvsr,
        },
        // (2) A: W(x); B: R(x) W(y); C: R(y) W(x).  The standard version
        // function cannot serialize it, but letting the final state observe
        // A's version of x serializes it as C A B.
        Figure1Example {
            number: 2,
            schedule: parse("Wa(x) Rb(x) Rc(y) Wb(y) Wc(x)"),
            region: Figure1Region::MvsrOnly,
        },
        // (3) A: W(x); B: R(x) W(y); C: R(y) W(x); D: W(x).
        // View-serializable as C A B D, but the multiversion conflict graph
        // has the cycle B -> C -> B.  (The scan of the paper is ambiguous on
        // D's entity; a final writer of x is required for the region to be
        // non-empty, see the module documentation.)
        Figure1Example {
            number: 3,
            schedule: parse("Wa(x) Rb(x) Rc(y) Wc(x) Wb(y) Wd(x)"),
            region: Figure1Region::SrNotMvcsr,
        },
        // (4) A: R(x) W(x) R(y) W(y); B: R(x) R(y) W(y).  MVCSR (the only
        // multiversion conflict arc is B -> A) but the standard version
        // function matches no serial order; serializable as B A only by
        // sending R_B(x) to the initial version.
        Figure1Example {
            number: 4,
            schedule: parse("Ra(x) Wa(x) Rb(x) Rb(y) Wb(y) Ra(y) Wa(y)"),
            region: Figure1Region::MvcsrNotSr,
        },
        // (5) A: R(x) W(x) W(y); B: R(x) W(y); C: W(y).  The conflict graph
        // has the classic W-W / R-W cycle between A and B, but C's final
        // blind write of y masks it, so the schedule is view-serializable
        // (as A B C); it has no multiversion conflicts at all.
        Figure1Example {
            number: 5,
            schedule: parse("Ra(x) Wa(x) Rb(x) Wb(y) Wa(y) Wc(y)"),
            region: Figure1Region::MvcsrAndSrNotCsr,
        },
        // (6) Any serial schedule.
        Figure1Example {
            number: 6,
            schedule: parse("Ra(x) Wa(x) Rb(x) Wb(x)"),
            region: Figure1Region::Serial,
        },
    ]
}

/// The Section 4 pair `{s, s'}` showing that MVCSR (indeed, even DMVSR) is
/// not on-line schedulable.
///
/// Both schedules share the prefix `Ra(x) Wa(x) Rb(x)`.  `s` is serializable
/// only as `A B`, which requires the version function to map `Rb(x)` to A's
/// version; `s'` is serializable only as `B A`, which requires it to map
/// `Rb(x)` to the initial version.  No single version function for the
/// common prefix extends to serializing version functions of both, so no
/// multiversion scheduler can accept both schedules.
pub fn section4_pair() -> (Schedule, Schedule) {
    // lint: allow(unwrap) — the worked examples are compile-time constants
    let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Ra(y) Wa(y) Rb(y) Wb(y)").expect("well formed");
    let s_prime =
        // lint: allow(unwrap) — the worked examples are compile-time constants
        Schedule::parse("Ra(x) Wa(x) Rb(x) Rb(y) Wb(y) Ra(y) Wa(y)").expect("well formed");
    (s, s_prime)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_six_examples_in_region_order() {
        let examples = figure1();
        assert_eq!(examples.len(), 6);
        for (i, ex) in examples.iter().enumerate() {
            assert_eq!(ex.number, i + 1);
            assert_eq!(ex.region, Figure1Region::all()[i]);
        }
    }

    #[test]
    fn only_the_last_example_is_serial() {
        let examples = figure1();
        for ex in &examples {
            let expect_serial = ex.region == Figure1Region::Serial;
            assert_eq!(
                ex.schedule.is_serial(),
                expect_serial,
                "example {} serial mismatch",
                ex.number
            );
        }
    }

    #[test]
    fn section4_pair_share_a_prefix_of_three_steps() {
        let (s, s_prime) = section4_pair();
        assert_eq!(s.common_prefix_len(&s_prime), 3);
        assert_eq!(s.tx_system(), s_prime.tx_system());
        assert_eq!(s.len(), 7);
        assert_eq!(s_prime.len(), 7);
    }

    #[test]
    fn region_descriptions_are_distinct() {
        use std::collections::BTreeSet;
        let set: BTreeSet<&str> = Figure1Region::all()
            .iter()
            .map(|r| r.description())
            .collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn example_schedules_are_valid_shuffles_of_their_systems() {
        for ex in figure1() {
            let sys = ex.schedule.tx_system();
            assert!(ex.schedule.is_shuffle_of(&sys));
        }
    }
}
