//! Version functions: the mapping from read steps to the versions they read.
//!
//! In the multiversion model each entity carries an ordered set of versions;
//! each write appends a version and each read is assigned one of the existing
//! versions.  A schedule `s` plus a version function `V` forms a *full
//! schedule* `(s, V)`.  `V` must map every read step of `s` to a *previous*
//! write step of the same entity (or to the implicit initial version written
//! by the padding transaction `T0`).
//!
//! The *standard* version function `V_s` maps every read to the last previous
//! write of the same entity — i.e. what a single-version database would do.

use crate::{CoreError, EntityId, Schedule, TxId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The origin of the version served to a read step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VersionSource {
    /// The initial version, written by the padding transaction `T0` before
    /// the schedule starts.
    Initial,
    /// The version written by the (unique) write step of this transaction on
    /// the entity in question that precedes the read.
    Tx(TxId),
}

impl VersionSource {
    /// Converts to the padded transaction id (`T0` for the initial version).
    pub fn as_tx(self) -> TxId {
        match self {
            VersionSource::Initial => TxId::INITIAL,
            VersionSource::Tx(t) => t,
        }
    }

    /// Builds a source from a padded transaction id.
    pub fn from_tx(tx: TxId) -> Self {
        if tx == TxId::INITIAL {
            VersionSource::Initial
        } else {
            VersionSource::Tx(tx)
        }
    }
}

impl fmt::Display for VersionSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionSource::Initial => write!(f, "T0"),
            VersionSource::Tx(t) => write!(f, "{t}"),
        }
    }
}

/// A version function for a particular schedule.
///
/// Ordinary read steps are keyed by their position in the schedule.  The
/// *padded* final transaction `Tf` reads every entity after the schedule
/// ends; its reads are keyed by entity (see [`VersionFunction::assign_final`]
/// and [`VersionFunction::get_final`]).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VersionFunction {
    /// Assignment for each read step position of the schedule.
    assignments: BTreeMap<usize, VersionSource>,
    /// Assignment for the padded final reads (`Tf`), one per entity.
    final_reads: BTreeMap<EntityId, VersionSource>,
}

impl VersionFunction {
    /// Creates an empty version function (no reads assigned yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns the read at schedule position `pos` to `source`.
    pub fn assign(&mut self, pos: usize, source: VersionSource) {
        self.assignments.insert(pos, source);
    }

    /// Assigns the padded final read of `entity` to `source`.
    pub fn assign_final(&mut self, entity: EntityId, source: VersionSource) {
        self.final_reads.insert(entity, source);
    }

    /// The source assigned to the read at position `pos`, if any.
    pub fn get(&self, pos: usize) -> Option<VersionSource> {
        self.assignments.get(&pos).copied()
    }

    /// The source assigned to the padded final read of `entity`, if any.
    pub fn get_final(&self, entity: EntityId) -> Option<VersionSource> {
        self.final_reads.get(&entity).copied()
    }

    /// Iterates over `(position, source)` assignments of ordinary reads.
    pub fn iter(&self) -> impl Iterator<Item = (usize, VersionSource)> + '_ {
        self.assignments.iter().map(|(&p, &s)| (p, s))
    }

    /// Iterates over the padded final read assignments.
    pub fn iter_final(&self) -> impl Iterator<Item = (EntityId, VersionSource)> + '_ {
        self.final_reads.iter().map(|(&e, &s)| (e, s))
    }

    /// Number of assigned ordinary reads.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` if nothing has been assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty() && self.final_reads.is_empty()
    }

    /// The *standard* version function `V_s` of `schedule`: every read
    /// (including the padded final reads) is assigned the last previous
    /// write of the same entity.
    pub fn standard(schedule: &Schedule) -> Self {
        let mut vf = VersionFunction::new();
        for pos in schedule.all_read_positions() {
            let entity = schedule.steps()[pos].entity;
            let source = schedule
                .last_writer_before(pos, entity)
                .map_or(VersionSource::Initial, VersionSource::Tx);
            vf.assign(pos, source);
        }
        for entity in schedule.entities_accessed() {
            let source = schedule
                .final_writer(entity)
                .map_or(VersionSource::Initial, VersionSource::Tx);
            vf.assign_final(entity, source);
        }
        vf
    }

    /// Validates this version function against `schedule`:
    ///
    /// * every read step of the schedule must be assigned;
    /// * every padded final read must be assigned;
    /// * an assignment to `Tx(t)` is only valid if `t` has a write step on
    ///   the entity *before* the read position (any write of the entity, for
    ///   the final reads). Reading a version written earlier by the *same*
    ///   transaction is allowed, exactly as in the paper's model.
    pub fn validate(&self, schedule: &Schedule) -> Result<(), CoreError> {
        for pos in schedule.all_read_positions() {
            let step = schedule.steps()[pos];
            let source = self.get(pos).ok_or(CoreError::InvalidVersionFunction {
                position: pos,
                message: format!("read {step} has no assigned version"),
            })?;
            match source {
                VersionSource::Initial => {}
                VersionSource::Tx(writer) => {
                    let has_previous_write = schedule.steps()[..pos]
                        .iter()
                        .any(|w| w.is_write() && w.entity == step.entity && w.tx == writer);
                    if !has_previous_write {
                        return Err(CoreError::InvalidVersionFunction {
                            position: pos,
                            message: format!(
                                "read {step} assigned to {writer}, which has no earlier write of {}",
                                step.entity
                            ),
                        });
                    }
                }
            }
        }
        for entity in schedule.entities_accessed() {
            let source = self
                .get_final(entity)
                .ok_or(CoreError::InvalidVersionFunction {
                    position: schedule.len(),
                    message: format!("final read of {entity} has no assigned version"),
                })?;
            if let VersionSource::Tx(writer) = source {
                let has_write = schedule
                    .steps()
                    .iter()
                    .any(|w| w.is_write() && w.entity == entity && w.tx == writer);
                if !has_write {
                    return Err(CoreError::InvalidVersionFunction {
                        position: schedule.len(),
                        message: format!(
                            "final read of {entity} assigned to {writer}, which never writes it"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// `true` if this version function agrees with `other` on every read
    /// position both of them assign (used when checking extensions of a
    /// prefix's version function, Section 4).
    pub fn agrees_with(&self, other: &VersionFunction) -> bool {
        self.assignments
            .iter()
            .all(|(pos, src)| other.assignments.get(pos).map_or(true, |o| o == src))
    }

    /// `true` if this version function extends `prefix_vf`: every assignment
    /// of `prefix_vf` is present with the same value.
    pub fn extends(&self, prefix_vf: &VersionFunction) -> bool {
        prefix_vf
            .assignments
            .iter()
            .all(|(pos, src)| self.assignments.get(pos) == Some(src))
    }

    /// Restricts this version function to reads at positions `< len`
    /// (dropping the padded final reads, which belong to the full schedule).
    pub fn restrict(&self, len: usize) -> VersionFunction {
        VersionFunction {
            assignments: self
                .assignments
                .iter()
                .filter(|(&p, _)| p < len)
                .map(|(&p, &s)| (p, s))
                .collect(),
            final_reads: BTreeMap::new(),
        }
    }

    /// Enumerates every valid version function of `schedule` (all
    /// combinations of admissible sources for every read, including the
    /// padded final reads).  Exponential; intended for small schedules in
    /// tests and exact checkers.
    pub fn enumerate_all(schedule: &Schedule) -> Vec<VersionFunction> {
        let reads = schedule.all_read_positions();
        let entities = schedule.entities_accessed();
        // Admissible sources per read.
        let mut options: Vec<Vec<VersionSource>> = Vec::new();
        for &pos in &reads {
            let step = schedule.steps()[pos];
            let mut opts = vec![VersionSource::Initial];
            let mut seen = std::collections::BTreeSet::new();
            for w in schedule.steps()[..pos].iter() {
                if w.is_write() && w.entity == step.entity && seen.insert(w.tx) {
                    opts.push(VersionSource::Tx(w.tx));
                }
            }
            options.push(opts);
        }
        let mut final_options: Vec<(EntityId, Vec<VersionSource>)> = Vec::new();
        for &entity in &entities {
            let mut opts = vec![VersionSource::Initial];
            let mut seen = std::collections::BTreeSet::new();
            for w in schedule.steps() {
                if w.is_write() && w.entity == entity && seen.insert(w.tx) {
                    opts.push(VersionSource::Tx(w.tx));
                }
            }
            final_options.push((entity, opts));
        }

        let mut out = Vec::new();
        let mut current = VersionFunction::new();
        fn rec_reads(
            reads: &[usize],
            options: &[Vec<VersionSource>],
            idx: usize,
            current: &mut VersionFunction,
            final_options: &[(EntityId, Vec<VersionSource>)],
            out: &mut Vec<VersionFunction>,
        ) {
            if idx == reads.len() {
                rec_finals(final_options, 0, current, out);
                return;
            }
            for &src in &options[idx] {
                current.assign(reads[idx], src);
                rec_reads(reads, options, idx + 1, current, final_options, out);
            }
            current.assignments.remove(&reads[idx]);
        }
        fn rec_finals(
            final_options: &[(EntityId, Vec<VersionSource>)],
            idx: usize,
            current: &mut VersionFunction,
            out: &mut Vec<VersionFunction>,
        ) {
            if idx == final_options.len() {
                out.push(current.clone());
                return;
            }
            let (entity, ref opts) = final_options[idx];
            for &src in opts {
                current.assign_final(entity, src);
                rec_finals(final_options, idx + 1, current, out);
            }
            current.final_reads.remove(&entity);
        }
        rec_reads(&reads, &options, 0, &mut current, &final_options, &mut out);
        out
    }
}

impl fmt::Display for VersionFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (pos, src) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "#{pos}←{src}")?;
        }
        for (entity, src) in self.iter_final() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "Tf({entity})←{src}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schedule;

    #[test]
    fn standard_reads_last_previous_write() {
        let s = Schedule::parse("Wa(x) Rb(x) Wc(x) Rd(x)").unwrap();
        let vf = VersionFunction::standard(&s);
        assert_eq!(vf.get(1), Some(VersionSource::Tx(TxId(1))));
        assert_eq!(vf.get(3), Some(VersionSource::Tx(TxId(3))));
        assert_eq!(vf.get_final(EntityId(0)), Some(VersionSource::Tx(TxId(3))));
        assert!(vf.validate(&s).is_ok());
    }

    #[test]
    fn standard_reads_initial_when_no_writer() {
        let s = Schedule::parse("Ra(x) Rb(y)").unwrap();
        let vf = VersionFunction::standard(&s);
        assert_eq!(vf.get(0), Some(VersionSource::Initial));
        assert_eq!(vf.get(1), Some(VersionSource::Initial));
        assert_eq!(vf.get_final(EntityId(0)), Some(VersionSource::Initial));
        assert!(vf.validate(&s).is_ok());
    }

    #[test]
    fn non_standard_assignment_to_older_version_is_valid() {
        // Wa(x) Wb(x) Rc(x): the read may be served A's version even though
        // B's is newer -- that is the whole point of multiversion schedulers.
        let s = Schedule::parse("Wa(x) Wb(x) Rc(x)").unwrap();
        let mut vf = VersionFunction::standard(&s);
        vf.assign(2, VersionSource::Tx(TxId(1)));
        assert!(vf.validate(&s).is_ok());
        vf.assign(2, VersionSource::Initial);
        assert!(vf.validate(&s).is_ok());
    }

    #[test]
    fn assignment_to_later_write_is_invalid() {
        // Rc(x) happens before Wb(x): no version function may send the read
        // to B ("a read that arrived too early", Section 3).
        let s = Schedule::parse("Wa(x) Rc(x) Wb(x)").unwrap();
        let mut vf = VersionFunction::standard(&s);
        vf.assign(1, VersionSource::Tx(TxId(2)));
        assert!(vf.validate(&s).is_err());
    }

    #[test]
    fn missing_assignment_is_invalid() {
        let s = Schedule::parse("Ra(x)").unwrap();
        let vf = VersionFunction::new();
        assert!(vf.validate(&s).is_err());
    }

    #[test]
    fn own_transaction_assignment_is_valid() {
        // A transaction that writes x and later reads x may (and, under the
        // standard version function, does) read its own version.
        let s = Schedule::parse("Wa(x) Ra(x)").unwrap();
        let vf = VersionFunction::standard(&s);
        assert_eq!(vf.get(1), Some(VersionSource::Tx(TxId(1))));
        assert!(vf.validate(&s).is_ok());
    }

    #[test]
    fn final_read_of_non_writer_is_invalid() {
        let s = Schedule::parse("Ra(x)").unwrap();
        let mut vf = VersionFunction::standard(&s);
        vf.assign_final(EntityId(0), VersionSource::Tx(TxId(1)));
        assert!(vf.validate(&s).is_err());
    }

    #[test]
    fn enumerate_all_counts() {
        // Wa(x) Wb(x) Rc(x): read has 3 options (T0, A, B); final read of x
        // has 3 options -> 9 version functions.
        let s = Schedule::parse("Wa(x) Wb(x) Rc(x)").unwrap();
        let all = VersionFunction::enumerate_all(&s);
        assert_eq!(all.len(), 9);
        assert!(all.iter().all(|vf| vf.validate(&s).is_ok()));
        // All distinct.
        let set: std::collections::BTreeSet<String> = all.iter().map(|v| v.to_string()).collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn extends_and_restrict() {
        let s = Schedule::parse("Wa(x) Rb(x) Rc(x)").unwrap();
        let full = VersionFunction::standard(&s);
        let prefix = full.restrict(2);
        assert_eq!(prefix.len(), 1);
        assert!(full.extends(&prefix));
        let mut other = prefix.clone();
        other.assign(1, VersionSource::Initial);
        assert!(!full.extends(&other));
        assert!(full.agrees_with(&prefix));
        assert!(!other.agrees_with(&full));
    }

    #[test]
    fn version_source_round_trip() {
        assert_eq!(VersionSource::Initial.as_tx(), TxId::INITIAL);
        assert_eq!(
            VersionSource::from_tx(TxId::INITIAL),
            VersionSource::Initial
        );
        assert_eq!(VersionSource::from_tx(TxId(3)), VersionSource::Tx(TxId(3)));
        assert_eq!(VersionSource::Tx(TxId(3)).as_tx(), TxId(3));
    }

    #[test]
    fn display_is_readable() {
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let vf = VersionFunction::standard(&s);
        let text = vf.to_string();
        assert!(text.contains("#1←T1"));
        assert!(text.contains("Tf(x)←T1"));
    }
}
