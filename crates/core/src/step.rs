//! Steps: the atomic read and write accesses issued by transactions.

use crate::{EntityId, TxId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of access a step performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Action {
    /// A read step `R_i(x)`.
    Read,
    /// A write step `W_i(x)`: appends a new version of the entity.
    Write,
}

impl Action {
    /// `true` for [`Action::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, Action::Read)
    }

    /// `true` for [`Action::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Action::Write)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Read => write!(f, "R"),
            Action::Write => write!(f, "W"),
        }
    }
}

/// A single step of a schedule: transaction `tx` performs `action` on
/// `entity`.
///
/// Following the paper, a write step's new value is an uninterpreted function
/// of the values previously read by the same transaction, so the step itself
/// carries no value payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Step {
    /// The issuing transaction.
    pub tx: TxId,
    /// Whether this is a read or a write.
    pub action: Action,
    /// The accessed entity.
    pub entity: EntityId,
}

impl Step {
    /// Convenience constructor for a read step.
    #[inline]
    pub fn read(tx: TxId, entity: EntityId) -> Self {
        Step {
            tx,
            action: Action::Read,
            entity,
        }
    }

    /// Convenience constructor for a write step.
    #[inline]
    pub fn write(tx: TxId, entity: EntityId) -> Self {
        Step {
            tx,
            action: Action::Write,
            entity,
        }
    }

    /// `true` if this is a read step.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.action.is_read()
    }

    /// `true` if this is a write step.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.action.is_write()
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}({})", self.action, self.tx.0, self.entity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_action() {
        let r = Step::read(TxId(1), EntityId(0));
        let w = Step::write(TxId(2), EntityId(1));
        assert!(r.is_read() && !r.is_write());
        assert!(w.is_write() && !w.is_read());
        assert_eq!(r.tx, TxId(1));
        assert_eq!(w.entity, EntityId(1));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Step::read(TxId(1), EntityId(0)).to_string(), "R1(x)");
        assert_eq!(Step::write(TxId(3), EntityId(1)).to_string(), "W3(y)");
    }

    #[test]
    fn action_predicates() {
        assert!(Action::Read.is_read());
        assert!(!Action::Read.is_write());
        assert!(Action::Write.is_write());
        assert_eq!(Action::Read.to_string(), "R");
        assert_eq!(Action::Write.to_string(), "W");
    }

    #[test]
    fn steps_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Step::read(TxId(1), EntityId(0)));
        set.insert(Step::read(TxId(1), EntityId(0)));
        set.insert(Step::write(TxId(1), EntityId(0)));
        assert_eq!(set.len(), 2);
    }
}
