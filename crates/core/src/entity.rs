//! Entities: the atomically-accessed data items of the model.
//!
//! The paper deliberately leaves entities uninterpreted ("they can be files,
//! records, data items, physical disk blocks, etc."); we only need stable,
//! cheap identifiers.  Entities are interned: an [`EntityInterner`] maps
//! human-readable names (`"x"`, `"y"`, `"account_17"`) to dense [`EntityId`]s.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier for a database entity.
///
/// The `u32` payload is an index into the interner that produced it (or is
/// chosen directly by callers that do not need names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u32);

impl EntityId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small ids get the paper's letters x, y, z, u, v, w...; larger ids a
        // generic `e<N>` name.  This is only cosmetic; equality is by id.
        const LETTERS: [&str; 6] = ["x", "y", "z", "u", "v", "w"];
        if (self.0 as usize) < LETTERS.len() {
            write!(f, "{}", LETTERS[self.0 as usize])
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

/// An interner assigning dense [`EntityId`]s to entity names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityInterner {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, EntityId>,
}

impl EntityInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = EntityId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<EntityId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`, if it was produced by this interner.
    pub fn name(&self, id: EntityId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no entity has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EntityId(i as u32), n.as_str()))
    }

    /// Rebuilds the name→id map (needed after deserialization, where the map
    /// is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), EntityId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = EntityInterner::new();
        let x = i.intern("x");
        let y = i.intern("y");
        assert_ne!(x, y);
        assert_eq!(i.intern("x"), x);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn name_round_trip() {
        let mut i = EntityInterner::new();
        let a = i.intern("account");
        assert_eq!(i.name(a), Some("account"));
        assert_eq!(i.get("account"), Some(a));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.name(EntityId(99)), None);
    }

    #[test]
    fn display_uses_paper_letters_for_small_ids() {
        assert_eq!(EntityId(0).to_string(), "x");
        assert_eq!(EntityId(1).to_string(), "y");
        assert_eq!(EntityId(2).to_string(), "z");
        assert_eq!(EntityId(10).to_string(), "e10");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = EntityInterner::new();
        i.intern("x");
        i.intern("y");
        i.intern("z");
        let names: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut i = EntityInterner::new();
        i.intern("x");
        i.intern("y");
        let mut clone = EntityInterner {
            names: i.names.clone(),
            by_name: HashMap::new(),
        };
        assert_eq!(clone.get("y"), None);
        clone.rebuild_index();
        assert_eq!(clone.get("y"), Some(EntityId(1)));
    }

    #[test]
    fn empty_interner() {
        let i = EntityInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
