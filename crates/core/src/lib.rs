//! # mvcc-core
//!
//! The schedule model of Hadzilacos & Papadimitriou, *Algorithmic Aspects of
//! Multiversion Concurrency Control* (PODS 1985 / JCSS 1986), Section 2.
//!
//! A database is a finite set of *entities* accessed atomically by
//! *transactions*, which are finite sequences of read and write *steps*.
//! A *schedule* is a shuffle of the transactions of a transaction system.
//! In the multiversion model every write creates a new version and a
//! *version function* assigns to each read step one of the previously
//! created versions of the entity it reads.
//!
//! This crate provides:
//!
//! * interned identifiers for transactions and entities ([`TxId`], [`EntityId`]),
//! * steps, transactions and transaction systems ([`Step`], [`Transaction`],
//!   [`TransactionSystem`]),
//! * schedules with derived indexes and a small parser for the paper's
//!   `R1(x) W2(y)` notation ([`Schedule`]),
//! * version functions and READ-FROM relations ([`VersionFunction`],
//!   [`ReadFromRelation`]), including the implicit padding with the initial
//!   transaction `T0` and final transaction `Tf`,
//! * the two conflict notions of the paper (single-version and multiversion)
//!   and the corresponding equivalences ([`conflict`], [`equivalence`]),
//! * the worked examples of the paper: the six schedules of Figure 1 and the
//!   on-line-schedulability counterexample of Section 4 ([`examples`]).
//!
//! Higher-level crates build the classifiers (`mvcc-classify`), the
//! NP-completeness constructions (`mvcc-reductions`), the on-line schedulers
//! (`mvcc-scheduler`) and the storage engine (`mvcc-store`) on top of this
//! model.
//!
//! ## Quick example
//!
//! ```
//! use mvcc_core::Schedule;
//!
//! // Figure 1, example (1): a schedule that is not even multiversion
//! // serializable -- both transactions read the initial version of x and
//! // then overwrite it.
//! let s1 = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
//! assert_eq!(s1.len(), 4);
//! assert_eq!(s1.num_transactions(), 2);
//! assert!(!s1.is_serial());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod display;
pub mod entity;
pub mod equivalence;
pub mod error;
pub mod examples;
pub mod padding;
pub mod readfrom;
pub mod schedule;
pub mod step;
pub mod transaction;
pub mod version;

pub use conflict::{mv_conflicts, sv_conflicts, ConflictKind};
pub use entity::{EntityId, EntityInterner};
pub use error::CoreError;
pub use readfrom::{ReadFrom, ReadFromRelation};
pub use schedule::Schedule;
pub use step::{Action, Step};
pub use transaction::{Transaction, TransactionSystem, TxId};
pub use version::{VersionFunction, VersionSource};
