//! Graphviz DOT export for digraphs and polygraphs.
//!
//! The experiment binaries use these to dump the conflict graphs,
//! multiversion conflict graphs and reduction polygraphs behind a table row
//! so that a reader can inspect them.

use crate::{DiGraph, Polygraph};
use std::fmt::Write as _;

/// Renders `graph` as a Graphviz `digraph`.
pub fn digraph_to_dot(graph: &DiGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for node in graph.nodes() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"];",
            node.index(),
            escape(graph.label(node))
        );
    }
    for (a, b) in graph.arcs() {
        let _ = writeln!(out, "  {} -> {};", a.index(), b.index());
    }
    out.push_str("}\n");
    out
}

/// Renders `polygraph` as a Graphviz `digraph`: mandatory arcs are solid,
/// choice branches dashed and labelled with the choice index.
pub fn polygraph_to_dot(polygraph: &Polygraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for i in 0..polygraph.node_count() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\"];",
            i,
            escape(polygraph.label(crate::NodeId(i as u32)))
        );
    }
    for (a, b) in polygraph.arcs() {
        let _ = writeln!(out, "  {} -> {};", a.index(), b.index());
    }
    for (idx, c) in polygraph.choices().iter().enumerate() {
        let (j, k) = c.first_branch();
        let (k2, i) = c.second_branch();
        let _ = writeln!(
            out,
            "  {} -> {} [style=dashed, label=\"c{idx}\"];",
            j.index(),
            k.index()
        );
        let _ = writeln!(
            out,
            "  {} -> {} [style=dashed, label=\"c{idx}\"];",
            k2.index(),
            i.index()
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn digraph_dot_contains_nodes_and_arcs() {
        let mut g = DiGraph::new();
        let a = g.add_node("T1");
        let b = g.add_node("T2");
        g.add_arc(a, b);
        let dot = digraph_to_dot(&g, "conflicts");
        assert!(dot.starts_with("digraph conflicts {"));
        assert!(dot.contains("label=\"T1\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn polygraph_dot_marks_choices_dashed() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(NodeId(0), NodeId(1), NodeId(2));
        let dot = polygraph_to_dot(&p, "P");
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("2 -> 0;"), "mandatory arc is solid");
        assert!(dot.matches("dashed").count() == 2);
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = DiGraph::new();
        g.add_node("a\"b");
        let dot = digraph_to_dot(&g, "g");
        assert!(dot.contains("a\\\"b"));
    }
}
