//! Topological sorting (Kahn's algorithm).

use crate::{DiGraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Returns a topological order of `graph`, or `None` if the graph has a
/// cycle.  Ties are broken by node id, so the result is deterministic (and is
/// the lexicographically smallest topological order).
pub fn topological_sort(graph: &DiGraph) -> Option<Vec<NodeId>> {
    let mut in_deg = graph.in_degrees();
    let mut heap: BinaryHeap<Reverse<NodeId>> = graph
        .nodes()
        .filter(|n| in_deg[n.index()] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(graph.node_count());
    while let Some(Reverse(n)) = heap.pop() {
        order.push(n);
        for succ in graph.successors(n) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                heap.push(Reverse(succ));
            }
        }
    }
    if order.len() == graph.node_count() {
        Some(order)
    } else {
        None
    }
}

/// `true` if `graph` is acyclic.
pub fn is_acyclic(graph: &DiGraph) -> bool {
    topological_sort(graph).is_some()
}

/// `true` if `order` is a valid topological order of `graph` (contains every
/// node exactly once and respects every arc).
pub fn is_topological_order(graph: &DiGraph, order: &[NodeId]) -> bool {
    if order.len() != graph.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; graph.node_count()];
    for (i, &n) in order.iter().enumerate() {
        if n.index() >= graph.node_count() || pos[n.index()] != usize::MAX {
            return false;
        }
        pos[n.index()] = i;
    }
    graph.arcs().all(|(a, b)| pos[a.index()] < pos[b.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g = DiGraph::with_nodes(4);
        g.add_arc(NodeId(2), NodeId(0));
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(3));
        let order = topological_sort(&g).unwrap();
        assert!(is_topological_order(&g, &order));
        assert_eq!(order[0], NodeId(2));
        assert!(is_acyclic(&g));
    }

    #[test]
    fn detects_cycles() {
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        g.add_arc(NodeId(2), NodeId(0));
        assert!(topological_sort(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::with_nodes(1);
        g.add_arc(NodeId(0), NodeId(0));
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_and_arcless_graphs_are_acyclic() {
        assert!(is_acyclic(&DiGraph::new()));
        let g = DiGraph::with_nodes(5);
        let order = topological_sort(&g).unwrap();
        assert_eq!(order, (0..5).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn is_topological_order_rejects_bad_orders() {
        let mut g = DiGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1));
        assert!(!is_topological_order(&g, &[NodeId(1), NodeId(0)]));
        assert!(!is_topological_order(&g, &[NodeId(0)]));
        assert!(!is_topological_order(&g, &[NodeId(0), NodeId(0)]));
        assert!(is_topological_order(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn ties_break_by_node_id() {
        let g = DiGraph::with_nodes(3);
        assert_eq!(
            topological_sort(&g).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }
}
