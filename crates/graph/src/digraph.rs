//! A small, dense directed graph.
//!
//! Nodes are identified by dense indices ([`NodeId`]); callers keep their own
//! mapping from domain objects (transactions, polygraph nodes, ...) to node
//! ids.  Parallel arcs are collapsed; self-loops are allowed and reported as
//! cycles by the cycle detector.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Dense node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph over dense node ids with labelled nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    labels: Vec<String>,
    /// Sorted adjacency sets (collapse parallel arcs, keep deterministic
    /// iteration order).
    succs: Vec<BTreeSet<NodeId>>,
}

impl DiGraph {
    /// Creates a graph with `n` unlabelled nodes.
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            labels: (0..n).map(|i| format!("n{i}")).collect(),
            succs: vec![BTreeSet::new(); n],
        }
    }

    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            labels: Vec::new(),
            succs: Vec::new(),
        }
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        self.succs.push(BTreeSet::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of (distinct) arcs.
    pub fn arc_count(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// Sets the label of `node`.
    pub fn set_label(&mut self, node: NodeId, label: impl Into<String>) {
        self.labels[node.index()] = label.into();
    }

    /// Adds the arc `from → to` (idempotent). Panics if either endpoint is
    /// out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.node_count(), "arc source out of range");
        assert!(to.index() < self.node_count(), "arc target out of range");
        self.succs[from.index()].insert(to);
    }

    /// Removes the arc `from → to` if present.
    pub fn remove_arc(&mut self, from: NodeId, to: NodeId) {
        self.succs[from.index()].remove(&to);
    }

    /// `true` if the arc `from → to` is present.
    pub fn has_arc(&self, from: NodeId, to: NodeId) -> bool {
        self.succs[from.index()].contains(&to)
    }

    /// The successors of `node` in ascending id order.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[node.index()].iter().copied()
    }

    /// All nodes in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// All arcs `(from, to)` in deterministic order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |from| self.successors(from).map(move |to| (from, to)))
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.node_count()];
        for (_, to) in self.arcs() {
            deg[to.index()] += 1;
        }
        deg
    }

    /// `true` if there is a path from `from` to `to` (including the empty
    /// path when `from == to`).
    pub fn has_path(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(n) = stack.pop() {
            for succ in self.successors(n) {
                if succ == to {
                    return true;
                }
                if !seen[succ.index()] {
                    seen[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// Returns the union of this graph with additional arcs (node set
    /// unchanged).
    pub fn with_extra_arcs(&self, arcs: &[(NodeId, NodeId)]) -> DiGraph {
        let mut g = self.clone();
        for &(a, b) in arcs {
            g.add_arc(a, b);
        }
        g
    }
}

impl Default for DiGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_and_arcs() {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_arc(a, b);
        g.add_arc(b, c);
        g.add_arc(a, b); // duplicate collapses
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 2);
        assert!(g.has_arc(a, b));
        assert!(!g.has_arc(b, a));
        assert_eq!(g.label(c), "c");
    }

    #[test]
    fn with_nodes_constructor() {
        let g = DiGraph::with_nodes(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.label(NodeId(2)), "n2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arc_to_missing_node_panics() {
        let mut g = DiGraph::with_nodes(1);
        g.add_arc(NodeId(0), NodeId(5));
    }

    #[test]
    fn remove_arc_and_relabel() {
        let mut g = DiGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1));
        g.remove_arc(NodeId(0), NodeId(1));
        assert_eq!(g.arc_count(), 0);
        g.set_label(NodeId(0), "start");
        assert_eq!(g.label(NodeId(0)), "start");
    }

    #[test]
    fn path_queries() {
        let mut g = DiGraph::with_nodes(4);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        assert!(g.has_path(NodeId(0), NodeId(2)));
        assert!(g.has_path(NodeId(3), NodeId(3)));
        assert!(!g.has_path(NodeId(2), NodeId(0)));
        assert!(!g.has_path(NodeId(0), NodeId(3)));
    }

    #[test]
    fn arcs_iteration_and_in_degrees() {
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(2));
        g.add_arc(NodeId(1), NodeId(2));
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs, vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]);
        assert_eq!(g.in_degrees(), vec![0, 0, 2]);
    }

    #[test]
    fn with_extra_arcs_leaves_original_untouched() {
        let mut g = DiGraph::with_nodes(2);
        g.add_arc(NodeId(0), NodeId(1));
        let g2 = g.with_extra_arcs(&[(NodeId(1), NodeId(0))]);
        assert_eq!(g.arc_count(), 1);
        assert_eq!(g2.arc_count(), 2);
    }
}
