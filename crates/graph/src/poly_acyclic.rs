//! Exact solvers for polygraph acyclicity.
//!
//! Polygraph acyclicity is NP-complete (Papadimitriou 1979); the paper's
//! Theorems 4–6 reduce it to questions about multiversion schedulers.  Two
//! exact solvers are provided:
//!
//! * [`brute_force_acyclic`] enumerates all `2^|C|` branch selections — the
//!   reference implementation used to cross-check everything else;
//! * [`solve_polygraph`] is a backtracking search that assigns one choice at
//!   a time, prunes selections whose partial graph is already cyclic, and
//!   propagates forced branches.  It is exponential in the worst case (it
//!   must be, unless P = NP) but handles the polygraphs produced by the
//!   reductions comfortably.

use crate::polygraph::Polygraph;
use crate::topo::{is_acyclic, topological_sort};
use crate::{DiGraph, NodeId};

/// A witness that a polygraph is acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolygraphSolution {
    /// For each choice (by index), `true` if the first branch `(j, k)` was
    /// selected and `false` if the second branch `(k, i)` was.
    pub selection: Vec<bool>,
    /// The compatible acyclic graph.
    pub graph: DiGraph,
    /// A topological order of the compatible graph.
    pub order: Vec<NodeId>,
}

/// Reference solver: tries every branch selection.
pub fn brute_force_acyclic(polygraph: &Polygraph) -> Option<PolygraphSolution> {
    let m = polygraph.choice_count();
    assert!(m < 26, "brute force is for small polygraphs only");
    for bits in 0..(1u64 << m) {
        let selection: Vec<bool> = (0..m).map(|i| bits & (1 << i) != 0).collect();
        let graph = polygraph.compatible_graph(&selection);
        if let Some(order) = topological_sort(&graph) {
            return Some(PolygraphSolution {
                selection,
                graph,
                order,
            });
        }
    }
    None
}

/// Backtracking solver with pruning and unit propagation.
pub fn solve_polygraph(polygraph: &Polygraph) -> Option<PolygraphSolution> {
    let base = polygraph.base_graph();
    if !is_acyclic(&base) {
        return None;
    }
    let m = polygraph.choice_count();
    let mut assignment: Vec<Option<bool>> = vec![None; m];
    if backtrack(polygraph, &base, &mut assignment, 0) {
        let selection: Vec<bool> = assignment.into_iter().map(|a| a.unwrap_or(true)).collect();
        let graph = polygraph.compatible_graph(&selection);
        // lint: allow(unwrap) — acyclicity was just verified, a topo order exists
        let order = topological_sort(&graph).expect("backtracking returned a cyclic selection");
        Some(PolygraphSolution {
            selection,
            graph,
            order,
        })
    } else {
        None
    }
}

/// Current partial graph given `assignment[..idx]` decided.
fn partial_graph(polygraph: &Polygraph, base: &DiGraph, assignment: &[Option<bool>]) -> DiGraph {
    let mut g = base.clone();
    for (choice, assigned) in polygraph.choices().iter().zip(assignment) {
        if let Some(take_first) = assigned {
            let (a, b) = if *take_first {
                choice.first_branch()
            } else {
                choice.second_branch()
            };
            g.add_arc(a, b);
        }
    }
    g
}

fn backtrack(
    polygraph: &Polygraph,
    base: &DiGraph,
    assignment: &mut Vec<Option<bool>>,
    idx: usize,
) -> bool {
    if idx == assignment.len() {
        return is_acyclic(&partial_graph(polygraph, base, assignment));
    }
    let current = partial_graph(polygraph, base, &assignment[..]);
    if !is_acyclic(&current) {
        return false;
    }
    let choice = polygraph.choices()[idx];
    // Try the branch that does not immediately close a path-cycle first
    // (cheap look-ahead): adding (a, b) creates a cycle iff b already
    // reaches a.
    let (j, k) = choice.first_branch();
    let (k2, i) = choice.second_branch();
    let first_ok = !current.has_path(k, j);
    let second_ok = !current.has_path(i, k2);
    let order: [(bool, bool); 2] = if first_ok {
        [(true, first_ok), (false, second_ok)]
    } else {
        [(false, second_ok), (true, first_ok)]
    };
    for (value, feasible) in order {
        if !feasible {
            continue;
        }
        assignment[idx] = Some(value);
        if backtrack(polygraph, base, assignment, idx + 1) {
            return true;
        }
        assignment[idx] = None;
    }
    false
}

/// `true` iff the polygraph has a compatible acyclic graph.
pub fn is_acyclic_polygraph(polygraph: &Polygraph) -> bool {
    solve_polygraph(polygraph).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    /// A forced cycle: choice (j, k, i) where both branches close a cycle
    /// with existing arcs.
    fn forced_cyclic() -> Polygraph {
        let mut p = Polygraph::with_nodes(3);
        // choice (j=0, k=1, i=2): mandatory arc (2,0); branches (0,1) or (1,2).
        p.add_choice(n(0), n(1), n(2));
        // Arcs that make both branches cyclic: (1,0) kills branch (0,1)?
        // (0,1)+(1,0) cycle; (1,2): with (2,0),(0,?),... add (2,1): (1,2)+(2,1) cycle.
        p.add_arc(n(1), n(0));
        p.add_arc(n(2), n(1));
        p
    }

    #[test]
    fn empty_polygraph_is_acyclic() {
        let p = Polygraph::with_nodes(4);
        assert!(is_acyclic_polygraph(&p));
        let sol = solve_polygraph(&p).unwrap();
        assert!(sol.selection.is_empty());
        assert_eq!(sol.order.len(), 4);
    }

    #[test]
    fn single_choice_is_acyclic() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(n(0), n(1), n(2));
        let sol = solve_polygraph(&p).unwrap();
        assert!(p.is_compatible(&sol.graph));
        assert!(is_acyclic(&sol.graph));
        assert!(brute_force_acyclic(&p).is_some());
    }

    #[test]
    fn cyclic_base_graph_is_rejected_immediately() {
        let mut p = Polygraph::with_nodes(2);
        p.add_arc(n(0), n(1));
        p.add_arc(n(1), n(0));
        assert!(!is_acyclic_polygraph(&p));
        assert!(brute_force_acyclic(&p).is_none());
    }

    #[test]
    fn forced_cycle_detected() {
        let p = forced_cyclic();
        assert!(!is_acyclic_polygraph(&p));
        assert!(brute_force_acyclic(&p).is_none());
    }

    #[test]
    fn choice_with_one_feasible_branch() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(n(0), n(1), n(2));
        // Kill the first branch only: arc (1,0) makes (0,1) cyclic.
        p.add_arc(n(1), n(0));
        let sol = solve_polygraph(&p).unwrap();
        assert_eq!(sol.selection, vec![false], "second branch is forced");
        assert!(is_acyclic(&sol.graph));
    }

    #[test]
    fn solution_graph_is_compatible_and_order_valid() {
        use crate::topo::is_topological_order;
        let mut p = Polygraph::with_nodes(6);
        p.add_choice(n(0), n(1), n(2));
        p.add_choice(n(3), n(4), n(5));
        p.add_arc(n(2), n(3));
        let sol = solve_polygraph(&p).unwrap();
        assert!(p.is_compatible(&sol.graph));
        assert!(is_topological_order(&sol.graph, &sol.order));
    }

    #[test]
    fn backtracking_agrees_with_brute_force_on_random_polygraphs() {
        // Deterministic xorshift so the test is reproducible.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut acyclic_seen = 0;
        let mut cyclic_seen = 0;
        for _ in 0..120 {
            let nodes = 3 + (next() % 4) as usize;
            let mut p = Polygraph::with_nodes(nodes);
            let n_arcs = next() % (nodes as u64);
            for _ in 0..n_arcs {
                let a = (next() % nodes as u64) as u32;
                let b = (next() % nodes as u64) as u32;
                if a != b {
                    p.add_arc(NodeId(a), NodeId(b));
                }
            }
            let n_choices = 1 + next() % 4;
            for _ in 0..n_choices {
                let j = (next() % nodes as u64) as u32;
                let k = (next() % nodes as u64) as u32;
                let i = (next() % nodes as u64) as u32;
                if j != k && k != i && i != j {
                    p.add_choice(NodeId(j), NodeId(k), NodeId(i));
                }
            }
            let fast = is_acyclic_polygraph(&p);
            let slow = brute_force_acyclic(&p).is_some();
            assert_eq!(fast, slow, "disagreement on {p}");
            if fast {
                acyclic_seen += 1;
            } else {
                cyclic_seen += 1;
            }
        }
        assert!(acyclic_seen > 0 && cyclic_seen > 0, "trivial test corpus");
    }
}
