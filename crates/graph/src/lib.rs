//! # mvcc-graph
//!
//! The graph substrate used throughout the reproduction of Hadzilacos &
//! Papadimitriou's *Algorithmic Aspects of Multiversion Concurrency Control*:
//!
//! * plain directed graphs with cheap node indices ([`DiGraph`]),
//! * topological sorting and cycle detection with witnesses ([`topo`],
//!   [`cycle`]),
//! * strongly connected components (Tarjan) ([`scc`]),
//! * **polygraphs** `(N, A, C)` — the NP-complete acyclicity structure of
//!   [Papadimitriou 1979] that the paper's reductions are built on
//!   ([`polygraph`]), together with exact acyclicity solvers (brute force
//!   over choice selections and a pruned backtracking search)
//!   ([`poly_acyclic`]),
//! * DOT export for debugging and documentation ([`dot`]).
//!
//! The conflict graphs and multiversion conflict graphs of `mvcc-classify`,
//! the serialization-graph-testing schedulers of `mvcc-scheduler` and the
//! SAT→polygraph reduction of `mvcc-reductions` all build on these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod digraph;
pub mod dot;
pub mod poly_acyclic;
pub mod polygraph;
pub mod scc;
pub mod topo;

pub use digraph::{DiGraph, NodeId};
pub use poly_acyclic::{is_acyclic_polygraph, solve_polygraph, PolygraphSolution};
pub use polygraph::{Choice, Polygraph};
