//! Strongly connected components (Tarjan's algorithm, iterative).
//!
//! Used by the serialization-graph-testing schedulers to identify the set of
//! transactions involved in a conflict cycle, and by the workload analysis
//! tables.

use crate::{DiGraph, NodeId};

/// Computes the strongly connected components of `graph`.
///
/// Components are returned in reverse topological order of the condensation
/// (i.e. a component appears before every component it can reach), each as a
/// sorted vector of node ids.
pub fn strongly_connected_components(graph: &DiGraph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Iterative Tarjan: call stack of (node, successor list, position).
    for start in graph.nodes() {
        if index[start.index()] != UNVISITED {
            continue;
        }
        let mut call: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        index[start.index()] = next_index;
        low[start.index()] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.index()] = true;
        call.push((start, graph.successors(start).collect(), 0));

        while let Some((node, succs, idx)) = call.last_mut() {
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                if index[next.index()] == UNVISITED {
                    index[next.index()] = next_index;
                    low[next.index()] = next_index;
                    next_index += 1;
                    stack.push(next);
                    on_stack[next.index()] = true;
                    call.push((next, graph.successors(next).collect(), 0));
                } else if on_stack[next.index()] {
                    let node_i = node.index();
                    low[node_i] = low[node_i].min(index[next.index()]);
                }
            } else {
                // lint: allow(unwrap) — call stack is non-empty inside the loop by construction
                let (node, _, _) = call.pop().expect("non-empty");
                if let Some((parent, _, _)) = call.last() {
                    let p = parent.index();
                    low[p] = low[p].min(low[node.index()]);
                }
                if low[node.index()] == index[node.index()] {
                    let mut component = Vec::new();
                    loop {
                        // lint: allow(unwrap) — Tarjan invariant: the component root is on the stack
                        let w = stack.pop().expect("stack invariant");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == node {
                            break;
                        }
                    }
                    component.sort();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// `true` if every strongly connected component is a single node without a
/// self-loop — an alternative acyclicity check used to cross-validate the
/// topological sort.
pub fn is_acyclic_by_scc(graph: &DiGraph) -> bool {
    strongly_connected_components(graph)
        .iter()
        .all(|c| c.len() == 1 && !graph.has_arc(c[0], c[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn single_component_for_a_cycle() {
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        g.add_arc(NodeId(2), NodeId(0));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!(!is_acyclic_by_scc(&g));
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::with_nodes(4);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        g.add_arc(NodeId(0), NodeId(3));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        assert!(is_acyclic_by_scc(&g));
    }

    #[test]
    fn mixed_graph() {
        // 0 <-> 1 form a component; 2 and 3 are singletons; 3 has a self-loop.
        let mut g = DiGraph::with_nodes(4);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(0));
        g.add_arc(NodeId(1), NodeId(2));
        g.add_arc(NodeId(3), NodeId(3));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.contains(&vec![NodeId(0), NodeId(1)]));
        assert!(!is_acyclic_by_scc(&g));
    }

    #[test]
    fn scc_acyclicity_agrees_with_topological_sort() {
        // Deterministic pseudo-random graphs.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..50 {
            let n = 3 + (trial % 7);
            let mut g = DiGraph::with_nodes(n);
            let arcs = next() % (2 * n as u64);
            for _ in 0..arcs {
                let a = (next() % n as u64) as u32;
                let b = (next() % n as u64) as u32;
                if a != b {
                    g.add_arc(NodeId(a), NodeId(b));
                }
            }
            assert_eq!(is_acyclic_by_scc(&g), is_acyclic(&g), "graph: {g:?}");
        }
    }

    #[test]
    fn reverse_topological_order_of_condensation() {
        // 0 -> 1 -> 2: component containing 2 must be listed before the one
        // containing 0.
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        let sccs = strongly_connected_components(&g);
        let pos = |n: NodeId| sccs.iter().position(|c| c.contains(&n)).unwrap();
        assert!(pos(NodeId(2)) < pos(NodeId(0)));
    }
}
