//! Cycle detection with explicit witnesses.

use crate::{DiGraph, NodeId};

/// Finds a cycle in `graph`, returned as the sequence of nodes along the
/// cycle (the arc from the last node back to the first closes it), or `None`
/// if the graph is acyclic.
pub fn find_cycle(graph: &DiGraph) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let n = graph.node_count();
    let mut colour = vec![Colour::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    // Iterative DFS with an explicit stack of (node, successor iterator
    // position) to avoid recursion depth limits on large graphs.
    for start in graph.nodes() {
        if colour[start.index()] != Colour::White {
            continue;
        }
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        colour[start.index()] = Colour::Grey;
        stack.push((start, graph.successors(start).collect(), 0));
        while let Some((node, succs, idx)) = stack.last_mut() {
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                match colour[next.index()] {
                    Colour::White => {
                        colour[next.index()] = Colour::Grey;
                        parent[next.index()] = Some(*node);
                        let s: Vec<NodeId> = graph.successors(next).collect();
                        stack.push((next, s, 0));
                    }
                    Colour::Grey => {
                        // Found a back arc `node -> next`: walk parents from
                        // `node` back to `next` to recover the cycle.
                        let mut cycle = vec![*node];
                        let mut cur = *node;
                        while cur != next {
                            // lint: allow(unwrap) — parent[] is set for every node on the walked path
                            cur = parent[cur.index()].expect("grey nodes have parents");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Colour::Black => {}
                }
            } else {
                colour[node.index()] = Colour::Black;
                stack.pop();
            }
        }
    }
    None
}

/// `true` if `nodes` is a cycle of `graph`: non-empty, every consecutive pair
/// is an arc, and the last node has an arc back to the first.
pub fn is_cycle(graph: &DiGraph, nodes: &[NodeId]) -> bool {
    if nodes.is_empty() {
        return false;
    }
    for w in nodes.windows(2) {
        if !graph.has_arc(w[0], w[1]) {
            return false;
        }
    }
    graph.has_arc(nodes[nodes.len() - 1], nodes[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_simple_cycle() {
        let mut g = DiGraph::with_nodes(4);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(1), NodeId(2));
        g.add_arc(NodeId(2), NodeId(1));
        g.add_arc(NodeId(2), NodeId(3));
        let cycle = find_cycle(&g).unwrap();
        assert!(is_cycle(&g, &cycle));
        assert!(cycle.contains(&NodeId(1)) && cycle.contains(&NodeId(2)));
    }

    #[test]
    fn none_for_dag() {
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1));
        g.add_arc(NodeId(0), NodeId(2));
        g.add_arc(NodeId(1), NodeId(2));
        assert!(find_cycle(&g).is_none());
    }

    #[test]
    fn self_loop_cycle() {
        let mut g = DiGraph::with_nodes(2);
        g.add_arc(NodeId(1), NodeId(1));
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle, vec![NodeId(1)]);
        assert!(is_cycle(&g, &cycle));
    }

    #[test]
    fn long_chain_cycle_witness_is_valid() {
        let n = 50;
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_arc(NodeId(i as u32), NodeId((i + 1) as u32));
        }
        g.add_arc(NodeId((n - 1) as u32), NodeId(0));
        let cycle = find_cycle(&g).unwrap();
        assert_eq!(cycle.len(), n);
        assert!(is_cycle(&g, &cycle));
    }

    #[test]
    fn is_cycle_rejects_non_cycles() {
        let mut g = DiGraph::with_nodes(3);
        g.add_arc(NodeId(0), NodeId(1));
        assert!(!is_cycle(&g, &[]));
        assert!(!is_cycle(&g, &[NodeId(0), NodeId(1)]));
        assert!(!is_cycle(&g, &[NodeId(0), NodeId(2)]));
    }

    #[test]
    fn agreement_with_topological_sort() {
        use crate::topo::is_acyclic;
        // A handful of fixed graphs: find_cycle returns Some exactly when
        // topological sort fails.
        let mut graphs = Vec::new();
        let mut g1 = DiGraph::with_nodes(4);
        g1.add_arc(NodeId(0), NodeId(1));
        g1.add_arc(NodeId(1), NodeId(2));
        graphs.push(g1);
        let mut g2 = DiGraph::with_nodes(4);
        g2.add_arc(NodeId(0), NodeId(1));
        g2.add_arc(NodeId(1), NodeId(0));
        graphs.push(g2);
        let mut g3 = DiGraph::with_nodes(5);
        for i in 0..4 {
            g3.add_arc(NodeId(i), NodeId(i + 1));
        }
        g3.add_arc(NodeId(4), NodeId(2));
        graphs.push(g3);
        for g in &graphs {
            assert_eq!(find_cycle(g).is_none(), is_acyclic(g));
        }
    }
}
