//! Polygraphs: the NP-complete acyclicity structure behind the paper's
//! hardness results.
//!
//! A *polygraph* (Papadimitriou 1979, and Section 2 of the paper) is a triple
//! `(N, A, C)` where `N` is a set of nodes, `A` a set of arcs, and `C` a set
//! of *choices* — ordered triples `(j, k, i)` such that `(i, j)` is an arc.
//! A directed graph `(N', A')` is *compatible* with the polygraph iff
//! `N ⊆ N'`, `A ⊆ A'`, and for every choice `(j, k, i)` at least one of
//! `(j, k)` or `(k, i)` is in `A'`.  The polygraph is *acyclic* iff it has a
//! compatible acyclic directed graph; equivalently, iff some selection of one
//! branch per choice together with `A` forms a DAG.
//!
//! Testing polygraph acyclicity is NP-complete; the solvers live in
//! [`crate::poly_acyclic`].

use crate::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A choice `(j, k, i)`: the compatible graph must contain `(j, k)` or
/// `(k, i)`; the polygraph always contains the arc `(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Choice {
    /// The node `j` (head of the mandatory arc `(i, j)`).
    pub j: NodeId,
    /// The "middle" node `k` that must be placed before `i` or after `j`.
    pub k: NodeId,
    /// The node `i` (tail of the mandatory arc `(i, j)`).
    pub i: NodeId,
}

impl Choice {
    /// The first branch `(j, k)`.
    pub fn first_branch(&self) -> (NodeId, NodeId) {
        (self.j, self.k)
    }

    /// The second branch `(k, i)`.
    pub fn second_branch(&self) -> (NodeId, NodeId) {
        (self.k, self.i)
    }

    /// The mandatory arc `(i, j)` associated with the choice.
    pub fn mandatory_arc(&self) -> (NodeId, NodeId) {
        (self.i, self.j)
    }

    /// The three nodes involved in the choice.
    pub fn nodes(&self) -> [NodeId; 3] {
        [self.j, self.k, self.i]
    }
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.j, self.k, self.i)
    }
}

/// A polygraph `(N, A, C)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Polygraph {
    node_count: usize,
    labels: Vec<String>,
    arcs: BTreeSet<(NodeId, NodeId)>,
    choices: Vec<Choice>,
}

impl Polygraph {
    /// Creates a polygraph with `n` nodes and no arcs or choices.
    pub fn with_nodes(n: usize) -> Self {
        Polygraph {
            node_count: n,
            labels: (0..n).map(|i| format!("n{i}")).collect(),
            arcs: BTreeSet::new(),
            choices: Vec::new(),
        }
    }

    /// Adds a node with the given label, returning its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_count as u32);
        self.node_count += 1;
        self.labels.push(label.into());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The label of a node.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// Adds the arc `from → to`.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.node_count && to.index() < self.node_count);
        self.arcs.insert((from, to));
    }

    /// Adds the choice `(j, k, i)`, inserting the mandatory arc `(i, j)` if
    /// it is not already present (the paper's definition requires it).
    pub fn add_choice(&mut self, j: NodeId, k: NodeId, i: NodeId) {
        assert!(
            j.index() < self.node_count
                && k.index() < self.node_count
                && i.index() < self.node_count
        );
        self.arcs.insert((i, j));
        self.choices.push(Choice { j, k, i });
    }

    /// The arcs `A`.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.arcs.iter().copied()
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// The choices `C`.
    pub fn choices(&self) -> &[Choice] {
        &self.choices
    }

    /// Number of choices.
    pub fn choice_count(&self) -> usize {
        self.choices.len()
    }

    /// The graph `(N, A)` of mandatory arcs.
    pub fn base_graph(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count);
        for i in 0..self.node_count {
            g.set_label(NodeId(i as u32), self.labels[i].clone());
        }
        for &(a, b) in &self.arcs {
            g.add_arc(a, b);
        }
        g
    }

    /// The graph `(N, C1)` of first branches `(j, k)` of all choices —
    /// assumption (b) of Theorem 4 requires it to be acyclic.
    pub fn first_branch_graph(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count);
        for c in &self.choices {
            g.add_arc(c.j, c.k);
        }
        g
    }

    /// The compatible graph obtained by taking, for every choice, its first
    /// branch when `selection[idx]` is `true` and its second branch
    /// otherwise, in addition to all mandatory arcs.
    pub fn compatible_graph(&self, selection: &[bool]) -> DiGraph {
        assert_eq!(selection.len(), self.choices.len());
        let mut g = self.base_graph();
        for (c, &take_first) in self.choices.iter().zip(selection) {
            let (a, b) = if take_first {
                c.first_branch()
            } else {
                c.second_branch()
            };
            g.add_arc(a, b);
        }
        g
    }

    /// Checks the compatibility condition of the paper for an arbitrary
    /// graph over (a superset of) the same nodes: `A ⊆ A'` and every choice
    /// has at least one branch present.
    pub fn is_compatible(&self, graph: &DiGraph) -> bool {
        if graph.node_count() < self.node_count {
            return false;
        }
        for &(a, b) in &self.arcs {
            if !graph.has_arc(a, b) {
                return false;
            }
        }
        self.choices.iter().all(|c| {
            let (j, k) = c.first_branch();
            let (k2, i) = c.second_branch();
            graph.has_arc(j, k) || graph.has_arc(k2, i)
        })
    }

    /// Assumption (a) of Theorem 4: every arc has at least one corresponding
    /// choice `(j, k, i)` with `(i, j)` that arc.
    pub fn every_arc_has_choice(&self) -> bool {
        let with_choice: BTreeSet<(NodeId, NodeId)> =
            self.choices.iter().map(|c| c.mandatory_arc()).collect();
        self.arcs.iter().all(|a| with_choice.contains(a))
    }

    /// Assumption (b): the first branches of the choices form no cycle.
    pub fn first_branches_acyclic(&self) -> bool {
        crate::topo::is_acyclic(&self.first_branch_graph())
    }

    /// Assumption (c): the mandatory arcs form no cycle.
    pub fn base_acyclic(&self) -> bool {
        crate::topo::is_acyclic(&self.base_graph())
    }

    /// `true` when the three structural assumptions (a)–(c) used in the
    /// proof of Theorem 4 hold.
    pub fn satisfies_theorem4_assumptions(&self) -> bool {
        self.every_arc_has_choice() && self.first_branches_acyclic() && self.base_acyclic()
    }

    /// `true` when no two choices share a node — the structural property of
    /// the polygraphs produced by the reduction from satisfiability that the
    /// proof of Theorem 6 relies on ("if (j, k, i) is a choice in this
    /// polygraph, then no other choice involves any of i, j, or k").
    pub fn choices_node_disjoint(&self) -> bool {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for c in &self.choices {
            for n in c.nodes() {
                if !seen.insert(n) {
                    return false;
                }
            }
        }
        true
    }

    /// The normalisation used in the proof of Theorem 4 to establish
    /// assumption (a) without loss of generality: for every arc `(i, j)`
    /// without a corresponding choice, add a fresh node `k` and the choice
    /// `(j, k, i)`.  The result is acyclic iff `self` is (the fresh nodes
    /// participate in no other arcs or choices).
    pub fn normalized(&self) -> Polygraph {
        let mut out = self.clone();
        let with_choice: BTreeSet<(NodeId, NodeId)> =
            self.choices.iter().map(|c| c.mandatory_arc()).collect();
        let missing: Vec<(NodeId, NodeId)> = self
            .arcs
            .iter()
            .copied()
            .filter(|a| !with_choice.contains(a))
            .collect();
        for (i, j) in missing {
            let k = out.add_node(format!("dummy_{}_{}", i.0, j.0));
            out.choices.push(Choice { j, k, i });
        }
        out
    }
}

impl fmt::Display for Polygraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "polygraph: {} nodes, {} arcs, {} choices",
            self.node_count,
            self.arcs.len(),
            self.choices.len()
        )?;
        for &(a, b) in &self.arcs {
            writeln!(f, "  arc {a} -> {b}")?;
        }
        for c in &self.choices {
            writeln!(f, "  choice {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_choice_inserts_mandatory_arc() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(n(0), n(1), n(2)); // choice (j=0, k=1, i=2) => arc (2,0)
        assert_eq!(p.arc_count(), 1);
        assert!(p.arcs().any(|a| a == (n(2), n(0))));
        assert_eq!(p.choice_count(), 1);
    }

    #[test]
    fn compatible_graph_selection() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(n(0), n(1), n(2));
        let g_first = p.compatible_graph(&[true]);
        assert!(g_first.has_arc(n(0), n(1)));
        assert!(!g_first.has_arc(n(1), n(2)));
        let g_second = p.compatible_graph(&[false]);
        assert!(g_second.has_arc(n(1), n(2)));
        assert!(p.is_compatible(&g_first));
        assert!(p.is_compatible(&g_second));
        assert!(
            !p.is_compatible(&p.first_branch_graph()),
            "missing mandatory arc"
        );
    }

    #[test]
    fn theorem4_assumptions() {
        let mut p = Polygraph::with_nodes(4);
        p.add_choice(n(0), n(1), n(2));
        assert!(p.every_arc_has_choice());
        assert!(p.first_branches_acyclic());
        assert!(p.base_acyclic());
        assert!(p.satisfies_theorem4_assumptions());

        // Add a bare arc: assumption (a) now fails until normalisation.
        p.add_arc(n(2), n(3));
        assert!(!p.every_arc_has_choice());
        let q = p.normalized();
        assert!(q.every_arc_has_choice());
        assert_eq!(q.node_count(), 5);
        assert!(q.satisfies_theorem4_assumptions());
    }

    #[test]
    fn node_disjoint_choices() {
        let mut p = Polygraph::with_nodes(6);
        p.add_choice(n(0), n(1), n(2));
        p.add_choice(n(3), n(4), n(5));
        assert!(p.choices_node_disjoint());
        p.add_choice(n(0), n(4), n(5));
        assert!(!p.choices_node_disjoint());
    }

    #[test]
    fn base_and_first_branch_graphs() {
        let mut p = Polygraph::with_nodes(3);
        p.add_choice(n(0), n(1), n(2));
        p.add_arc(n(1), n(2));
        let base = p.base_graph();
        assert_eq!(base.arc_count(), 2);
        let fb = p.first_branch_graph();
        assert_eq!(fb.arc_count(), 1);
        assert!(fb.has_arc(n(0), n(1)));
    }

    #[test]
    fn labels_and_display() {
        let mut p = Polygraph::with_nodes(1);
        let b = p.add_node("b");
        assert_eq!(p.label(b), "b");
        p.add_choice(n(0), b, n(0));
        let text = p.to_string();
        assert!(text.contains("2 nodes"));
        assert!(text.contains("choice"));
    }
}
