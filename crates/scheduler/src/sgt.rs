//! Serialization-graph testing (SGT): the most permissive single-version
//! scheduler.
//!
//! SGT maintains the conflict graph of the accepted prefix and accepts a
//! step iff the arcs it induces keep the graph acyclic.  SGT accepts exactly
//! the prefixes of CSR schedules, so in the acceptance-rate experiment it is
//! the upper bound of what single-version conflict-based scheduling can do —
//! the gap between SGT and [`crate::MvSgtScheduler`] is precisely the gap
//! between CSR and MVCSR that motivates the paper.

use crate::{Decision, Scheduler};
use mvcc_core::conflict::sv_conflicts;
use mvcc_core::{Step, TxId};
use std::collections::{HashMap, HashSet};

/// Conflict-graph-testing scheduler.
#[derive(Debug, Clone, Default)]
pub struct SgtScheduler {
    /// Accepted steps, in order.
    accepted: Vec<Step>,
    /// Current arcs of the conflict graph.
    arcs: HashSet<(TxId, TxId)>,
    /// Committed transactions not yet pruned from the graph.
    committed: HashSet<TxId>,
}

impl SgtScheduler {
    /// Creates an SGT scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Garbage-collects committed *source* nodes.
    ///
    /// New arcs always point into the transaction taking the current step,
    /// so a committed transaction (which takes no more steps) never gains
    /// another incoming arc; if it has none now it can never lie on a
    /// cycle, and neither its node nor its remaining outgoing arcs nor its
    /// accepted steps can influence any future accept/reject decision
    /// (a future cycle using one of its outgoing arcs would need a path
    /// back into it).  Removing them keeps the scheduler's state bounded by
    /// the *active* transactions plus committed non-sources under
    /// long-running engine load, instead of growing with history.  The
    /// `prunes_never_change_decisions` test checks the argument
    /// differentially on exhaustive interleavings.
    fn prune_committed_sources(&mut self) {
        loop {
            let targets: HashSet<TxId> = self.arcs.iter().map(|&(_, to)| to).collect();
            let prunable: HashSet<TxId> = self
                .committed
                .iter()
                .copied()
                .filter(|t| !targets.contains(t))
                .collect();
            if prunable.is_empty() {
                return;
            }
            self.committed.retain(|t| !prunable.contains(t));
            self.accepted.retain(|s| !prunable.contains(&s.tx));
            self.arcs.retain(|&(from, _)| !prunable.contains(&from));
        }
    }

    /// Number of accepted steps currently retained (observability for the
    /// pruning tests and the engine's memory accounting).
    pub fn retained_steps(&self) -> usize {
        self.accepted.len()
    }

    /// The arcs the new step would add to the conflict graph.
    fn induced_arcs(&self, step: &Step) -> Vec<(TxId, TxId)> {
        self.accepted
            .iter()
            .filter(|prev| sv_conflicts(prev, step))
            .map(|prev| (prev.tx, step.tx))
            .collect()
    }

    fn acyclic_with(&self, extra: &[(TxId, TxId)]) -> bool {
        // Small graphs: simple DFS over the union.
        let mut adj: HashMap<TxId, Vec<TxId>> = HashMap::new();
        for &(a, b) in self.arcs.iter().chain(extra.iter()) {
            if a != b {
                adj.entry(a).or_default().push(b);
            }
        }
        let nodes: HashSet<TxId> = adj
            .keys()
            .copied()
            .chain(adj.values().flatten().copied())
            .collect();
        let mut state: HashMap<TxId, u8> = HashMap::new(); // 1 = in progress, 2 = done
        fn dfs(n: TxId, adj: &HashMap<TxId, Vec<TxId>>, state: &mut HashMap<TxId, u8>) -> bool {
            state.insert(n, 1);
            for &m in adj.get(&n).map_or(&[][..], |v| v.as_slice()) {
                match state.get(&m) {
                    Some(1) => return false,
                    Some(_) => {}
                    None => {
                        if !dfs(m, adj, state) {
                            return false;
                        }
                    }
                }
            }
            state.insert(n, 2);
            true
        }
        for &n in &nodes {
            if !state.contains_key(&n) && !dfs(n, &adj, &mut state) {
                return false;
            }
        }
        true
    }
}

impl Scheduler for SgtScheduler {
    fn name(&self) -> &'static str {
        "sgt"
    }

    fn is_multiversion(&self) -> bool {
        false
    }

    fn offer(&mut self, step: Step) -> Decision {
        let new_arcs = self.induced_arcs(&step);
        if !self.acyclic_with(&new_arcs) {
            return Decision::Reject;
        }
        self.arcs.extend(new_arcs);
        self.accepted.push(step);
        Decision::ACCEPT
    }

    fn abort(&mut self, tx: TxId) {
        self.accepted.retain(|s| s.tx != tx);
        self.arcs.retain(|&(a, b)| a != tx && b != tx);
        // Removing the aborted node's arcs may turn committed transactions
        // into sources.
        self.prune_committed_sources();
    }

    fn commit(&mut self, tx: TxId) {
        self.committed.insert(tx);
        self.prune_committed_sources();
    }

    fn reset(&mut self) {
        self.accepted.clear();
        self.arcs.clear();
        self.committed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn run_all(s: &Schedule) -> bool {
        let mut sched = SgtScheduler::new();
        s.steps().iter().all(|&st| sched.offer(st).is_accept())
    }

    #[test]
    fn accepts_exactly_the_csr_interleavings() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(run_all(&s), mvcc_classify::is_csr(&s), "schedule {s}");
        }
    }

    #[test]
    fn rejects_the_step_that_closes_a_cycle() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sched = SgtScheduler::new();
        let d: Vec<bool> = s
            .steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect();
        assert_eq!(d, vec![true, true, true, false]);
    }

    #[test]
    fn abort_removes_the_transaction_from_the_graph() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sched = SgtScheduler::new();
        for &st in &s.steps()[..3] {
            assert!(sched.offer(st).is_accept());
        }
        assert!(!sched.offer(s.steps()[3]).is_accept());
        sched.abort(TxId(1));
        // With A gone, B's write no longer closes a cycle.
        assert!(sched.offer(s.steps()[3]).is_accept());
    }

    #[test]
    fn accepts_more_than_2pl() {
        // Schedule accepted by SGT but not by immediate-reject 2PL:
        // A reads x, B writes x afterwards (conflict A->B only).
        let s = Schedule::parse("Ra(x) Wb(x) Wa(y) Rb(z)").unwrap();
        assert!(run_all(&s));
        let mut twopl = crate::TwoPhaseLockingScheduler::new(&s.tx_system());
        let all_2pl = s.steps().iter().all(|&st| twopl.offer(st).is_accept());
        assert!(!all_2pl);
    }

    #[test]
    fn reset_clears_graph() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sched = SgtScheduler::new();
        for &st in s.steps() {
            let _ = sched.offer(st);
        }
        sched.reset();
        assert!(run_all(&Schedule::parse("Ra(x) Wa(x)").unwrap()));
        assert_eq!(sched.name(), "sgt");
    }

    /// The source-node GC argument, checked differentially: over every
    /// interleaving of a conflict-heavy system, a scheduler that is told
    /// about commits (and prunes) makes exactly the same accept/reject
    /// decisions as one that is not.
    #[test]
    fn prunes_never_change_decisions() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(y)")
            .unwrap()
            .tx_system();
        let mut pruning_happened = false;
        for s in Schedule::all_interleavings(&sys) {
            let mut plain = SgtScheduler::new();
            let mut pruned = SgtScheduler::new();
            let mut remaining: std::collections::HashMap<TxId, usize> =
                sys.transactions().iter().map(|t| (t.id, t.len())).collect();
            for &st in s.steps() {
                let a = plain.offer(st).is_accept();
                let b = pruned.offer(st).is_accept();
                assert_eq!(a, b, "decision diverged at {st} in {s}");
                if a {
                    let left = remaining.get_mut(&st.tx).unwrap();
                    *left -= 1;
                    if *left == 0 {
                        // The transaction's last step: commit it on the
                        // pruning scheduler only.
                        pruned.commit(st.tx);
                    }
                }
            }
            if pruned.retained_steps() < plain.retained_steps() {
                pruning_happened = true;
            }
        }
        assert!(pruning_happened, "the GC never fired on any interleaving");
    }

    #[test]
    fn commit_prunes_source_nodes_and_bounds_state() {
        let mut sched = SgtScheduler::new();
        // A long chain of committed, non-overlapping transactions: each is
        // a source once its successor's arcs are accounted, so the graph
        // stays tiny.
        for i in 1..=100u32 {
            let tx = TxId(i);
            assert!(sched
                .offer(Step::read(tx, mvcc_core::EntityId(0)))
                .is_accept());
            assert!(sched
                .offer(Step::write(tx, mvcc_core::EntityId(0)))
                .is_accept());
            sched.commit(tx);
        }
        assert_eq!(
            sched.retained_steps(),
            0,
            "all committed sources should be pruned"
        );
    }
}
