//! A greedy approximation of a *maximal* multiversion scheduler.
//!
//! Theorems 5 and 6 show that no efficient scheduler can recognise a maximal
//! OLS subset of MVSR (or MVCSR).  This scheduler is the natural — and
//! necessarily exponential-time — greedy attempt: it keeps the accepted
//! prefix together with the read-from assignments it has committed to, and
//!
//! * serves an arriving read the **latest** version under which the extended
//!   prefix still has a serialization consistent with all previously
//!   committed read-froms (falling back to older versions);
//! * accepts an arriving write iff the extended prefix still has such a
//!   serialization;
//! * rejects otherwise.
//!
//! By Lemma 1 this behaviour is what any maximal scheduler must do *given*
//! its previous version choices — and Theorem 6 builds, adaptively, an input
//! on which any such scheduler either rejects an MVCSR schedule or solves an
//! NP-hard problem.  The Theorem 6 construction in `mvcc-reductions` drives
//! exactly this object.

use crate::{Decision, Scheduler};
use mvcc_classify::serialization::has_serialization_extending;
use mvcc_core::{Action, Schedule, Step, TxId, VersionSource};
use std::collections::HashMap;

/// Greedy prefix-serializability-preserving multiversion scheduler.
#[derive(Debug, Clone, Default)]
pub struct GreedyMaximalScheduler {
    accepted: Vec<Step>,
    /// Read-from assignments committed so far, keyed by accepted-step index.
    assignments: HashMap<usize, VersionSource>,
}

impl GreedyMaximalScheduler {
    /// Creates the greedy scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accepted prefix.
    pub fn accepted_schedule(&self) -> Schedule {
        Schedule::from_steps(self.accepted.clone())
    }

    /// The read-from assignment committed for the accepted read at index
    /// `idx` of the accepted prefix.
    pub fn assignment(&self, idx: usize) -> Option<VersionSource> {
        self.assignments.get(&idx).copied()
    }

    /// Whether `prefix` still has a serialization agreeing with every
    /// committed assignment (plus an optional tentative one).
    fn has_consistent_serialization(
        &self,
        prefix: &Schedule,
        extra: Option<(usize, VersionSource)>,
    ) -> bool {
        let mut required = self.assignments.clone();
        if let Some((pos, src)) = extra {
            required.insert(pos, src);
        }
        has_serialization_extending(prefix, &required)
    }

    /// The candidate versions for a read, latest-first (then the initial
    /// version).
    fn candidates(&self, step: &Step) -> Vec<VersionSource> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for prev in self.accepted.iter().rev() {
            if prev.action == Action::Write && prev.entity == step.entity && seen.insert(prev.tx) {
                out.push(VersionSource::Tx(prev.tx));
            }
        }
        out.push(VersionSource::Initial);
        out
    }
}

impl Scheduler for GreedyMaximalScheduler {
    fn name(&self) -> &'static str {
        "greedy-max"
    }

    fn is_multiversion(&self) -> bool {
        true
    }

    fn offer(&mut self, step: Step) -> Decision {
        let extended = {
            let mut steps = self.accepted.clone();
            steps.push(step);
            Schedule::from_steps(steps)
        };
        match step.action {
            Action::Read => {
                let pos = self.accepted.len();
                for candidate in self.candidates(&step) {
                    if self.has_consistent_serialization(&extended, Some((pos, candidate))) {
                        self.assignments.insert(pos, candidate);
                        self.accepted.push(step);
                        return Decision::Accept {
                            read_from: Some(candidate),
                        };
                    }
                }
                Decision::Reject
            }
            Action::Write => {
                if !self.has_consistent_serialization(&extended, None) {
                    return Decision::Reject;
                }
                self.accepted.push(step);
                Decision::ACCEPT
            }
        }
    }

    fn abort(&mut self, tx: TxId) {
        let mut new_accepted = Vec::with_capacity(self.accepted.len());
        let mut new_assignments = HashMap::new();
        for (idx, step) in self.accepted.iter().enumerate() {
            if step.tx == tx {
                continue;
            }
            if let Some(&src) = self.assignments.get(&idx) {
                let src = match src {
                    VersionSource::Tx(t) if t == tx => VersionSource::Initial,
                    other => other,
                };
                new_assignments.insert(new_accepted.len(), src);
            }
            new_accepted.push(*step);
        }
        self.accepted = new_accepted;
        self.assignments = new_assignments;
    }

    fn reset(&mut self) {
        self.accepted.clear();
        self.assignments.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn run_all(s: &Schedule) -> bool {
        let mut sched = GreedyMaximalScheduler::new();
        s.steps().iter().all(|&st| sched.offer(st).is_accept())
    }

    #[test]
    fn accepts_every_mvsr_interleaving_of_a_small_system_or_more() {
        // Greediness can in principle lose some MVSR schedules (that is the
        // content of Section 4), but it must accept at least the MVCSR ones
        // generated here and never accept a non-MVSR prefix.
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if run_all(&s) {
                assert!(mvcc_classify::is_mvsr(&s), "greedy accepted non-MVSR {s}");
            }
        }
    }

    #[test]
    fn rejects_the_unserializable_step() {
        let s1 = &mvcc_core::examples::figure1()[0].schedule;
        let mut sched = GreedyMaximalScheduler::new();
        let d: Vec<bool> = s1
            .steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect();
        assert!(
            d.iter().any(|&x| !x),
            "some step of a non-MVSR schedule must be rejected"
        );
    }

    #[test]
    fn serves_the_latest_version_when_unconstrained() {
        let mut sched = GreedyMaximalScheduler::new();
        let s = Schedule::parse("Wa(x) Wb(x) Rc(x)").unwrap();
        let d: Vec<Decision> = s.steps().iter().map(|&st| sched.offer(st)).collect();
        assert_eq!(d[2].read_from(), Some(VersionSource::Tx(TxId(2))));
    }

    #[test]
    fn section4_prefix_forces_a_choice_that_loses_one_continuation() {
        // Feed the common prefix of the Section 4 pair; whatever the greedy
        // scheduler assigns to R_B(x), one of the two continuations must be
        // rejected at some step -- the executable content of "MVCSR is not
        // OLS".
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let prefix_len = s.common_prefix_len(&s_prime);

        let run = |full: &Schedule| -> bool {
            let mut sched = GreedyMaximalScheduler::new();
            full.steps().iter().all(|&st| sched.offer(st).is_accept())
        };
        let s_ok = run(&s);
        let sp_ok = run(&s_prime);
        // Each schedule individually is MVSR, so a scheduler that saw only
        // one of them could accept it; but the greedy choice at the shared
        // prefix is the same in both runs, so at most one can be accepted.
        assert!(
            !(s_ok && sp_ok),
            "prefix of length {prefix_len} cannot be completed both ways"
        );
        assert!(
            s_ok || sp_ok,
            "the greedy choice serves at least one continuation"
        );
    }

    #[test]
    fn greedy_version_choice_can_lose_an_mvsr_schedule() {
        // Figure 1 example (4) is MVSR (serializable as B A, with R_B(x)
        // reading the initial version), but the greedy scheduler eagerly
        // serves R_B(x) the *latest* version -- committing to the A B
        // serialization -- and must then reject a later step.  This is
        // Lemma 1 in action: the only reason a (would-be maximal) scheduler
        // rejects an MVSR schedule is that it used the "wrong" version
        // function earlier.
        let s4 = &mvcc_core::examples::figure1()[3].schedule;
        assert!(mvcc_classify::is_mvsr(s4));
        assert!(!run_all(s4));
    }

    #[test]
    fn abort_and_reset() {
        let mut sched = GreedyMaximalScheduler::new();
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        assert!(sched.offer(s.steps()[0]).is_accept());
        assert!(sched.offer(s.steps()[1]).is_accept());
        sched.abort(TxId(1));
        assert_eq!(sched.accepted_schedule().len(), 1);
        sched.reset();
        assert_eq!(sched.accepted_schedule().len(), 0);
        assert_eq!(sched.name(), "greedy-max");
    }
}
