//! The generic MVCSR scheduler: multiversion serialization-graph testing.
//!
//! Section 6 of the paper: "we have presented a generic multiversion
//! scheduler based on MVCSR, of which all known (multi- or single-version)
//! schedulers are specializations".  The scheduler maintains the
//! multiversion conflict graph (MVCG) of the accepted prefix:
//!
//! * a **read** step never closes an MVCG cycle (it has no incoming arcs at
//!   the time it arrives) and is always accepted; the version it is served is
//!   the latest write of the entity by a transaction that is *not forced
//!   after the reader* in the current MVCG (falling back to older versions,
//!   ultimately the initial one);
//! * a **write** `W_j(x)` adds an arc `T_i → T_j` for every earlier accepted
//!   read `R_i(x)`; it is accepted iff the MVCG stays acyclic.
//!
//! The accepted schedules are exactly the prefixes of MVCSR schedules
//! (Theorem 1), so this scheduler realises the class the paper proposes as
//! the practical multiversion analogue of CSR.
//!
//! **Caveat (Section 4 of the paper, executable form).**  MVCSR is *not*
//! on-line schedulable, so no scheduler can both accept every MVCSR schedule
//! and always assign a serializing version function: the version chosen for
//! an early read may be invalidated by later steps.  This scheduler binds
//! versions greedily (latest compatible write), which maximises acceptance
//! but can produce a non-serializing assignment on adversarial inputs — see
//! the `greedy_version_binding_can_fail_to_serialize` test, which exhibits
//! exactly the paper's counterexample.  Schedulers that guarantee
//! serializable version assignments (e.g. [`crate::MvtoScheduler`]) must
//! accept strictly fewer schedules; that trade-off is the content of
//! Theorems 4–6.

use crate::{Decision, Scheduler};
use mvcc_core::{Action, EntityId, Step, TxId, VersionFunction, VersionSource};
use std::collections::{HashMap, HashSet};

/// Multiversion conflict-graph-testing scheduler.
#[derive(Debug, Clone, Default)]
pub struct MvSgtScheduler {
    /// Accepted steps in order.
    accepted: Vec<Step>,
    /// MVCG arcs among accepted transactions.
    arcs: HashSet<(TxId, TxId)>,
    /// Versions served to accepted reads, by accepted-step index.
    read_assignments: HashMap<usize, VersionSource>,
    /// Committed transactions not yet pruned from the graph.
    committed: HashSet<TxId>,
    /// Committed transactions already pruned from the graph whose write
    /// steps are still retained as servable versions.
    retired: HashSet<TxId>,
}

impl MvSgtScheduler {
    /// Creates an MV-SGT scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accepted prefix as a schedule.
    pub fn accepted_schedule(&self) -> mvcc_core::Schedule {
        mvcc_core::Schedule::from_steps(self.accepted.clone())
    }

    /// The version function assigned to the accepted prefix (ordinary reads
    /// only; final reads follow the standard rule).
    pub fn version_function(&self) -> VersionFunction {
        let schedule = self.accepted_schedule();
        let mut vf = VersionFunction::standard(&schedule);
        for (&pos, &src) in &self.read_assignments {
            vf.assign(pos, src);
        }
        vf
    }

    /// Garbage-collects committed *source* nodes (the engine's long-run
    /// memory bound; mirrors [`crate::SgtScheduler`]'s pruning).
    ///
    /// MVCG arcs are only ever added pointing into the transaction taking
    /// the current (write) step, so a committed transaction never gains
    /// another incoming arc; with none now it can never lie on a cycle and
    /// its remaining arcs and *read* steps cannot influence any future
    /// decision.  Its **write** steps become *retired* versions, retained
    /// only while still servable: a retired writer is unreachable to every
    /// current and future reader once a newer retired write of the same
    /// entity exists — the reverse scan of `choose_version` reaches the
    /// newer retired write first and always stops there, because
    /// `precedes(reader, retired)` needs a path into a node that has no
    /// incoming arcs and never will.  So per entity only the newest
    /// retired write survives (plus every write by transactions still in
    /// the graph), which bounds the scheduler's state by the in-flight
    /// transactions + one settled version per entity instead of the whole
    /// write history.  The `prunes_never_change_decisions_or_versions`
    /// test checks both arguments differentially on exhaustive
    /// interleavings.
    fn prune_committed_sources(&mut self) {
        loop {
            let targets: HashSet<TxId> = self.arcs.iter().map(|&(_, to)| to).collect();
            let prunable: HashSet<TxId> = self
                .committed
                .iter()
                .copied()
                .filter(|t| !targets.contains(t))
                .collect();
            if prunable.is_empty() {
                return;
            }
            self.committed.retain(|t| !prunable.contains(t));
            self.arcs.retain(|&(from, _)| !prunable.contains(&from));
            self.retired.extend(prunable.iter().copied());
            // Per entity, the position of the newest write by a retired
            // writer: every older retired write is unreachable.
            let mut newest_settled: HashMap<EntityId, usize> = HashMap::new();
            for (idx, step) in self.accepted.iter().enumerate() {
                if step.action == Action::Write && self.retired.contains(&step.tx) {
                    newest_settled.insert(step.entity, idx);
                }
            }
            // Drop the pruned transactions' read steps and the superseded
            // retired writes (re-indexing the read assignments).
            let mut new_accepted = Vec::with_capacity(self.accepted.len());
            let mut new_assignments = HashMap::new();
            for (idx, step) in self.accepted.iter().enumerate() {
                let retired_tx = self.retired.contains(&step.tx);
                if step.action == Action::Read && retired_tx {
                    continue;
                }
                if step.action == Action::Write
                    && retired_tx
                    && newest_settled.get(&step.entity) != Some(&idx)
                {
                    continue;
                }
                if let Some(&src) = self.read_assignments.get(&idx) {
                    new_assignments.insert(new_accepted.len(), src);
                }
                new_accepted.push(*step);
            }
            self.accepted = new_accepted;
            self.read_assignments = new_assignments;
            // Forget retired writers whose last write is gone.
            let live: HashSet<TxId> = self.accepted.iter().map(|s| s.tx).collect();
            self.retired.retain(|t| live.contains(t));
        }
    }

    /// Number of accepted steps currently retained (observability for the
    /// pruning tests and the engine's memory accounting).
    pub fn retained_steps(&self) -> usize {
        self.accepted.len()
    }

    fn acyclic_with(&self, extra: &[(TxId, TxId)]) -> bool {
        let mut adj: HashMap<TxId, Vec<TxId>> = HashMap::new();
        for &(a, b) in self.arcs.iter().chain(extra.iter()) {
            if a != b {
                adj.entry(a).or_default().push(b);
            }
        }
        let nodes: HashSet<TxId> = adj
            .keys()
            .copied()
            .chain(adj.values().flatten().copied())
            .collect();
        let mut state: HashMap<TxId, u8> = HashMap::new();
        fn dfs(n: TxId, adj: &HashMap<TxId, Vec<TxId>>, state: &mut HashMap<TxId, u8>) -> bool {
            state.insert(n, 1);
            for &m in adj.get(&n).map_or(&[][..], |v| v.as_slice()) {
                match state.get(&m) {
                    Some(1) => return false,
                    Some(_) => {}
                    None => {
                        if !dfs(m, adj, state) {
                            return false;
                        }
                    }
                }
            }
            state.insert(n, 2);
            true
        }
        nodes
            .iter()
            .all(|&n| state.contains_key(&n) || dfs(n, &adj, &mut state))
    }

    /// `true` if the MVCG (with current arcs) forces `a` to precede `b`
    /// (there is a path from `a` to `b`).
    fn precedes(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        let mut stack = vec![a];
        let mut seen = HashSet::new();
        seen.insert(a);
        while let Some(n) = stack.pop() {
            for &(from, to) in &self.arcs {
                if from == n && seen.insert(to) {
                    if to == b {
                        return true;
                    }
                    stack.push(to);
                }
            }
        }
        false
    }

    /// Chooses the version served to a read of `entity` by `reader`:
    /// the most recent accepted write of the entity whose writer is not
    /// forced *after* the reader in the MVCG, falling back to the initial
    /// version.
    fn choose_version(&self, reader: TxId, entity: EntityId) -> VersionSource {
        for step in self.accepted.iter().rev() {
            if step.action == Action::Write && step.entity == entity {
                if step.tx == reader {
                    return VersionSource::Tx(reader);
                }
                if !self.precedes(reader, step.tx) {
                    return VersionSource::Tx(step.tx);
                }
            }
        }
        VersionSource::Initial
    }
}

impl Scheduler for MvSgtScheduler {
    fn name(&self) -> &'static str {
        "mv-sgt"
    }

    fn is_multiversion(&self) -> bool {
        true
    }

    fn offer(&mut self, step: Step) -> Decision {
        match step.action {
            Action::Read => {
                let version = self.choose_version(step.tx, step.entity);
                self.read_assignments.insert(self.accepted.len(), version);
                self.accepted.push(step);
                Decision::Accept {
                    read_from: Some(version),
                }
            }
            Action::Write => {
                let new_arcs: Vec<(TxId, TxId)> = self
                    .accepted
                    .iter()
                    .filter(|prev| {
                        prev.action == Action::Read
                            && prev.entity == step.entity
                            && prev.tx != step.tx
                    })
                    .map(|prev| (prev.tx, step.tx))
                    .collect();
                if !self.acyclic_with(&new_arcs) {
                    return Decision::Reject;
                }
                self.arcs.extend(new_arcs);
                self.accepted.push(step);
                Decision::ACCEPT
            }
        }
    }

    fn abort(&mut self, tx: TxId) {
        // Remove the transaction's steps and renumber the read assignments.
        let mut new_accepted = Vec::with_capacity(self.accepted.len());
        let mut new_assignments = HashMap::new();
        for (idx, step) in self.accepted.iter().enumerate() {
            if step.tx == tx {
                continue;
            }
            if let Some(&src) = self.read_assignments.get(&idx) {
                // Reads that were served the aborted transaction's version
                // fall back to the initial version (cascading aborts are out
                // of scope for the acceptance-rate experiments).
                let src = match src {
                    VersionSource::Tx(t) if t == tx => VersionSource::Initial,
                    other => other,
                };
                new_assignments.insert(new_accepted.len(), src);
            }
            new_accepted.push(*step);
        }
        self.accepted = new_accepted;
        self.read_assignments = new_assignments;
        self.arcs.retain(|&(a, b)| a != tx && b != tx);
        // Removing the aborted node's arcs may turn committed transactions
        // into sources.
        self.prune_committed_sources();
    }

    fn commit(&mut self, tx: TxId) {
        self.committed.insert(tx);
        self.prune_committed_sources();
    }

    fn reset(&mut self) {
        self.accepted.clear();
        self.arcs.clear();
        self.read_assignments.clear();
        self.committed.clear();
        self.retired.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn run_all(s: &Schedule) -> bool {
        let mut sched = MvSgtScheduler::new();
        s.steps().iter().all(|&st| sched.offer(st).is_accept())
    }

    #[test]
    fn accepts_exactly_the_mvcsr_interleavings() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(run_all(&s), mvcc_classify::is_mvcsr(&s), "schedule {s}");
        }
    }

    #[test]
    fn reads_are_always_accepted() {
        let s = Schedule::parse("Ra(x) Rb(x) Rc(x) Ra(y) Rb(y)").unwrap();
        assert!(run_all(&s));
    }

    #[test]
    fn accepts_strictly_more_than_sgt() {
        // Figure 1 example (4): MVCSR but not even view-serializable, so no
        // single-version scheduler can accept it, while MV-SGT does.
        let s4 = &mvcc_core::examples::figure1()[3].schedule;
        assert!(run_all(s4));
        let mut sgt = crate::SgtScheduler::new();
        assert!(!s4.steps().iter().all(|&st| sgt.offer(st).is_accept()));
    }

    #[test]
    fn assigned_version_function_serializes_the_accepted_schedule() {
        use mvcc_classify::serialization::{is_realizable, serial_read_froms};
        // Run over a batch of interleavings; whenever the whole schedule is
        // accepted, the scheduler's version assignment must agree with some
        // serialization (we check the one induced by the MVCG witness).
        let sys = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(y) Rc(y) Wc(x)")
            .unwrap()
            .tx_system();
        let mut checked = 0;
        for s in Schedule::all_interleavings(&sys).into_iter().take(300) {
            let mut sched = MvSgtScheduler::new();
            if s.steps().iter().all(|&st| sched.offer(st).is_accept()) {
                let order = mvcc_classify::mvcsr_witness(&s).expect("accepted => MVCSR");
                let rf = serial_read_froms(&s, &order);
                assert!(is_realizable(&s, &rf));
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn version_choice_prefers_latest_compatible_write() {
        let mut sched = MvSgtScheduler::new();
        let s = Schedule::parse("Wa(x) Wb(x) Rc(x)").unwrap();
        let decisions: Vec<Decision> = s.steps().iter().map(|&st| sched.offer(st)).collect();
        assert_eq!(
            decisions[2].read_from(),
            Some(VersionSource::Tx(TxId(2))),
            "nothing forces C after B, so C reads the latest version"
        );
    }

    #[test]
    fn version_choice_falls_back_when_the_latest_writer_is_forced_after() {
        // C reads x, then B writes x (arc C -> B), then C reads x again:
        // serving B's version would contradict C -> B, so the scheduler
        // serves an older version (here the initial one).
        let mut sched = MvSgtScheduler::new();
        let s = Schedule::parse("Rc(x) Wb(x) Rc(x)").unwrap();
        let d: Vec<Decision> = s.steps().iter().map(|&st| sched.offer(st)).collect();
        assert!(d.iter().all(|x| x.is_accept()));
        assert_eq!(d[2].read_from(), Some(VersionSource::Initial));
    }

    #[test]
    fn greedy_version_binding_can_fail_to_serialize() {
        // Figure 1 example (4) / Section 4: the schedule is MVCSR (so MV-SGT
        // accepts it), but serializing it requires R_B(x) to read the
        // *initial* version; the greedy binding hands it A's version, and
        // the resulting full schedule is not view-equivalent to any serial
        // order.  No scheduler accepting all of MVCSR can avoid this —
        // MVCSR is not OLS.
        use mvcc_core::equivalence::full_view_equivalent;
        use mvcc_core::VersionFunction;
        let s4 = &mvcc_core::examples::figure1()[3].schedule;
        let mut sched = MvSgtScheduler::new();
        assert!(s4.steps().iter().all(|&st| sched.offer(st).is_accept()));
        let vf = sched.version_function();
        let sys = s4.tx_system();
        let serializes = [vec![TxId(1), TxId(2)], vec![TxId(2), TxId(1)]]
            .into_iter()
            .any(|order| {
                let serial = Schedule::serial(&sys, &order);
                full_view_equivalent(s4, &vf, &serial, &VersionFunction::standard(&serial))
            });
        assert!(
            !serializes,
            "greedy binding happened to serialize; the counterexample should prevent that"
        );
        // The schedule itself *is* MVSR -- a different version function
        // works -- which is precisely the scheduler's dilemma.
        assert!(mvcc_classify::is_mvsr(s4));
    }

    #[test]
    fn abort_unblocks_rejected_writes() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(y) Wb(x)").unwrap();
        let mut sched = MvSgtScheduler::new();
        assert!(sched.offer(s.steps()[0]).is_accept());
        assert!(sched.offer(s.steps()[1]).is_accept());
        assert!(sched.offer(s.steps()[2]).is_accept()); // arc B -> A
        assert!(!sched.offer(s.steps()[3]).is_accept()); // arc A -> B would close the cycle
        sched.abort(TxId(1));
        assert!(sched.offer(s.steps()[3]).is_accept());
        assert_eq!(sched.name(), "mv-sgt");
        assert!(sched.is_multiversion());
    }

    /// The source-node GC argument, checked differentially: over every
    /// interleaving of a conflict-heavy system, a scheduler that is told
    /// about commits (and prunes) makes the same accept/reject decisions
    /// AND serves the same versions as one that is not.
    #[test]
    fn prunes_never_change_decisions_or_versions() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(y)")
            .unwrap()
            .tx_system();
        let mut pruning_happened = false;
        for s in Schedule::all_interleavings(&sys) {
            let mut plain = MvSgtScheduler::new();
            let mut pruned = MvSgtScheduler::new();
            let mut remaining: HashMap<TxId, usize> =
                sys.transactions().iter().map(|t| (t.id, t.len())).collect();
            for &st in s.steps() {
                let a = plain.offer(st);
                let b = pruned.offer(st);
                assert_eq!(a, b, "decision or version diverged at {st} in {s}");
                if a.is_accept() {
                    let left = remaining.get_mut(&st.tx).unwrap();
                    *left -= 1;
                    if *left == 0 {
                        pruned.commit(st.tx);
                    }
                }
            }
            if pruned.retained_steps() < plain.retained_steps() {
                pruning_happened = true;
            }
        }
        assert!(pruning_happened, "the GC never fired on any interleaving");
    }

    #[test]
    fn commit_prunes_reads_but_keeps_the_version_store() {
        let mut sched = MvSgtScheduler::new();
        let x = mvcc_core::EntityId(0);
        for i in 1..=50u32 {
            let tx = TxId(i);
            assert!(sched.offer(Step::read(tx, x)).is_accept());
            assert!(sched.offer(Step::write(tx, x)).is_accept());
            sched.commit(tx);
        }
        // All read steps pruned, and settled writes collapsed to the
        // newest one per entity — state is O(entities), not O(history).
        assert_eq!(sched.retained_steps(), 1);
        // A fresh reader is still served the newest committed version.
        let d = sched.offer(Step::read(TxId(99), x));
        assert_eq!(d.read_from(), Some(VersionSource::Tx(TxId(50))));
    }
}
