//! The scheduler interface.
//!
//! The paper's model (Section 2): "the scheduler examines each step of the
//! schedule in sequence and accepts it if the sequence of steps examined so
//! far is a prefix of a schedule in the set it recognizes; otherwise it
//! rejects the step".  A *multiversion* scheduler must additionally compute
//! the version function, i.e. decide on the spot which version an accepted
//! read observes.

use mvcc_core::{Step, TxId, VersionSource};

/// The scheduler's verdict on one offered step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The step is accepted.  For read steps of multiversion schedulers,
    /// `read_from` records which version the scheduler serves (`None` for
    /// single-version schedulers, which always serve the latest version, and
    /// for write steps).
    Accept {
        /// Version served to an accepted read, if the scheduler assigns one.
        read_from: Option<VersionSource>,
    },
    /// The step is rejected.
    Reject,
}

impl Decision {
    /// Plain acceptance without a version assignment.
    pub const ACCEPT: Decision = Decision::Accept { read_from: None };

    /// `true` if the step was accepted.
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept { .. })
    }

    /// The version assignment carried by an acceptance, if any.
    pub fn read_from(&self) -> Option<VersionSource> {
        match self {
            Decision::Accept { read_from } => *read_from,
            Decision::Reject => None,
        }
    }
}

/// An on-line scheduler: a state machine fed one step at a time.
pub trait Scheduler {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// `true` for schedulers that maintain multiple versions (used by the
    /// comparison tables to group columns).
    fn is_multiversion(&self) -> bool;

    /// Offers the next step; the scheduler must not assume it will be asked
    /// about the step again.
    fn offer(&mut self, step: Step) -> Decision;

    /// Offers a whole run of steps at once, returning one decision per step
    /// in order.
    ///
    /// Semantically this MUST be indistinguishable from calling
    /// [`Scheduler::offer`] on each step in sequence — the batch is an
    /// amortization window (one dispatch, one state traversal), never a
    /// reordering license.  The default does exactly that loop; schedulers
    /// whose per-step work can be shared across a batch (timestamp
    /// ordering's per-entity rule, for example) override it.  Batch-aware
    /// drivers (`mvcc-engine`'s admission pipeline) call this from their
    /// drain loop.
    fn offer_batch(&mut self, steps: &[Step]) -> Vec<Decision> {
        steps.iter().map(|&step| self.offer(step)).collect()
    }

    /// Notifies the scheduler that `tx` has been aborted: all its previously
    /// accepted steps are undone.  Used by the abort-and-continue harness.
    fn abort(&mut self, tx: TxId);

    /// Notifies the scheduler that `tx` has committed and will issue no more
    /// steps.
    ///
    /// The paper's model has no commits — a transaction simply stops issuing
    /// steps — so the default is a no-op and the schedule-level harnesses
    /// never call it.  Interactive drivers (the `mvcc-engine` session API)
    /// do not know a transaction's length up front and use this hook
    /// instead; schedulers whose admission state can be released at
    /// end-of-transaction (strict 2PL's locks) override it.
    fn commit(&mut self, tx: TxId) {
        let _ = tx;
    }

    /// Resets the scheduler to its initial state.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_helpers() {
        assert!(Decision::ACCEPT.is_accept());
        assert!(!Decision::Reject.is_accept());
        assert_eq!(Decision::Reject.read_from(), None);
        let d = Decision::Accept {
            read_from: Some(VersionSource::Initial),
        };
        assert_eq!(d.read_from(), Some(VersionSource::Initial));
    }
}
