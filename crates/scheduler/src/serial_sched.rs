//! The most conservative scheduler: accepts only serial prefixes.
//!
//! Used as the pessimistic baseline of the acceptance-rate experiment: every
//! scheduler in this crate accepts at least the schedules this one accepts.

use crate::{Decision, Scheduler};
use mvcc_core::{Step, TransactionSystem, TxId};
use std::collections::HashMap;

/// Accepts a step iff the prefix accepted so far remains serial (each
/// transaction runs to completion before another may start).
#[derive(Debug, Clone)]
pub struct SerialScheduler {
    /// Program length of each transaction (needed to know when the active
    /// transaction has finished).
    lengths: HashMap<TxId, usize>,
    active: Option<(TxId, usize)>,
    finished: Vec<TxId>,
}

impl SerialScheduler {
    /// Creates a serial scheduler for the given transaction system.
    pub fn new(system: &TransactionSystem) -> Self {
        SerialScheduler {
            lengths: system
                .transactions()
                .iter()
                .map(|t| (t.id, t.len()))
                .collect(),
            active: None,
            finished: Vec::new(),
        }
    }
}

impl Scheduler for SerialScheduler {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn is_multiversion(&self) -> bool {
        false
    }

    fn offer(&mut self, step: Step) -> Decision {
        if self.finished.contains(&step.tx) {
            return Decision::Reject;
        }
        match self.active {
            Some((tx, _)) if tx != step.tx => Decision::Reject,
            _ => {
                let done = {
                    let entry = self.active.get_or_insert((step.tx, 0));
                    entry.1 += 1;
                    entry.1 >= self.lengths.get(&step.tx).copied().unwrap_or(usize::MAX)
                };
                if done {
                    self.finished.push(step.tx);
                    self.active = None;
                }
                Decision::ACCEPT
            }
        }
    }

    fn abort(&mut self, tx: TxId) {
        if let Some((active, _)) = self.active {
            if active == tx {
                self.active = None;
            }
        }
        self.finished.retain(|&t| t != tx);
    }

    fn reset(&mut self) {
        self.active = None;
        self.finished.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn feed(sched: &mut SerialScheduler, s: &Schedule) -> Vec<bool> {
        s.steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect()
    }

    #[test]
    fn accepts_serial_schedules_entirely() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        let mut sched = SerialScheduler::new(&s.tx_system());
        assert!(feed(&mut sched, &s).iter().all(|&a| a));
    }

    #[test]
    fn rejects_the_first_interleaved_step() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sched = SerialScheduler::new(&s.tx_system());
        let decisions = feed(&mut sched, &s);
        // R2(x) arrives while T1 is still active and is rejected.  (The
        // harness is responsible for not offering further steps of a
        // rejected transaction; the raw state machine is only asked about
        // one step at a time.)
        assert_eq!(decisions[0..3], [true, false, true]);
    }

    #[test]
    fn reset_and_abort() {
        let s = Schedule::parse("Ra(x) Wa(x)").unwrap();
        let sys = s.tx_system();
        let mut sched = SerialScheduler::new(&sys);
        assert!(sched.offer(s.steps()[0]).is_accept());
        sched.reset();
        assert!(sched.offer(s.steps()[0]).is_accept());
        sched.abort(TxId(1));
        // After abort the transaction may start over.
        assert!(sched.offer(s.steps()[0]).is_accept());
    }

    #[test]
    fn name_and_kind() {
        let sys = TransactionSystem::default();
        let sched = SerialScheduler::new(&sys);
        assert_eq!(sched.name(), "serial");
        assert!(!sched.is_multiversion());
    }
}
