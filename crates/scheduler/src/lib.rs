//! # mvcc-scheduler
//!
//! On-line schedulers in the sense of the paper: algorithms that examine each
//! step of an arriving schedule in sequence and accept or reject it, a
//! multiversion scheduler additionally deciding *which version* each accepted
//! read observes.
//!
//! The crate provides the classical single-version schedulers that the paper
//! uses as its baseline universe, and the multiversion schedulers its
//! discussion (Section 6) motivates:
//!
//! | scheduler | class of output schedules | module |
//! |-----------|---------------------------|--------|
//! | [`SerialScheduler`] | serial | [`serial_sched`] |
//! | [`TwoPhaseLockingScheduler`] | CSR (strict 2PL) | [`two_phase_locking`] |
//! | [`TimestampScheduler`] | CSR (timestamp ordering) | [`timestamp`] |
//! | [`SgtScheduler`] | CSR (serialization-graph testing) | [`sgt`] |
//! | [`MvSgtScheduler`] | MVCSR (multiversion conflict-graph testing — the paper's generic MVCSR scheduler) | [`mv_sgt`] |
//! | [`MvtoScheduler`] | MVSR (multiversion timestamp ordering) | [`mvto`] |
//! | [`GreedyMaximalScheduler`] | a greedy approximation of a maximal MVSR scheduler (exponential; used by the Theorem 6 construction) | [`greedy`] |
//!
//! [`harness`] runs a scheduler over an input interleaving in either the
//! paper's prefix-recognition mode or an abort-and-continue mode, collecting
//! the acceptance statistics that experiment E9 (the intro's "enhanced
//! performance" claim) reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decision;
pub mod greedy;
pub mod harness;
pub mod mv_sgt;
pub mod mvto;
pub mod serial_sched;
pub mod sgt;
pub mod timestamp;
pub mod two_phase_locking;

pub use decision::{Decision, Scheduler};
pub use greedy::GreedyMaximalScheduler;
pub use harness::{run_abort, run_prefix, AbortOutcome, PrefixOutcome};
pub use mv_sgt::MvSgtScheduler;
pub use mvto::MvtoScheduler;
pub use serial_sched::SerialScheduler;
pub use sgt::SgtScheduler;
pub use timestamp::TimestampScheduler;
pub use two_phase_locking::TwoPhaseLockingScheduler;
