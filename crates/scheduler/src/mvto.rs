//! Multiversion timestamp ordering (MVTO) — Reed's scheme, as analysed by
//! Bernstein & Goodman (reference \[2\] of the paper).
//!
//! Every transaction is timestamped on arrival.  A read of `x` by `T` is
//! served the version of `x` with the largest write-timestamp not exceeding
//! `ts(T)` and is never rejected; a write of `x` by `T` is rejected iff some
//! transaction with a larger timestamp has already read a version older than
//! `ts(T)` (serving that reader would now be wrong).  MVTO outputs MVSR
//! schedules (serializable in timestamp order) and is the classical
//! "practical" multiversion scheduler the paper's introduction credits with
//! enhanced performance.

use crate::{Decision, Scheduler};
use mvcc_core::{Action, EntityId, Step, TxId, VersionSource};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Version {
    writer: Option<TxId>,
    write_ts: u64,
    max_read_ts: u64,
}

/// Multiversion timestamp-ordering scheduler.
#[derive(Debug, Clone, Default)]
pub struct MvtoScheduler {
    next_ts: u64,
    ts_of: HashMap<TxId, u64>,
    versions: HashMap<EntityId, Vec<Version>>,
}

impl MvtoScheduler {
    /// Creates an MVTO scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn timestamp(&mut self, tx: TxId) -> u64 {
        if let Some(&ts) = self.ts_of.get(&tx) {
            return ts;
        }
        // Timestamps start at 1 so that the initial version (write_ts 0) is
        // older than every transaction.
        let ts = self.next_ts + 1;
        self.next_ts += 1;
        self.ts_of.insert(tx, ts);
        ts
    }

    fn versions_mut(&mut self, entity: EntityId) -> &mut Vec<Version> {
        self.versions.entry(entity).or_insert_with(|| {
            vec![Version {
                writer: None,
                write_ts: 0,
                max_read_ts: 0,
            }]
        })
    }
}

impl Scheduler for MvtoScheduler {
    fn name(&self) -> &'static str {
        "mvto"
    }

    fn is_multiversion(&self) -> bool {
        true
    }

    fn offer(&mut self, step: Step) -> Decision {
        let ts = self.timestamp(step.tx);
        let versions = self.versions_mut(step.entity);
        match step.action {
            Action::Read => {
                // Serve the latest version with write_ts <= ts.
                let chosen = versions
                    .iter_mut()
                    .filter(|v| v.write_ts <= ts)
                    .max_by_key(|v| v.write_ts)
                    // lint: allow(unwrap) — MVTO invariant: the read version's writer is tracked
                    .expect("the initial version always qualifies");
                chosen.max_read_ts = chosen.max_read_ts.max(ts);
                let read_from = match chosen.writer {
                    None => VersionSource::Initial,
                    Some(w) => VersionSource::Tx(w),
                };
                Decision::Accept {
                    read_from: Some(read_from),
                }
            }
            Action::Write => {
                // Reject if some version older than ts has been read by a
                // transaction younger than ts: that reader should have seen
                // this write.
                let conflict = versions
                    .iter()
                    .filter(|v| v.write_ts < ts)
                    .max_by_key(|v| v.write_ts)
                    .is_some_and(|v| v.max_read_ts > ts);
                if conflict {
                    return Decision::Reject;
                }
                versions.push(Version {
                    writer: Some(step.tx),
                    write_ts: ts,
                    max_read_ts: ts,
                });
                Decision::ACCEPT
            }
        }
    }

    fn abort(&mut self, tx: TxId) {
        if let Some(ts) = self.ts_of.remove(&tx) {
            for versions in self.versions.values_mut() {
                versions.retain(|v| v.writer != Some(tx));
                // Read timestamps contributed by the aborted transaction are
                // left in place (conservative).
                let _ = ts;
            }
        }
    }

    fn reset(&mut self) {
        self.next_ts = 0;
        self.ts_of.clear();
        self.versions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn run_all(s: &Schedule) -> bool {
        let mut sched = MvtoScheduler::new();
        s.steps().iter().all(|&st| sched.offer(st).is_accept())
    }

    #[test]
    fn reads_are_never_rejected() {
        let s = Schedule::parse("Wa(x) Rb(x) Rc(x) Wb(y) Rc(y) Ra(y)").unwrap();
        let mut sched = MvtoScheduler::new();
        for &st in s.steps() {
            if st.is_read() {
                assert!(sched.offer(st).is_accept());
            } else {
                let _ = sched.offer(st);
            }
        }
    }

    #[test]
    fn old_reader_gets_old_version() {
        // A arrives first (reads y to get a timestamp), B writes x, then A
        // reads x: MVTO serves A the *initial* version of x rather than
        // rejecting (contrast with single-version TO, which rejects).
        let s = Schedule::parse("Ra(y) Wb(x) Ra(x)").unwrap();
        let mut sched = MvtoScheduler::new();
        let d: Vec<Decision> = s.steps().iter().map(|&st| sched.offer(st)).collect();
        assert!(d.iter().all(|x| x.is_accept()));
        assert_eq!(d[2].read_from(), Some(VersionSource::Initial));

        let mut to = crate::TimestampScheduler::new();
        let to_all = s.steps().iter().all(|&st| to.offer(st).is_accept());
        assert!(!to_all, "single-version TO rejects the late read");
    }

    #[test]
    fn late_write_is_rejected_when_a_younger_reader_saw_the_gap() {
        // B (younger) reads x (initial version); A (older) then writes x:
        // B should have read A's version, so the write is rejected.
        let s = Schedule::parse("Ra(y) Rb(x) Wa(x)").unwrap();
        let mut sched = MvtoScheduler::new();
        let d: Vec<bool> = s
            .steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect();
        assert_eq!(d, vec![true, true, false]);
    }

    #[test]
    fn accepted_complete_runs_are_mvsr() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        let mut accepted = 0;
        for s in Schedule::all_interleavings(&sys) {
            if run_all(&s) {
                assert!(mvcc_classify::is_mvsr(&s), "MVTO accepted non-MVSR {s}");
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }

    #[test]
    fn accepts_more_interleavings_than_single_version_to() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        let mut mvto_count = 0;
        let mut to_count = 0;
        for s in Schedule::all_interleavings(&sys) {
            if run_all(&s) {
                mvto_count += 1;
            }
            let mut to = crate::TimestampScheduler::new();
            if s.steps().iter().all(|&st| to.offer(st).is_accept()) {
                to_count += 1;
            }
        }
        assert!(
            mvto_count > to_count,
            "multiversion TO should accept strictly more ({mvto_count} vs {to_count})"
        );
    }

    #[test]
    fn abort_removes_written_versions() {
        let mut sched = MvtoScheduler::new();
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        assert!(sched.offer(s.steps()[0]).is_accept());
        sched.abort(TxId(1));
        let d = sched.offer(s.steps()[1]);
        assert_eq!(d.read_from(), Some(VersionSource::Initial));
        assert_eq!(sched.name(), "mvto");
        assert!(sched.is_multiversion());
    }
}
