//! Single-version timestamp ordering (TO).
//!
//! Every transaction receives a timestamp when its first step arrives; a
//! step is accepted iff it does not arrive "too late" with respect to the
//! timestamps of steps already accepted on the same entity.  The output
//! schedules are conflict-serializable in timestamp order, so TO is another
//! single-version baseline (typically more permissive than immediate-reject
//! 2PL, less permissive than SGT).

use crate::{Decision, Scheduler};
use mvcc_core::{Action, EntityId, Step, TxId};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct EntityTimestamps {
    max_read: Option<u64>,
    max_write: Option<u64>,
}

/// Basic timestamp-ordering scheduler (no Thomas write rule).
#[derive(Debug, Clone, Default)]
pub struct TimestampScheduler {
    next_ts: u64,
    ts_of: HashMap<TxId, u64>,
    entities: HashMap<EntityId, EntityTimestamps>,
}

impl TimestampScheduler {
    /// Creates a timestamp-ordering scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn timestamp(&mut self, tx: TxId) -> u64 {
        if let Some(&ts) = self.ts_of.get(&tx) {
            return ts;
        }
        let ts = self.next_ts;
        self.next_ts += 1;
        self.ts_of.insert(tx, ts);
        ts
    }
}

impl Scheduler for TimestampScheduler {
    fn name(&self) -> &'static str {
        "to"
    }

    fn is_multiversion(&self) -> bool {
        false
    }

    fn offer(&mut self, step: Step) -> Decision {
        let ts = self.timestamp(step.tx);
        let entry = self.entities.entry(step.entity).or_default();
        match step.action {
            Action::Read => {
                if entry.max_write.map(|w| ts < w).unwrap_or(false) {
                    return Decision::Reject;
                }
                entry.max_read = Some(entry.max_read.map_or(ts, |r| r.max(ts)));
                Decision::ACCEPT
            }
            Action::Write => {
                if entry.max_read.map(|r| ts < r).unwrap_or(false)
                    || entry.max_write.map(|w| ts < w).unwrap_or(false)
                {
                    return Decision::Reject;
                }
                entry.max_write = Some(ts);
                Decision::ACCEPT
            }
        }
    }

    fn abort(&mut self, tx: TxId) {
        // Timestamps of aborted transactions are retired; the per-entity
        // high-water marks are left conservative (they may retain the aborted
        // transaction's reads/writes), which can only cause extra rejections,
        // never incorrect acceptances.
        self.ts_of.remove(&tx);
    }

    fn reset(&mut self) {
        self.next_ts = 0;
        self.ts_of.clear();
        self.entities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn decisions(s: &Schedule) -> Vec<bool> {
        let mut sched = TimestampScheduler::new();
        s.steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect()
    }

    #[test]
    fn accepts_timestamp_ordered_interleavings() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x) Wb(y)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn rejects_late_writes() {
        // B (younger) reads x, then A (older) tries to write x: A's write is
        // too late and is rejected.
        let s = Schedule::parse("Ra(y) Rb(x) Wa(x)").unwrap();
        let d = decisions(&s);
        assert_eq!(d, vec![true, true, false]);
    }

    #[test]
    fn rejects_late_reads() {
        let s = Schedule::parse("Ra(y) Wb(x) Ra(x)").unwrap();
        let d = decisions(&s);
        assert_eq!(d, vec![true, true, false]);
    }

    #[test]
    fn accepted_complete_runs_are_csr() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        let mut accepted = 0;
        for s in Schedule::all_interleavings(&sys) {
            let mut sched = TimestampScheduler::new();
            if s.steps().iter().all(|&st| sched.offer(st).is_accept()) {
                assert!(mvcc_classify::is_csr(&s), "TO accepted non-CSR {s}");
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }

    #[test]
    fn reset_clears_state() {
        let s = Schedule::parse("Ra(y) Rb(x) Wa(x)").unwrap();
        let mut sched = TimestampScheduler::new();
        for &st in s.steps() {
            let _ = sched.offer(st);
        }
        sched.reset();
        assert!(sched.offer(s.steps()[0]).is_accept());
    }

    #[test]
    fn name_and_kind() {
        let sched = TimestampScheduler::new();
        assert_eq!(sched.name(), "to");
        assert!(!sched.is_multiversion());
    }
}
