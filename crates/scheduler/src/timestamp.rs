//! Single-version timestamp ordering (TO).
//!
//! Every transaction receives a timestamp when its first step arrives; a
//! step is accepted iff it does not arrive "too late" with respect to the
//! timestamps of steps already accepted on the same entity.  The output
//! schedules are conflict-serializable in timestamp order, so TO is another
//! single-version baseline (typically more permissive than immediate-reject
//! 2PL, less permissive than SGT).

use crate::{Decision, Scheduler};
use mvcc_core::{Action, EntityId, Step, TxId};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct EntityTimestamps {
    max_read: Option<u64>,
    max_write: Option<u64>,
}

/// Basic timestamp-ordering scheduler (no Thomas write rule).
#[derive(Debug, Clone, Default)]
pub struct TimestampScheduler {
    next_ts: u64,
    ts_of: HashMap<TxId, u64>,
    entities: HashMap<EntityId, EntityTimestamps>,
}

impl TimestampScheduler {
    /// Creates a timestamp-ordering scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    fn timestamp(&mut self, tx: TxId) -> u64 {
        if let Some(&ts) = self.ts_of.get(&tx) {
            return ts;
        }
        let ts = self.next_ts;
        self.next_ts += 1;
        self.ts_of.insert(tx, ts);
        ts
    }
}

impl Scheduler for TimestampScheduler {
    fn name(&self) -> &'static str {
        "to"
    }

    fn is_multiversion(&self) -> bool {
        false
    }

    fn offer(&mut self, step: Step) -> Decision {
        let ts = self.timestamp(step.tx);
        let entry = self.entities.entry(step.entity).or_default();
        match step.action {
            Action::Read => {
                if entry.max_write.is_some_and(|w| ts < w) {
                    return Decision::Reject;
                }
                entry.max_read = Some(entry.max_read.map_or(ts, |r| r.max(ts)));
                Decision::ACCEPT
            }
            Action::Write => {
                if entry.max_read.is_some_and(|r| ts < r) || entry.max_write.is_some_and(|w| ts < w)
                {
                    return Decision::Reject;
                }
                entry.max_write = Some(ts);
                Decision::ACCEPT
            }
        }
    }

    fn offer_batch(&mut self, steps: &[Step]) -> Vec<Decision> {
        // TO's ruling for a step depends only on (a) the transaction's
        // timestamp — fixed at its first appearance — and (b) the high-water
        // marks of the step's own entity.  So a batch can be validated in
        // one pass per entity: assign timestamps in arrival order first
        // (exactly what the sequential loop would do), then rule each
        // entity's run independently.  Decisions are identical to offering
        // the steps one at a time; the differential test below proves it.
        let timestamps: Vec<u64> = steps.iter().map(|s| self.timestamp(s.tx)).collect();
        let mut decisions = vec![Decision::Reject; steps.len()];
        let mut by_entity: HashMap<EntityId, Vec<usize>> = HashMap::new();
        for (i, step) in steps.iter().enumerate() {
            by_entity.entry(step.entity).or_default().push(i);
        }
        for (entity, indices) in by_entity {
            let entry = self.entities.entry(entity).or_default();
            for i in indices {
                let ts = timestamps[i];
                decisions[i] = match steps[i].action {
                    Action::Read => {
                        if entry.max_write.is_some_and(|w| ts < w) {
                            Decision::Reject
                        } else {
                            entry.max_read = Some(entry.max_read.map_or(ts, |r| r.max(ts)));
                            Decision::ACCEPT
                        }
                    }
                    Action::Write => {
                        if entry.max_read.is_some_and(|r| ts < r)
                            || entry.max_write.is_some_and(|w| ts < w)
                        {
                            Decision::Reject
                        } else {
                            entry.max_write = Some(ts);
                            Decision::ACCEPT
                        }
                    }
                };
            }
        }
        decisions
    }

    fn abort(&mut self, tx: TxId) {
        // Timestamps of aborted transactions are retired; the per-entity
        // high-water marks are left conservative (they may retain the aborted
        // transaction's reads/writes), which can only cause extra rejections,
        // never incorrect acceptances.
        self.ts_of.remove(&tx);
    }

    fn reset(&mut self) {
        self.next_ts = 0;
        self.ts_of.clear();
        self.entities.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn decisions(s: &Schedule) -> Vec<bool> {
        let mut sched = TimestampScheduler::new();
        s.steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect()
    }

    #[test]
    fn accepts_timestamp_ordered_interleavings() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x) Wb(y)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn rejects_late_writes() {
        // B (younger) reads x, then A (older) tries to write x: A's write is
        // too late and is rejected.
        let s = Schedule::parse("Ra(y) Rb(x) Wa(x)").unwrap();
        let d = decisions(&s);
        assert_eq!(d, vec![true, true, false]);
    }

    #[test]
    fn rejects_late_reads() {
        let s = Schedule::parse("Ra(y) Wb(x) Ra(x)").unwrap();
        let d = decisions(&s);
        assert_eq!(d, vec![true, true, false]);
    }

    #[test]
    fn accepted_complete_runs_are_csr() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        let mut accepted = 0;
        for s in Schedule::all_interleavings(&sys) {
            let mut sched = TimestampScheduler::new();
            if s.steps().iter().all(|&st| sched.offer(st).is_accept()) {
                assert!(mvcc_classify::is_csr(&s), "TO accepted non-CSR {s}");
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }

    #[test]
    fn offer_batch_matches_sequential_offers() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xba7c);
        for trial in 0..64 {
            // A random stream, split into random batch boundaries: the
            // batched scheduler and the sequential twin must agree on every
            // decision and end in equivalent states.
            let steps: Vec<Step> = (0..24)
                .map(|_| {
                    let tx = TxId(rng.gen_range(1..5u32));
                    let entity = mvcc_core::EntityId(rng.gen_range(0..3u32));
                    if rng.gen_bool(0.5) {
                        Step::read(tx, entity)
                    } else {
                        Step::write(tx, entity)
                    }
                })
                .collect();
            let mut batched = TimestampScheduler::new();
            let mut sequential = TimestampScheduler::new();
            let mut cursor = 0;
            while cursor < steps.len() {
                let end = (cursor + rng.gen_range(1..6usize)).min(steps.len());
                let batch = &steps[cursor..end];
                let got = batched.offer_batch(batch);
                let want: Vec<Decision> = batch.iter().map(|&s| sequential.offer(s)).collect();
                assert_eq!(got, want, "trial {trial}, steps {cursor}..{end}");
                cursor = end;
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let s = Schedule::parse("Ra(y) Rb(x) Wa(x)").unwrap();
        let mut sched = TimestampScheduler::new();
        for &st in s.steps() {
            let _ = sched.offer(st);
        }
        sched.reset();
        assert!(sched.offer(s.steps()[0]).is_accept());
    }

    #[test]
    fn name_and_kind() {
        let sched = TimestampScheduler::new();
        assert_eq!(sched.name(), "to");
        assert!(!sched.is_multiversion());
    }
}
