//! Driving schedulers over input interleavings and collecting statistics.
//!
//! Two execution modes are provided:
//!
//! * [`run_prefix`] — the paper's model: the scheduler recognises a prefix of
//!   the input; the run stops at the first rejected step.  The interesting
//!   quantity is how much of the input (and whether all of it) is accepted.
//! * [`run_abort`] — the systems view: a rejected step aborts its
//!   transaction (the scheduler is told via [`Scheduler::abort`]), the rest
//!   of that transaction's steps are skipped, and the run continues.  The
//!   interesting quantities are committed/aborted transaction counts.
//!
//! Experiment E9 (the introduction's "multiversion schedulers have enhanced
//! performance") is the comparison of these statistics across the scheduler
//! zoo on identical workloads.

use crate::Scheduler;
use mvcc_core::{Schedule, Step, TxId};
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of a prefix-recognition run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixOutcome {
    /// Number of steps accepted before the first rejection (or all of them).
    pub accepted_steps: usize,
    /// Total number of steps offered.
    pub total_steps: usize,
    /// `true` if every step was accepted.
    pub accepted_all: bool,
    /// The accepted prefix.
    pub prefix: Schedule,
}

impl PrefixOutcome {
    /// Fraction of the input accepted (1.0 when the whole schedule was).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.total_steps == 0 {
            1.0
        } else {
            self.accepted_steps as f64 / self.total_steps as f64
        }
    }
}

/// Runs `scheduler` over `schedule` in prefix-recognition mode.
pub fn run_prefix(scheduler: &mut dyn Scheduler, schedule: &Schedule) -> PrefixOutcome {
    scheduler.reset();
    let mut accepted: Vec<Step> = Vec::new();
    for &step in schedule.steps() {
        if scheduler.offer(step).is_accept() {
            accepted.push(step);
        } else {
            break;
        }
    }
    PrefixOutcome {
        accepted_steps: accepted.len(),
        total_steps: schedule.len(),
        accepted_all: accepted.len() == schedule.len(),
        prefix: Schedule::from_steps(accepted),
    }
}

/// Outcome of an abort-and-continue run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbortOutcome {
    /// Transactions all of whose steps were accepted.
    pub committed: BTreeSet<TxId>,
    /// Transactions aborted because one of their steps was rejected.
    pub aborted: BTreeSet<TxId>,
    /// Steps accepted (including steps of later-aborted transactions).
    pub accepted_steps: usize,
    /// Total number of steps offered (steps of already-aborted transactions
    /// are skipped and not counted as offered).
    pub offered_steps: usize,
    /// The committed projection of the accepted schedule: accepted steps of
    /// committed transactions, in order.
    pub committed_schedule: Schedule,
}

impl AbortOutcome {
    /// Fraction of transactions that committed.
    pub fn commit_ratio(&self) -> f64 {
        let total = self.committed.len() + self.aborted.len();
        if total == 0 {
            1.0
        } else {
            self.committed.len() as f64 / total as f64
        }
    }
}

/// Runs `scheduler` over `schedule` in abort-and-continue mode.
pub fn run_abort(scheduler: &mut dyn Scheduler, schedule: &Schedule) -> AbortOutcome {
    scheduler.reset();
    let sys = schedule.tx_system();
    let mut remaining: BTreeMap<TxId, usize> =
        sys.transactions().iter().map(|t| (t.id, t.len())).collect();
    let mut aborted: BTreeSet<TxId> = BTreeSet::new();
    let mut accepted_steps_by_tx: BTreeMap<TxId, Vec<(usize, Step)>> = BTreeMap::new();
    let mut accepted_count = 0usize;
    let mut offered = 0usize;

    for (pos, &step) in schedule.steps().iter().enumerate() {
        if aborted.contains(&step.tx) {
            continue;
        }
        offered += 1;
        if scheduler.offer(step).is_accept() {
            accepted_count += 1;
            accepted_steps_by_tx
                .entry(step.tx)
                .or_default()
                .push((pos, step));
            // lint: allow(unwrap) — remaining is seeded with every tx before the loop
            *remaining.get_mut(&step.tx).expect("tx known") -= 1;
        } else {
            aborted.insert(step.tx);
            scheduler.abort(step.tx);
            accepted_steps_by_tx.remove(&step.tx);
        }
    }

    let committed: BTreeSet<TxId> = remaining
        .iter()
        .filter(|(tx, &left)| left == 0 && !aborted.contains(tx))
        .map(|(&tx, _)| tx)
        .collect();

    let mut committed_steps: Vec<(usize, Step)> = accepted_steps_by_tx
        .into_iter()
        .filter(|(tx, _)| committed.contains(tx))
        .flat_map(|(_, steps)| steps)
        .collect();
    committed_steps.sort_by_key(|&(pos, _)| pos);

    AbortOutcome {
        committed,
        aborted,
        accepted_steps: accepted_count,
        offered_steps: offered,
        committed_schedule: Schedule::from_steps(
            committed_steps.into_iter().map(|(_, s)| s).collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MvSgtScheduler, SgtScheduler, TwoPhaseLockingScheduler};
    use mvcc_core::Schedule;

    #[test]
    fn prefix_run_stops_at_first_rejection() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sgt = SgtScheduler::new();
        let out = run_prefix(&mut sgt, &s);
        assert_eq!(out.accepted_steps, 3);
        assert!(!out.accepted_all);
        assert!((out.acceptance_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(out.prefix.len(), 3);
    }

    #[test]
    fn prefix_run_accepts_serial_schedules_fully() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        let mut sgt = SgtScheduler::new();
        let out = run_prefix(&mut sgt, &s);
        assert!(out.accepted_all);
        assert_eq!(out.prefix.steps(), s.steps());
    }

    #[test]
    fn abort_run_commits_the_rest() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let mut sgt = SgtScheduler::new();
        let out = run_abort(&mut sgt, &s);
        // B's write closes the cycle, so B aborts and A commits.
        assert!(out.committed.contains(&mvcc_core::TxId(1)));
        assert!(out.aborted.contains(&mvcc_core::TxId(2)));
        assert!((out.commit_ratio() - 0.5).abs() < 1e-9);
        assert!(mvcc_classify::is_csr(&out.committed_schedule));
    }

    #[test]
    fn abort_run_skips_remaining_steps_of_aborted_transactions() {
        let s = Schedule::parse("Wa(x) Wb(x) Rb(y) Ra(y)").unwrap();
        let mut twopl = TwoPhaseLockingScheduler::new(&s.tx_system());
        let out = run_abort(&mut twopl, &s);
        assert!(out.aborted.contains(&mvcc_core::TxId(2)));
        // B's later read of y must not have been offered.
        assert_eq!(out.offered_steps, 3);
    }

    #[test]
    fn committed_projection_of_mv_sgt_is_mvcsr() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(y)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys).into_iter().take(200) {
            let mut sched = MvSgtScheduler::new();
            let out = run_abort(&mut sched, &s);
            assert!(
                mvcc_classify::is_mvcsr(&out.committed_schedule),
                "committed projection not MVCSR for {s}"
            );
        }
    }

    #[test]
    fn empty_schedule_outcomes() {
        let s = Schedule::empty();
        let mut sgt = SgtScheduler::new();
        let p = run_prefix(&mut sgt, &s);
        assert!(p.accepted_all);
        assert_eq!(p.acceptance_ratio(), 1.0);
        let a = run_abort(&mut sgt, &s);
        assert_eq!(a.commit_ratio(), 1.0);
        assert!(a.committed_schedule.is_empty());
    }
}
