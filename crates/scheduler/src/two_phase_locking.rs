//! Strict two-phase locking (2PL), the canonical single-version scheduler.
//!
//! \[Yannakakis 1981\] (reference \[11\] of the paper) shows that locking
//! schedulers output only CSR schedules; this implementation is the baseline
//! against which the multiversion schedulers' larger output classes are
//! measured in experiment E9.
//!
//! The scheduler is *conservative/immediate*: a step that cannot acquire its
//! lock is rejected rather than delayed (the paper's scheduler model has no
//! delays).  Locks are held until the transaction's last step (strictness),
//! which requires knowing the transactions' lengths.
//!
//! Interactive drivers that do not know the lengths up front (the
//! `mvcc-engine` session API) use [`TwoPhaseLockingScheduler::new_dynamic`]
//! instead: no lengths are declared, locks are held until the driver
//! reports the end of the transaction via [`Scheduler::commit`] (or
//! [`Scheduler::abort`]) — which is exactly strict 2PL as a real lock
//! manager implements it.

use crate::{Decision, Scheduler};
use mvcc_core::{Action, EntityId, Step, TransactionSystem, TxId};
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Default)]
struct LockState {
    shared: HashSet<TxId>,
    exclusive: Option<TxId>,
}

/// Strict two-phase locking with immediate rejection on lock conflict.
#[derive(Debug, Clone)]
pub struct TwoPhaseLockingScheduler {
    lengths: HashMap<TxId, usize>,
    progress: HashMap<TxId, usize>,
    locks: HashMap<EntityId, LockState>,
    held_by: HashMap<TxId, HashSet<EntityId>>,
}

impl TwoPhaseLockingScheduler {
    /// Creates a strict-2PL scheduler for the given transaction system.
    pub fn new(system: &TransactionSystem) -> Self {
        TwoPhaseLockingScheduler {
            lengths: system
                .transactions()
                .iter()
                .map(|t| (t.id, t.len()))
                .collect(),
            progress: HashMap::new(),
            locks: HashMap::new(),
            held_by: HashMap::new(),
        }
    }

    /// Creates a strict-2PL scheduler with no pre-declared transaction
    /// lengths: every transaction is treated as open-ended and its locks are
    /// released only on [`Scheduler::commit`] or [`Scheduler::abort`].
    pub fn new_dynamic() -> Self {
        TwoPhaseLockingScheduler {
            lengths: HashMap::new(),
            progress: HashMap::new(),
            locks: HashMap::new(),
            held_by: HashMap::new(),
        }
    }

    fn can_lock(&self, tx: TxId, entity: EntityId, action: Action) -> bool {
        let Some(state) = self.locks.get(&entity) else {
            return true;
        };
        match action {
            Action::Read => state.exclusive.map_or(true, |h| h == tx),
            Action::Write => {
                state.exclusive.map_or(true, |h| h == tx) && state.shared.iter().all(|&h| h == tx)
            }
        }
    }

    fn acquire(&mut self, tx: TxId, entity: EntityId, action: Action) {
        let state = self.locks.entry(entity).or_default();
        match action {
            Action::Read => {
                state.shared.insert(tx);
            }
            Action::Write => {
                state.exclusive = Some(tx);
            }
        }
        self.held_by.entry(tx).or_default().insert(entity);
    }

    fn release_all(&mut self, tx: TxId) {
        if let Some(entities) = self.held_by.remove(&tx) {
            for e in entities {
                if let Some(state) = self.locks.get_mut(&e) {
                    state.shared.remove(&tx);
                    if state.exclusive == Some(tx) {
                        state.exclusive = None;
                    }
                }
            }
        }
    }
}

impl Scheduler for TwoPhaseLockingScheduler {
    fn name(&self) -> &'static str {
        "2pl"
    }

    fn is_multiversion(&self) -> bool {
        false
    }

    fn offer(&mut self, step: Step) -> Decision {
        if !self.can_lock(step.tx, step.entity, step.action) {
            return Decision::Reject;
        }
        self.acquire(step.tx, step.entity, step.action);
        let done = {
            let p = self.progress.entry(step.tx).or_insert(0);
            *p += 1;
            *p >= self.lengths.get(&step.tx).copied().unwrap_or(usize::MAX)
        };
        if done {
            // Strictness: locks are released only when the transaction ends.
            self.release_all(step.tx);
        }
        Decision::ACCEPT
    }

    fn abort(&mut self, tx: TxId) {
        self.release_all(tx);
        self.progress.remove(&tx);
    }

    fn commit(&mut self, tx: TxId) {
        // In pre-declared mode the last accepted step already released the
        // locks and this is a no-op; in dynamic mode this IS the release
        // point (strictness).
        self.release_all(tx);
        self.progress.remove(&tx);
    }

    fn reset(&mut self) {
        self.progress.clear();
        self.locks.clear();
        self.held_by.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::Schedule;

    fn decisions(s: &Schedule) -> Vec<bool> {
        let mut sched = TwoPhaseLockingScheduler::new(&s.tx_system());
        s.steps()
            .iter()
            .map(|&st| sched.offer(st).is_accept())
            .collect()
    }

    #[test]
    fn accepts_serial_schedules() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn accepts_non_serial_but_conflict_free_interleavings() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x) Wb(y)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn rejects_write_on_read_locked_entity() {
        // B wants to write x while A still holds a shared lock on it.
        let s = Schedule::parse("Ra(x) Wb(x) Wa(y)").unwrap();
        let d = decisions(&s);
        assert!(d[0]);
        assert!(!d[1]);
    }

    #[test]
    fn shared_locks_are_compatible() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(y) Wb(z)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn locks_released_at_transaction_end_allow_later_conflicts() {
        // A completes (two steps) and releases its exclusive lock, so B's
        // write of x is then accepted.
        let s = Schedule::parse("Wa(x) Ra(y) Wb(x)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn abort_releases_locks() {
        // A has two steps, so after W1(x) it still holds the exclusive lock.
        let s = Schedule::parse("Wa(x) Wb(x) Ra(y)").unwrap();
        let sys = s.tx_system();
        let mut sched = TwoPhaseLockingScheduler::new(&sys);
        assert!(sched.offer(s.steps()[0]).is_accept());
        assert!(!sched.offer(s.steps()[1]).is_accept());
        sched.abort(TxId(1));
        assert!(sched.offer(s.steps()[1]).is_accept());
    }

    #[test]
    fn upgrade_from_shared_to_exclusive_by_same_tx_is_allowed() {
        let s = Schedule::parse("Ra(x) Wa(x)").unwrap();
        assert!(decisions(&s).iter().all(|&d| d));
    }

    #[test]
    fn dynamic_mode_holds_locks_until_commit() {
        let s = Schedule::parse("Wa(x) Wb(x) Ra(y)").unwrap();
        let mut sched = TwoPhaseLockingScheduler::new_dynamic();
        assert!(sched.offer(s.steps()[0]).is_accept());
        // In pre-declared mode A's single remaining step would matter; in
        // dynamic mode A is open-ended, so B's conflicting write is rejected
        // until A commits.
        assert!(!sched.offer(s.steps()[1]).is_accept());
        sched.commit(TxId(1));
        assert!(sched.offer(s.steps()[1]).is_accept());
    }

    #[test]
    fn dynamic_mode_commit_releases_shared_locks_too() {
        let s = Schedule::parse("Ra(x) Wb(x)").unwrap();
        let mut sched = TwoPhaseLockingScheduler::new_dynamic();
        assert!(sched.offer(s.steps()[0]).is_accept());
        assert!(!sched.offer(s.steps()[1]).is_accept());
        sched.commit(TxId(1));
        assert!(sched.offer(s.steps()[1]).is_accept());
    }

    #[test]
    fn predeclared_mode_commit_is_a_harmless_no_op() {
        let s = Schedule::parse("Wa(x) Ra(y) Wb(x)").unwrap();
        let sys = s.tx_system();
        let mut sched = TwoPhaseLockingScheduler::new(&sys);
        assert!(sched.offer(s.steps()[0]).is_accept());
        assert!(sched.offer(s.steps()[1]).is_accept());
        sched.commit(TxId(1));
        assert!(sched.offer(s.steps()[2]).is_accept());
    }

    #[test]
    fn accepted_complete_runs_are_csr() {
        // Whenever 2PL accepts an entire interleaving, that interleaving is
        // conflict-serializable (Yannakakis' theorem, one direction).
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(z)")
            .unwrap()
            .tx_system();
        let mut accepted = 0;
        for s in Schedule::all_interleavings(&sys) {
            let mut sched = TwoPhaseLockingScheduler::new(&sys);
            if s.steps().iter().all(|&st| sched.offer(st).is_accept()) {
                assert!(mvcc_classify::is_csr(&s), "2PL accepted non-CSR {s}");
                accepted += 1;
            }
        }
        assert!(accepted > 0);
    }
}
