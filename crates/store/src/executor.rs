//! Replaying schedules against the store.
//!
//! The executor connects the schedule-level theory to the engine:
//!
//! * [`execute_full_schedule`] replays a *full schedule* `(s, V)` — the
//!   paper's central object — serving every read the version `V` assigns,
//!   and reports the realized READ-FROM relation (which must equal the one
//!   computed symbolically by `mvcc-core`; the tests check this).
//! * [`execute_with_scheduler`] drives an on-line scheduler from
//!   `mvcc-scheduler` step by step, applying accepted steps to the store and
//!   aborting rejected transactions, i.e. the whole stack of the paper in
//!   one function: scheduler decisions → version choices → storage.

use crate::store::{MvStore, StoreError, TxHandle};
use bytes::Bytes;
use mvcc_core::{ReadFrom, ReadFromRelation, Schedule, TxId, VersionFunction};
use mvcc_scheduler::Scheduler;
use std::collections::{BTreeMap, BTreeSet};

/// The result of replaying a schedule.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Transactions that committed.
    pub committed: Vec<TxId>,
    /// Transactions that were aborted (rejected by the scheduler or by the
    /// store).
    pub aborted: Vec<TxId>,
    /// The READ-FROM relation realized by the execution (committed and
    /// aborted transactions' reads alike, excluding the padded final reads).
    pub read_from: ReadFromRelation,
    /// Number of store-level read/write operations performed.
    pub operations: usize,
}

fn value_for(tx: TxId, pos: usize) -> Bytes {
    Bytes::from(format!("{tx}@{pos}"))
}

/// Replays the full schedule `(schedule, vf)` against `store`, serving every
/// read exactly the version the version function assigns.  All transactions
/// commit (the version function is assumed valid; validate it first with
/// [`VersionFunction::validate`]).
pub fn execute_full_schedule(
    store: &MvStore,
    schedule: &Schedule,
    vf: &VersionFunction,
) -> Result<ExecutionReport, StoreError> {
    let sys = schedule.tx_system();
    let mut remaining: BTreeMap<TxId, usize> =
        sys.transactions().iter().map(|t| (t.id, t.len())).collect();
    let mut handles: BTreeMap<TxId, TxHandle> = BTreeMap::new();
    let mut committed = Vec::new();
    let mut relation = ReadFromRelation::new();
    let mut operations = 0usize;

    for (pos, &step) in schedule.steps().iter().enumerate() {
        let handle = match handles.get(&step.tx) {
            Some(&h) => h,
            None => {
                let h = store.begin(step.tx)?;
                handles.insert(step.tx, h);
                h
            }
        };
        if step.is_read() {
            let source = vf.get(pos).unwrap_or(mvcc_core::VersionSource::Initial);
            store.read_version(handle, step.entity, source)?;
            relation.insert(ReadFrom {
                reader: step.tx,
                entity: step.entity,
                writer: source.as_tx(),
            });
        } else {
            store.write(handle, step.entity, value_for(step.tx, pos))?;
        }
        operations += 1;
        // lint: allow(unwrap) — remaining is seeded with every tx before the loop
        let left = remaining.get_mut(&step.tx).expect("tx belongs to system");
        *left -= 1;
        if *left == 0 {
            store.commit(handle, false)?;
            committed.push(step.tx);
        }
    }

    Ok(ExecutionReport {
        committed,
        aborted: Vec::new(),
        read_from: relation,
        operations,
    })
}

/// Drives `scheduler` over `schedule`, applying accepted steps to the store.
/// A rejected step aborts its transaction in both the scheduler and the
/// store; remaining steps of aborted transactions are skipped.
pub fn execute_with_scheduler(
    store: &MvStore,
    schedule: &Schedule,
    scheduler: &mut dyn Scheduler,
) -> Result<ExecutionReport, StoreError> {
    scheduler.reset();
    let sys = schedule.tx_system();
    let mut remaining: BTreeMap<TxId, usize> =
        sys.transactions().iter().map(|t| (t.id, t.len())).collect();
    let mut handles: BTreeMap<TxId, TxHandle> = BTreeMap::new();
    let mut committed = Vec::new();
    let mut aborted: BTreeSet<TxId> = BTreeSet::new();
    let mut relation = ReadFromRelation::new();
    let mut operations = 0usize;

    for (pos, &step) in schedule.steps().iter().enumerate() {
        if aborted.contains(&step.tx) {
            continue;
        }
        let decision = scheduler.offer(step);
        if !decision.is_accept() {
            aborted.insert(step.tx);
            scheduler.abort(step.tx);
            if let Some(&h) = handles.get(&step.tx) {
                let _ = store.abort(h);
            }
            continue;
        }
        let handle = match handles.get(&step.tx) {
            Some(&h) => h,
            None => {
                let h = store.begin(step.tx)?;
                handles.insert(step.tx, h);
                h
            }
        };
        if step.is_read() {
            // Multiversion schedulers say which version to serve; single
            // version schedulers get the latest committed (or own) version.
            let result = match decision.read_from() {
                Some(source) => store
                    .read_version(handle, step.entity, source)
                    .map(|_| source.as_tx()),
                None => store.read_latest(handle, step.entity).map(|_| {
                    store
                        .reads_of(step.tx)
                        .last()
                        .map_or(TxId::INITIAL, |&(_, w)| w)
                }),
            };
            match result {
                Ok(writer) => {
                    relation.insert(ReadFrom {
                        reader: step.tx,
                        entity: step.entity,
                        writer,
                    });
                }
                Err(_) => {
                    aborted.insert(step.tx);
                    scheduler.abort(step.tx);
                    let _ = store.abort(handle);
                    continue;
                }
            }
        } else {
            store.write(handle, step.entity, value_for(step.tx, pos))?;
        }
        operations += 1;
        // lint: allow(unwrap) — remaining is seeded with every tx before the loop
        let left = remaining.get_mut(&step.tx).expect("tx belongs to system");
        *left -= 1;
        if *left == 0 {
            store.commit(handle, false)?;
            committed.push(step.tx);
        }
    }

    Ok(ExecutionReport {
        committed,
        aborted: aborted.into_iter().collect(),
        read_from: relation,
        operations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::{EntityId, VersionSource};
    use mvcc_scheduler::{MvSgtScheduler, SgtScheduler, TwoPhaseLockingScheduler};

    fn store_for(schedule: &Schedule) -> MvStore {
        MvStore::with_entities(schedule.entities_accessed(), Bytes::from_static(b"init"))
    }

    #[test]
    fn full_schedule_execution_realizes_the_version_function() {
        // Figure 1 example (2): the MVSR witness version function replayed
        // against the engine yields exactly the symbolic READ-FROM relation.
        let s2 = &mvcc_core::examples::figure1()[1].schedule;
        let (_, vf) = mvcc_classify::mvsr_witness(s2).unwrap();
        let store = store_for(s2);
        let report = execute_full_schedule(&store, s2, &vf).unwrap();
        assert_eq!(report.committed.len(), 3);
        assert!(report.aborted.is_empty());
        // Compare with the symbolic relation, restricted to real reads.
        let symbolic = ReadFromRelation::of_full_schedule(s2, &vf);
        for entry in report.read_from.entries() {
            assert!(symbolic.contains(entry.reader, entry.entity, entry.writer));
        }
        assert_eq!(report.operations, s2.len());
    }

    #[test]
    fn standard_version_function_matches_single_version_execution() {
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y) Rc(y)").unwrap();
        let vf = VersionFunction::standard(&s);
        let store = store_for(&s);
        let report = execute_full_schedule(&store, &s, &vf).unwrap();
        assert!(report.read_from.contains(TxId(2), EntityId(0), TxId(1)));
        assert!(report.read_from.contains(TxId(3), EntityId(1), TxId(2)));
    }

    #[test]
    fn scheduler_driven_execution_commits_what_the_scheduler_accepts() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        let store = store_for(&s);
        let mut sgt = SgtScheduler::new();
        let report = execute_with_scheduler(&store, &s, &mut sgt).unwrap();
        assert_eq!(report.committed, vec![TxId(1)]);
        assert_eq!(report.aborted, vec![TxId(2)]);
    }

    #[test]
    fn mv_sgt_execution_serves_old_versions() {
        // Figure 1 example (4) is rejected by every single-version scheduler
        // but accepted by MV-SGT; the store must be able to serve the old
        // version the scheduler asks for.
        let s4 = &mvcc_core::examples::figure1()[3].schedule;
        let store = store_for(s4);
        let mut mvsgt = MvSgtScheduler::new();
        let report = execute_with_scheduler(&store, s4, &mut mvsgt).unwrap();
        assert_eq!(
            report.committed.len(),
            2,
            "both transactions commit under MV-SGT"
        );
        assert!(report.aborted.is_empty());
        // At least one read was served a non-latest version (the initial x).
        assert!(report
            .read_from
            .entries()
            .any(|e| e.writer == TxId::INITIAL && e.entity == EntityId(0)));
    }

    #[test]
    fn two_phase_locking_execution_on_a_clean_interleaving() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x) Wb(y)").unwrap();
        let store = store_for(&s);
        let mut twopl = TwoPhaseLockingScheduler::new(&s.tx_system());
        let report = execute_with_scheduler(&store, &s, &mut twopl).unwrap();
        assert_eq!(report.committed.len(), 2);
        assert!(report.aborted.is_empty());
    }

    #[test]
    fn invalid_version_function_surfaces_a_store_error() {
        let s = Schedule::parse("Rb(x) Wa(x)").unwrap();
        let mut vf = VersionFunction::standard(&s);
        // Force the read to a version that does not exist yet at execution
        // time: the store rejects it.
        vf.assign(0, VersionSource::Tx(TxId(1)));
        let store = store_for(&s);
        assert!(execute_full_schedule(&store, &s, &vf).is_err());
    }

    #[test]
    fn aborted_transactions_leave_no_versions_behind() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x) ").unwrap();
        let store = store_for(&s);
        let mut sgt = SgtScheduler::new();
        let _ = execute_with_scheduler(&store, &s, &mut sgt).unwrap();
        // Only A's committed version plus the initial one remain.
        assert_eq!(store.version_count(EntityId(0)), 2);
    }
}
