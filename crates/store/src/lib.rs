//! # mvcc-store
//!
//! An in-memory multiversion storage engine: the substrate a multiversion
//! scheduler sits on.  The paper abstracts this away ("each entity has an
//! ordered set of values associated with it; each write step adds a value at
//! the end"); this crate makes it concrete so that the schedule-level theory
//! can be exercised against an executable database:
//!
//! * [`version_chain`] — per-entity ordered version chains, exactly the
//!   paper's "ordered set of values";
//! * [`store`] — the transactional key-value store: begin / read / write /
//!   commit / abort, with reads served by an explicit version choice (the
//!   version function made operational) or by snapshot visibility;
//! * [`snapshot`] — snapshot-isolation reads and first-committer-wins
//!   write-conflict detection, the production face of multiversion
//!   concurrency control;
//! * [`gc`] — version garbage collection under a low-watermark of active
//!   transactions;
//! * [`executor`] — replays a schedule (with an optional version function or
//!   an on-line scheduler from `mvcc-scheduler`) against the store and
//!   reports the realized READ-FROM relation, connecting the theory crates
//!   to the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod gc;
pub mod snapshot;
pub mod store;
pub mod version_chain;

pub use executor::{execute_full_schedule, execute_with_scheduler, ExecutionReport};
pub use store::{CommittedChain, MvStore, StoreError, TxHandle, TxStatus};
pub use version_chain::{Version, VersionChain};

// Re-export the byte-buffer crate so downstream users (examples, the
// umbrella crate) construct values with the exact type the store expects.
pub use bytes;
