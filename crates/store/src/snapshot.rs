//! Snapshot-isolation session layer on top of the store.
//!
//! Snapshot isolation is the production face of multiversion concurrency
//! control (the intro's references [1, 2, 10] all converge on it): each
//! transaction reads from the snapshot taken at its start and commits only
//! if no concurrent committer wrote an entity in its write set ("first
//! committer wins").  It is *not* serializable in general — the classic
//! write-skew anomaly — and the example binary `banking_snapshot`
//! demonstrates exactly that using the schedule classifiers.

use crate::store::{MvStore, StoreError, TxHandle};
use bytes::Bytes;
use mvcc_core::{EntityId, Schedule, Step, TxId};

/// A convenience session wrapper enforcing snapshot reads and
/// first-committer-wins commits.
#[derive(Debug)]
pub struct SnapshotSession<'a> {
    store: &'a MvStore,
    handle: TxHandle,
}

impl<'a> SnapshotSession<'a> {
    /// Begins a snapshot transaction.
    pub fn begin(store: &'a MvStore, tx: TxId) -> Result<Self, StoreError> {
        let handle = store.begin(tx)?;
        Ok(SnapshotSession { store, handle })
    }

    /// The transaction id.
    pub fn id(&self) -> TxId {
        self.handle.id
    }

    /// Snapshot read.
    pub fn read(&self, entity: EntityId) -> Result<Bytes, StoreError> {
        self.store.read_snapshot(self.handle, entity)
    }

    /// Buffered multiversion write.
    pub fn write(&self, entity: EntityId, value: Bytes) -> Result<(), StoreError> {
        self.store.write(self.handle, entity, value)
    }

    /// First-committer-wins commit.
    pub fn commit(self) -> Result<u64, StoreError> {
        self.store.commit(self.handle, true)
    }

    /// Abort.
    pub fn abort(self) -> Result<(), StoreError> {
        self.store.abort(self.handle)
    }
}

/// Runs a schedule under snapshot isolation: every transaction begins at its
/// first step, reads use the snapshot, and each transaction attempts to
/// commit at its last step.  Returns the ids of committed transactions and
/// the *observed* schedule of committed transactions (used by tests to
/// relate SI to the serializability classes).
pub fn run_schedule_under_si(store: &MvStore, schedule: &Schedule) -> (Vec<TxId>, Schedule) {
    use std::collections::{BTreeMap, BTreeSet};
    let sys = schedule.tx_system();
    let mut remaining: BTreeMap<TxId, usize> =
        sys.transactions().iter().map(|t| (t.id, t.len())).collect();
    let mut handles: BTreeMap<TxId, TxHandle> = BTreeMap::new();
    let mut committed: Vec<TxId> = Vec::new();
    let mut failed: BTreeSet<TxId> = BTreeSet::new();
    let mut observed: Vec<(usize, Step)> = Vec::new();

    for (pos, &step) in schedule.steps().iter().enumerate() {
        if failed.contains(&step.tx) {
            continue;
        }
        let handle = match handles.get(&step.tx) {
            Some(&h) => h,
            None => match store.begin(step.tx) {
                Ok(h) => {
                    handles.insert(step.tx, h);
                    h
                }
                Err(_) => {
                    failed.insert(step.tx);
                    continue;
                }
            },
        };
        let ok = if step.is_read() {
            store.read_snapshot(handle, step.entity).is_ok()
        } else {
            store
                .write(
                    handle,
                    step.entity,
                    Bytes::from(format!("{}@{}", step.tx, pos)),
                )
                .is_ok()
        };
        if !ok {
            failed.insert(step.tx);
            let _ = store.abort(handle);
            continue;
        }
        observed.push((pos, step));
        // lint: allow(unwrap) — remaining is seeded with every tx before the loop
        let left = remaining.get_mut(&step.tx).expect("known tx");
        *left -= 1;
        if *left == 0 {
            match store.commit(handle, true) {
                Ok(_) => committed.push(step.tx),
                Err(_) => {
                    failed.insert(step.tx);
                }
            }
        }
    }

    let committed_set: BTreeSet<TxId> = committed.iter().copied().collect();
    let committed_schedule = Schedule::from_steps(
        observed
            .into_iter()
            .filter(|(_, s)| committed_set.contains(&s.tx))
            .map(|(_, s)| s)
            .collect(),
    );
    (committed, committed_schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1);

    fn store() -> MvStore {
        MvStore::with_entities([X, Y], Bytes::from_static(b"0"))
    }

    #[test]
    fn session_reads_its_snapshot() {
        let s = store();
        let reader = SnapshotSession::begin(&s, TxId(1)).unwrap();
        let writer = SnapshotSession::begin(&s, TxId(2)).unwrap();
        writer.write(X, Bytes::from_static(b"w")).unwrap();
        writer.commit().unwrap();
        assert_eq!(reader.read(X).unwrap(), Bytes::from_static(b"0"));
        reader.abort().unwrap();
    }

    #[test]
    fn first_committer_wins_via_sessions() {
        let s = store();
        let t1 = SnapshotSession::begin(&s, TxId(1)).unwrap();
        let t2 = SnapshotSession::begin(&s, TxId(2)).unwrap();
        t1.write(X, Bytes::from_static(b"a")).unwrap();
        t2.write(X, Bytes::from_static(b"b")).unwrap();
        assert!(t1.commit().is_ok());
        assert!(matches!(t2.commit(), Err(StoreError::WriteConflict(_, _))));
    }

    #[test]
    fn lost_update_is_prevented_by_si() {
        // The lost-update schedule (Figure 1 example 1) aborts one of the
        // two transactions under snapshot isolation.
        let s1 = &mvcc_core::examples::figure1()[0].schedule;
        let store = store();
        let (committed, _) = run_schedule_under_si(&store, s1);
        assert_eq!(
            committed.len(),
            1,
            "exactly one of the two writers survives"
        );
    }

    #[test]
    fn write_skew_commits_a_non_serializable_schedule() {
        // The textbook write-skew anomaly: A reads x and writes y, B reads y
        // and writes x; disjoint write sets, so SI commits both, yet the
        // schedule is not view-serializable.
        let skew = Schedule::parse("Ra(x) Rb(y) Wa(y) Wb(x)").unwrap();
        let store = store();
        let (committed, observed) = run_schedule_under_si(&store, &skew);
        assert_eq!(committed.len(), 2, "SI allows write skew");
        assert!(
            !mvcc_classify::is_vsr(&observed),
            "the committed schedule is not serializable: that is the anomaly"
        );
    }

    #[test]
    fn serial_schedules_commit_fully_under_si() {
        let serial = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        let store = store();
        let (committed, observed) = run_schedule_under_si(&store, &serial);
        assert_eq!(committed.len(), 2);
        assert_eq!(observed.len(), 4);
    }
}
