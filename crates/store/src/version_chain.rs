//! Per-entity version chains.
//!
//! The paper's multiversion model: "each entity has an ordered set of values
//! associated with it; each write step adds a value at the end of the set".
//! A [`VersionChain`] is that ordered set, with enough metadata (writer,
//! commit timestamp, value bytes) for snapshot visibility and garbage
//! collection.

use bytes::Bytes;
use mvcc_core::TxId;
use serde::{Deserialize, Serialize};

/// One version of an entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// The transaction that wrote the version (`TxId::INITIAL` for the
    /// initial version).
    pub writer: TxId,
    /// Commit timestamp of the writer; `None` while the writer is still
    /// active (uncommitted versions are visible only to their writer).
    pub commit_ts: Option<u64>,
    /// The value payload.
    pub value: Bytes,
}

impl Version {
    /// `true` once the writing transaction has committed.
    pub fn is_committed(&self) -> bool {
        self.commit_ts.is_some()
    }
}

/// The ordered set of versions of one entity (oldest first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionChain {
    versions: Vec<Version>,
}

/// Serializable summary of a chain used by the stats tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainStats {
    /// Total number of versions.
    pub total: usize,
    /// Number of committed versions.
    pub committed: usize,
}

impl VersionChain {
    /// Creates a chain holding only the initial version with the given
    /// payload.
    pub fn with_initial(value: Bytes) -> Self {
        VersionChain {
            versions: vec![Version {
                writer: TxId::INITIAL,
                commit_ts: Some(0),
                value,
            }],
        }
    }

    /// Creates an empty chain (no initial version).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a chain from already-committed versions (crash recovery).
    ///
    /// The versions should arrive oldest-first; recovery hands them over
    /// sorted by commit timestamp, which makes the chain's positional
    /// "latest committed" coincide with the max-timestamp version.
    pub fn from_committed(versions: impl IntoIterator<Item = (TxId, u64, Bytes)>) -> Self {
        VersionChain {
            versions: versions
                .into_iter()
                .map(|(writer, ts, value)| Version {
                    writer,
                    commit_ts: Some(ts),
                    value,
                })
                .collect(),
        }
    }

    /// Inserts an already-committed version at its timestamp position,
    /// idempotently: a `(writer, ts)` version already present is left
    /// alone (returns `false`).  Committed versions stay sorted by commit
    /// timestamp, so the positional "latest committed" keeps coinciding
    /// with the max-timestamp version — the invariant `from_committed`
    /// establishes and replication apply must preserve.  In the normal
    /// log-shipping case `ts` exceeds every existing timestamp and this
    /// is a plain push.
    pub fn insert_committed(&mut self, writer: TxId, ts: u64, value: Bytes) -> bool {
        if self
            .versions
            .iter()
            .any(|v| v.writer == writer && v.commit_ts == Some(ts))
        {
            return false;
        }
        let at = self
            .versions
            .iter()
            .rposition(|v| v.commit_ts.is_some_and(|t| t <= ts))
            .map_or(0, |i| i + 1);
        self.versions.insert(
            at,
            Version {
                writer,
                commit_ts: Some(ts),
                value,
            },
        );
        true
    }

    /// Appends a new (uncommitted) version written by `writer`.
    pub fn append(&mut self, writer: TxId, value: Bytes) {
        self.versions.push(Version {
            writer,
            commit_ts: None,
            value,
        });
    }

    /// Marks every version written by `writer` as committed at `ts`.
    pub fn commit_writer(&mut self, writer: TxId, ts: u64) {
        for v in &mut self.versions {
            if v.writer == writer && v.commit_ts.is_none() {
                v.commit_ts = Some(ts);
            }
        }
    }

    /// Removes every uncommitted version written by `writer` (abort).
    pub fn remove_writer(&mut self, writer: TxId) {
        self.versions
            .retain(|v| v.writer != writer || v.commit_ts.is_some());
    }

    /// The latest version, committed or not.
    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    /// The latest committed version.
    pub fn latest_committed(&self) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.is_committed())
    }

    /// The latest version written by `writer`, if any.
    pub fn latest_by(&self, writer: TxId) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.writer == writer)
    }

    /// The latest version visible to a snapshot taken at `snapshot_ts`
    /// (committed with `commit_ts <= snapshot_ts`), optionally also seeing
    /// the uncommitted versions of `own` (a transaction always sees its own
    /// writes).
    pub fn visible_at(&self, snapshot_ts: u64, own: Option<TxId>) -> Option<&Version> {
        self.versions.iter().rev().find(|v| {
            own.is_some_and(|tx| v.writer == tx) || v.commit_ts.is_some_and(|ts| ts <= snapshot_ts)
        })
    }

    /// All versions, oldest first.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    /// Number of versions in the chain.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// `true` when the chain holds no versions at all.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Drops committed versions that can no longer be observed by any
    /// snapshot at or after `watermark`: a committed version is reclaimable
    /// if a newer committed version exists with `commit_ts <= watermark`.
    /// Returns the number of versions reclaimed.
    pub fn prune(&mut self, watermark: u64) -> usize {
        // Find the newest committed version with commit_ts <= watermark; all
        // older committed versions are unreachable.
        let keep_from = self
            .versions
            .iter()
            .enumerate()
            .rev()
            .find(|(_, v)| v.commit_ts.is_some_and(|ts| ts <= watermark))
            .map_or(0, |(i, _)| i);
        if keep_from == 0 {
            return 0;
        }
        let before = self.versions.len();
        // Keep uncommitted versions regardless (their writers are active).
        let mut kept = Vec::with_capacity(before - keep_from + 1);
        for (i, v) in self.versions.drain(..).enumerate() {
            if i >= keep_from || !v.is_committed() {
                kept.push(v);
            }
        }
        self.versions = kept;
        before - self.versions.len()
    }

    /// Summary statistics.
    pub fn stats(&self) -> ChainStats {
        ChainStats {
            total: self.versions.len(),
            committed: self.versions.iter().filter(|v| v.is_committed()).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn initial_version_is_committed_at_zero() {
        let chain = VersionChain::with_initial(val("v0"));
        assert_eq!(chain.len(), 1);
        let v = chain.latest_committed().unwrap();
        assert_eq!(v.writer, TxId::INITIAL);
        assert_eq!(v.commit_ts, Some(0));
    }

    #[test]
    fn append_commit_and_visibility() {
        let mut chain = VersionChain::with_initial(val("v0"));
        chain.append(TxId(1), val("v1"));
        assert!(!chain.latest().unwrap().is_committed());
        // Uncommitted versions are invisible to other snapshots...
        assert_eq!(chain.visible_at(10, None).unwrap().value, val("v0"));
        // ...but visible to their own writer.
        assert_eq!(
            chain.visible_at(10, Some(TxId(1))).unwrap().value,
            val("v1")
        );
        chain.commit_writer(TxId(1), 5);
        assert_eq!(chain.visible_at(4, None).unwrap().value, val("v0"));
        assert_eq!(chain.visible_at(5, None).unwrap().value, val("v1"));
    }

    #[test]
    fn abort_removes_uncommitted_versions_only() {
        let mut chain = VersionChain::with_initial(val("v0"));
        chain.append(TxId(1), val("v1"));
        chain.commit_writer(TxId(1), 3);
        chain.append(TxId(2), val("v2"));
        chain.remove_writer(TxId(2));
        assert_eq!(chain.len(), 2);
        chain.remove_writer(TxId(1));
        assert_eq!(chain.len(), 2, "committed versions survive abort calls");
    }

    #[test]
    fn latest_by_writer() {
        let mut chain = VersionChain::with_initial(val("v0"));
        chain.append(TxId(1), val("a"));
        chain.append(TxId(2), val("b"));
        chain.append(TxId(1), val("c"));
        assert_eq!(chain.latest_by(TxId(1)).unwrap().value, val("c"));
        assert_eq!(chain.latest_by(TxId(2)).unwrap().value, val("b"));
        assert!(chain.latest_by(TxId(9)).is_none());
    }

    #[test]
    fn prune_reclaims_unreachable_committed_versions() {
        let mut chain = VersionChain::with_initial(val("v0"));
        for (tx, ts) in [(1u32, 1u64), (2, 2), (3, 3)] {
            chain.append(TxId(tx), val("x"));
            chain.commit_writer(TxId(tx), ts);
        }
        chain.append(TxId(4), val("pending"));
        assert_eq!(chain.len(), 5);
        // Watermark 2: versions older than the one committed at 2 go away.
        let reclaimed = chain.prune(2);
        assert_eq!(reclaimed, 2);
        assert_eq!(chain.len(), 3);
        // The uncommitted version is preserved.
        assert!(chain.versions().iter().any(|v| !v.is_committed()));
        // Visibility at the watermark is unchanged.
        assert_eq!(chain.visible_at(2, None).unwrap().writer, TxId(2));
        // Pruning again at the same watermark is a no-op.
        assert_eq!(chain.prune(2), 0);
    }

    #[test]
    fn prune_with_low_watermark_keeps_everything() {
        let mut chain = VersionChain::with_initial(val("v0"));
        chain.append(TxId(1), val("a"));
        chain.commit_writer(TxId(1), 10);
        assert_eq!(chain.prune(5), 0);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn stats_count_committed_versions() {
        let mut chain = VersionChain::with_initial(val("v0"));
        chain.append(TxId(1), val("a"));
        let stats = chain.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.committed, 1);
        assert!(!chain.is_empty());
        assert!(VersionChain::new().is_empty());
    }
}
