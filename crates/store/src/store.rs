//! The transactional multiversion key-value store.
//!
//! The store keeps one [`VersionChain`] per entity and
//! exposes the operations a scheduler needs: begin, read (either the latest
//! committed version, a snapshot-visible version, or an explicitly chosen
//! writer's version — the version function made operational), write, commit
//! and abort.  A global commit counter provides the timestamps used by
//! snapshot visibility and garbage collection.
//!
//! Concurrency: the store is guarded by a single tracked `RwLock` around
//! the chain map plus a tracked mutex for transaction state, which is ample
//! for the experiment workloads (the paper's contribution is the scheduling
//! theory, not a lock-free engine); the API is `&self` so the store can be
//! shared across threads by the bench harness.  All three locks are
//! `mvcc-analysis` tracked types, so the store's internal order (`txs` →
//! `commit-counter`, `txs` → `chains`) is continuously verified by the
//! lockdep cycle check, and `begin`'s register-atomic-with-snapshot
//! contract is an executed happens-before assertion.

use crate::version_chain::VersionChain;
use bytes::Bytes;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::{TrackedMutex, TrackedRwLock};
use mvcc_core::{EntityId, TxId, VersionSource};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Status of a transaction known to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Begun and neither committed nor aborted.
    Active,
    /// Committed at the contained timestamp.
    Committed(u64),
    /// Aborted.
    Aborted,
}

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The transaction is not active (never begun, already finished).
    NotActive(TxId),
    /// The entity has no version visible under the requested rule.
    NoVisibleVersion(EntityId),
    /// The requested writer never wrote the entity (invalid version choice).
    NoSuchVersion(EntityId, TxId),
    /// Snapshot-isolation write-write conflict (first committer wins).
    WriteConflict(EntityId, TxId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotActive(tx) => write!(f, "{tx} is not active"),
            StoreError::NoVisibleVersion(e) => write!(f, "no visible version of {e}"),
            StoreError::NoSuchVersion(e, tx) => write!(f, "{tx} never wrote {e}"),
            StoreError::WriteConflict(e, tx) => {
                write!(f, "write-write conflict on {e} against {tx}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-transaction bookkeeping.
#[derive(Debug, Clone)]
struct TxRecord {
    status: TxStatus,
    /// Snapshot timestamp (commit counter at begin).
    snapshot_ts: u64,
    /// Entities written (for commit/abort and SI conflict checks).
    write_set: BTreeSet<EntityId>,
    /// Entities read and the writer observed (the realized READ-FROM).
    read_set: Vec<(EntityId, TxId)>,
}

/// The committed versions of one entity as exported by
/// [`MvStore::committed_state`] and consumed by
/// [`MvStore::from_recovered`]: `(writer, commit timestamp, value)` in
/// chain order.
pub type CommittedChain = Vec<(TxId, u64, Bytes)>;

/// A handle identifying a transaction begun on the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TxHandle {
    /// The transaction id.
    pub id: TxId,
}

/// The multiversion store.
#[derive(Debug)]
pub struct MvStore {
    chains: TrackedRwLock<BTreeMap<EntityId, VersionChain>>,
    txs: TrackedMutex<BTreeMap<TxId, TxRecord>>,
    commit_counter: TrackedMutex<u64>,
}

impl Default for MvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MvStore {
            chains: TrackedRwLock::new(lock_class!("store.chains"), BTreeMap::new()),
            txs: TrackedMutex::new(lock_class!("store.txs"), BTreeMap::new()),
            commit_counter: TrackedMutex::new(lock_class!("store.commit-counter"), 0),
        }
    }

    /// Creates a store with an initial version (value `initial`) for each of
    /// the given entities — the explicit `T0` of the paper.
    pub fn with_entities(entities: impl IntoIterator<Item = EntityId>, initial: Bytes) -> Self {
        let store = Self::new();
        {
            let mut chains = store.chains.write();
            for e in entities {
                chains.insert(e, VersionChain::with_initial(initial.clone()));
            }
        }
        store
    }

    /// Begins transaction `tx`.  Re-beginning an aborted transaction resets
    /// it; re-beginning an active or committed transaction is an error.
    pub fn begin(&self, tx: TxId) -> Result<TxHandle, StoreError> {
        // The snapshot timestamp is sampled while holding the transaction
        // table (`txs` before `commit_counter`, the same order `commit`
        // uses), so the new transaction is *registered* atomically with its
        // snapshot choice.  Sampling first and registering after — the
        // original order — left a window in which a concurrent GC watermark
        // ([`crate::gc::watermark`] reads `active_snapshots`, then
        // `current_ts`) saw neither the snapshot nor the registration and
        // could reclaim versions this transaction's snapshot was entitled
        // to observe.  With registration-then-sample, any watermark
        // computed before the registration is bounded by a commit counter
        // value at or below this snapshot, and pruning under it keeps
        // every version visible at or after that bound.
        let mut txs = self.txs.lock();
        match txs.get(&tx).map(|r| r.status) {
            Some(TxStatus::Active) | Some(TxStatus::Committed(_)) => {
                return Err(StoreError::NotActive(tx))
            }
            _ => {}
        }
        let snapshot_ts = *self.commit_counter.lock();
        // hb claim "begin-atomic-with-snapshot": both probes fire inside
        // the same `store.txs` critical section, which the analysis gate
        // asserts via `require_same_critical_section`.
        mvcc_analysis::hb::probe("store.begin_snapshot", u64::from(tx.0));
        txs.insert(
            tx,
            TxRecord {
                status: TxStatus::Active,
                snapshot_ts,
                write_set: BTreeSet::new(),
                read_set: Vec::new(),
            },
        );
        mvcc_analysis::hb::probe("store.begin_registered", u64::from(tx.0));
        Ok(TxHandle { id: tx })
    }

    /// [`MvStore::begin`] with an explicit snapshot timestamp at or below
    /// the current counter — a read-only transaction pinned *in the past*
    /// (a replica's transaction-consistent safe point).  The snapshot is
    /// clamped to the current counter, and registering it pins the GC
    /// watermark exactly like a fresh snapshot would; the caller is
    /// responsible for `snapshot_ts` not sitting below the already
    /// reclaimed horizon (replicas cap their GC at the safe point).
    pub fn begin_at(&self, tx: TxId, snapshot_ts: u64) -> Result<TxHandle, StoreError> {
        let mut txs = self.txs.lock();
        match txs.get(&tx).map(|r| r.status) {
            Some(TxStatus::Active) | Some(TxStatus::Committed(_)) => {
                return Err(StoreError::NotActive(tx))
            }
            _ => {}
        }
        let snapshot_ts = snapshot_ts.min(*self.commit_counter.lock());
        txs.insert(
            tx,
            TxRecord {
                status: TxStatus::Active,
                snapshot_ts,
                write_set: BTreeSet::new(),
                read_set: Vec::new(),
            },
        );
        Ok(TxHandle { id: tx })
    }

    fn with_active<T>(
        &self,
        tx: TxId,
        f: impl FnOnce(&mut TxRecord) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut txs = self.txs.lock();
        let record = txs.get_mut(&tx).ok_or(StoreError::NotActive(tx))?;
        if record.status != TxStatus::Active {
            return Err(StoreError::NotActive(tx));
        }
        f(record)
    }

    /// Reads the *latest committed* version of `entity` (single-version
    /// semantics; a transaction sees its own uncommitted writes first).
    pub fn read_latest(&self, tx: TxHandle, entity: EntityId) -> Result<Bytes, StoreError> {
        let chains = self.chains.read();
        let chain = chains
            .get(&entity)
            .ok_or(StoreError::NoVisibleVersion(entity))?;
        let version = chain
            .latest_by(tx.id)
            .or_else(|| chain.latest_committed())
            .ok_or(StoreError::NoVisibleVersion(entity))?;
        let (value, writer) = (version.value.clone(), version.writer);
        drop(chains);
        self.with_active(tx.id, |r| {
            r.read_set.push((entity, writer));
            Ok(value)
        })
    }

    /// Reads the version of `entity` visible to the transaction's snapshot
    /// (snapshot isolation reads; own writes are visible).
    pub fn read_snapshot(&self, tx: TxHandle, entity: EntityId) -> Result<Bytes, StoreError> {
        let snapshot_ts = {
            let txs = self.txs.lock();
            let record = txs.get(&tx.id).ok_or(StoreError::NotActive(tx.id))?;
            if record.status != TxStatus::Active {
                return Err(StoreError::NotActive(tx.id));
            }
            record.snapshot_ts
        };
        let chains = self.chains.read();
        let chain = chains
            .get(&entity)
            .ok_or(StoreError::NoVisibleVersion(entity))?;
        let version = chain
            .visible_at(snapshot_ts, Some(tx.id))
            .ok_or(StoreError::NoVisibleVersion(entity))?;
        let (value, writer) = (version.value.clone(), version.writer);
        drop(chains);
        self.with_active(tx.id, |r| {
            r.read_set.push((entity, writer));
            Ok(value)
        })
    }

    /// Reads the version of `entity` written by an explicitly chosen writer
    /// (the operational form of a version function's assignment).
    pub fn read_version(
        &self,
        tx: TxHandle,
        entity: EntityId,
        source: VersionSource,
    ) -> Result<Bytes, StoreError> {
        let writer = source.as_tx();
        let chains = self.chains.read();
        let chain = chains
            .get(&entity)
            .ok_or(StoreError::NoVisibleVersion(entity))?;
        let version = chain
            .latest_by(writer)
            .ok_or(StoreError::NoSuchVersion(entity, writer))?;
        let value = version.value.clone();
        drop(chains);
        self.with_active(tx.id, |r| {
            r.read_set.push((entity, writer));
            Ok(value)
        })
    }

    /// Writes a new version of `entity`.
    pub fn write(&self, tx: TxHandle, entity: EntityId, value: Bytes) -> Result<(), StoreError> {
        self.with_active(tx.id, |r| {
            r.write_set.insert(entity);
            Ok(())
        })?;
        let mut chains = self.chains.write();
        chains.entry(entity).or_default().append(tx.id, value);
        Ok(())
    }

    /// Read-only first-committer-wins validation: succeeds iff no other
    /// transaction has committed a version of an entity in this
    /// transaction's write set after this transaction's snapshot.
    ///
    /// Unlike [`MvStore::commit`] with `first_committer_wins` set, a failed
    /// validation does **not** abort the transaction — the caller decides.
    /// This is the prepare half used by `mvcc-engine`'s cross-shard commit
    /// path: validate every touched shard first, then commit them all (the
    /// engine serializes commits, so the check cannot go stale in between).
    pub fn validate_first_committer(&self, tx: TxHandle) -> Result<(), StoreError> {
        let txs = self.txs.lock();
        let record = txs.get(&tx.id).ok_or(StoreError::NotActive(tx.id))?;
        if record.status != TxStatus::Active {
            return Err(StoreError::NotActive(tx.id));
        }
        let chains = self.chains.read();
        for &entity in &record.write_set {
            if let Some(chain) = chains.get(&entity) {
                let conflict = chain.versions().iter().any(|v| {
                    v.writer != tx.id && v.commit_ts.is_some_and(|ts| ts > record.snapshot_ts)
                });
                if conflict {
                    let winner = chain
                        .versions()
                        .iter()
                        .rev()
                        .find(|v| {
                            v.writer != tx.id
                                && v.commit_ts.is_some_and(|ts| ts > record.snapshot_ts)
                        })
                        .map_or(TxId::INITIAL, |v| v.writer);
                    return Err(StoreError::WriteConflict(entity, winner));
                }
            }
        }
        Ok(())
    }

    /// Commits the transaction, assigning it the next commit timestamp.
    ///
    /// When `first_committer_wins` is set (snapshot-isolation mode), the
    /// commit fails with [`StoreError::WriteConflict`] if another
    /// transaction committed a version of an entity in this transaction's
    /// write set after this transaction's snapshot.
    pub fn commit(&self, tx: TxHandle, first_committer_wins: bool) -> Result<u64, StoreError> {
        // Validate under the tx lock, then bump the counter.
        let mut txs = self.txs.lock();
        let record = txs.get_mut(&tx.id).ok_or(StoreError::NotActive(tx.id))?;
        if record.status != TxStatus::Active {
            return Err(StoreError::NotActive(tx.id));
        }
        if first_committer_wins {
            let chains = self.chains.read();
            for &entity in &record.write_set {
                if let Some(chain) = chains.get(&entity) {
                    let conflict = chain.versions().iter().any(|v| {
                        v.writer != tx.id && v.commit_ts.is_some_and(|ts| ts > record.snapshot_ts)
                    });
                    if conflict {
                        let winner = chain
                            .versions()
                            .iter()
                            .rev()
                            .find(|v| {
                                v.writer != tx.id
                                    && v.commit_ts.is_some_and(|ts| ts > record.snapshot_ts)
                            })
                            .map_or(TxId::INITIAL, |v| v.writer);
                        record.status = TxStatus::Aborted;
                        drop(chains);
                        self.purge_writes(tx.id, &record.write_set.clone());
                        return Err(StoreError::WriteConflict(entity, winner));
                    }
                }
            }
        }
        let mut counter = self.commit_counter.lock();
        *counter += 1;
        let ts = *counter;
        record.status = TxStatus::Committed(ts);
        let write_set = record.write_set.clone();
        drop(counter);
        drop(txs);
        let mut chains = self.chains.write();
        for entity in write_set {
            if let Some(chain) = chains.get_mut(&entity) {
                chain.commit_writer(tx.id, ts);
            }
        }
        Ok(ts)
    }

    /// Commits a batch of transactions in one pass: the transaction table
    /// and commit counter are locked once for the whole batch (consecutive
    /// commit timestamps in batch order), then every new version is
    /// committed under a single chain-map write lock.
    ///
    /// This is the storage half of a group commit: under N concurrent
    /// committers the per-commit lock traffic drops from `2·N`
    /// acquisitions to 2.  Returns one result per handle, in order;
    /// failed members (not active) do not affect the rest of the batch.
    /// First-committer-wins validation is *not* applied — snapshot
    /// isolation commits go through [`MvStore::commit`] (or the engine's
    /// validate-then-commit path) instead.
    pub fn commit_many(&self, handles: &[TxHandle]) -> Vec<Result<u64, StoreError>> {
        let mut staged: Vec<(TxId, u64, BTreeSet<EntityId>)> = Vec::with_capacity(handles.len());
        let results: Vec<Result<u64, StoreError>> = {
            let mut txs = self.txs.lock();
            let mut counter = self.commit_counter.lock();
            handles
                .iter()
                .map(|handle| {
                    let record = txs
                        .get_mut(&handle.id)
                        .ok_or(StoreError::NotActive(handle.id))?;
                    if record.status != TxStatus::Active {
                        return Err(StoreError::NotActive(handle.id));
                    }
                    *counter += 1;
                    let ts = *counter;
                    record.status = TxStatus::Committed(ts);
                    staged.push((handle.id, ts, record.write_set.clone()));
                    Ok(ts)
                })
                .collect()
        };
        let mut chains = self.chains.write();
        for (tx, ts, write_set) in staged {
            for entity in write_set {
                if let Some(chain) = chains.get_mut(&entity) {
                    chain.commit_writer(tx, ts);
                }
            }
        }
        results
    }

    /// Applies one *replicated* committed transaction: every write is
    /// installed as an already-committed version at the explicit
    /// `commit_ts` the primary assigned (replication must reproduce the
    /// primary's timestamps, not invent its own), and the commit counter
    /// is floored up to `commit_ts`.  Returns the number of versions
    /// newly installed — application is idempotent per `(writer, ts)`, so
    /// a replica resuming over a checkpoint's overlap window re-applies
    /// harmlessly (same discipline as crash recovery's replay).
    ///
    /// Versions are installed *before* the counter advances: a snapshot
    /// begun at any point either sits below `commit_ts` (and correctly
    /// does not see the new versions) or at/above it (and the versions
    /// are already in the chains) — the apply-side half of the engine's
    /// "shard commits land before anyone can learn of them" rule.
    pub fn apply_committed(
        &self,
        writer: TxId,
        commit_ts: u64,
        writes: &[(EntityId, Bytes)],
    ) -> usize {
        let mut applied = 0;
        {
            let mut chains = self.chains.write();
            for (entity, value) in writes {
                if chains.entry(*entity).or_default().insert_committed(
                    writer,
                    commit_ts,
                    value.clone(),
                ) {
                    applied += 1;
                }
            }
        }
        // Same lock order as `begin`/`commit` (txs, then counter), so the
        // floor is atomic with respect to snapshot choice.
        let _txs = self.txs.lock();
        let mut counter = self.commit_counter.lock();
        *counter = (*counter).max(commit_ts);
        applied
    }

    /// Aborts the transaction, removing its uncommitted versions.
    pub fn abort(&self, tx: TxHandle) -> Result<(), StoreError> {
        let write_set = self.with_active(tx.id, |r| {
            r.status = TxStatus::Aborted;
            Ok(r.write_set.clone())
        })?;
        self.purge_writes(tx.id, &write_set);
        Ok(())
    }

    fn purge_writes(&self, tx: TxId, write_set: &BTreeSet<EntityId>) {
        let mut chains = self.chains.write();
        for entity in write_set {
            if let Some(chain) = chains.get_mut(entity) {
                chain.remove_writer(tx);
            }
        }
    }

    /// The status of a transaction, if known.
    pub fn status(&self, tx: TxId) -> Option<TxStatus> {
        self.txs.lock().get(&tx).map(|r| r.status)
    }

    /// The realized READ-FROM pairs of a transaction (entity, writer), in
    /// read order.
    pub fn reads_of(&self, tx: TxId) -> Vec<(EntityId, TxId)> {
        self.txs
            .lock()
            .get(&tx)
            .map(|r| r.read_set.clone())
            .unwrap_or_default()
    }

    /// The current commit timestamp high-water mark.
    pub fn current_ts(&self) -> u64 {
        *self.commit_counter.lock()
    }

    /// Number of versions stored for `entity`.
    pub fn version_count(&self, entity: EntityId) -> usize {
        self.chains.read().get(&entity).map_or(0, |c| c.len())
    }

    /// Total number of versions across all entities.
    pub fn total_versions(&self) -> usize {
        self.chains.read().values().map(|c| c.len()).sum()
    }

    /// Applies [`VersionChain::prune`] to every chain with the given
    /// watermark, returning the number of reclaimed versions (see
    /// [`crate::gc`]).
    pub fn prune_all(&self, watermark: u64) -> usize {
        let mut chains = self.chains.write();
        chains.values_mut().map(|c| c.prune(watermark)).sum()
    }

    /// A consistent copy of the committed state: the commit-counter
    /// high-water mark plus, per entity, every *committed* version in
    /// chain order `(writer, commit_ts, value)`.  Uncommitted versions are
    /// excluded — this is what a checkpoint persists, and a checkpoint
    /// must never make an in-flight transaction's data durable.
    ///
    /// The chain map is read under its lock, so the copy is internally
    /// consistent; the counter is sampled first, which can only
    /// under-report relative to the chains (a commit landing in between
    /// is replayed idempotently from the log).
    pub fn committed_state(&self) -> (u64, Vec<(EntityId, CommittedChain)>) {
        let counter = *self.commit_counter.lock();
        let chains = self.chains.read();
        let committed = chains
            .iter()
            .map(|(&entity, chain)| {
                let versions = chain
                    .versions()
                    .iter()
                    .filter_map(|v| v.commit_ts.map(|ts| (v.writer, ts, v.value.clone())))
                    .collect();
                (entity, versions)
            })
            .collect();
        (counter, committed)
    }

    /// Builds a store from recovered committed state (crash recovery).
    ///
    /// `commit_counter` is the recovered high-water mark and `floor` the
    /// GC watermark the newest checkpoint was cut at: the effective
    /// counter is the max of the two (and of every recovered version's
    /// timestamp), so no transaction begun on the recovered store is ever
    /// issued a snapshot below the reclaimed horizon — versions under the
    /// watermark may be gone from the chains, and a snapshot that old
    /// would read the void (the regression
    /// `recovered_snapshots_never_sink_below_the_watermark` pins this).
    pub fn from_recovered(
        commit_counter: u64,
        floor: u64,
        chains: impl IntoIterator<Item = (EntityId, CommittedChain)>,
    ) -> Self {
        let store = Self::new();
        let mut max_ts = commit_counter.max(floor);
        {
            let mut map = store.chains.write();
            for (entity, versions) in chains {
                if let Some(newest) = versions.iter().map(|&(_, ts, _)| ts).max() {
                    max_ts = max_ts.max(newest);
                }
                map.insert(entity, VersionChain::from_committed(versions));
            }
        }
        *store.commit_counter.lock() = max_ts;
        store
    }

    /// Snapshot timestamps of all active transactions (used to compute the
    /// GC watermark).
    pub fn active_snapshots(&self) -> Vec<u64> {
        self.txs
            .lock()
            .values()
            .filter(|r| r.status == TxStatus::Active)
            .map(|r| r.snapshot_ts)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1);

    fn store() -> MvStore {
        MvStore::with_entities([X, Y], b("init"))
    }

    #[test]
    fn begin_read_write_commit_cycle() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        assert_eq!(s.read_latest(t1, X).unwrap(), b("init"));
        s.write(t1, X, b("one")).unwrap();
        // Own write visible to itself, not to others.
        assert_eq!(s.read_latest(t1, X).unwrap(), b("one"));
        let t2 = s.begin(TxId(2)).unwrap();
        assert_eq!(s.read_latest(t2, X).unwrap(), b("init"));
        let ts = s.commit(t1, false).unwrap();
        assert_eq!(s.status(TxId(1)), Some(TxStatus::Committed(ts)));
        // After commit, new readers see it.
        let t3 = s.begin(TxId(3)).unwrap();
        assert_eq!(s.read_latest(t3, X).unwrap(), b("one"));
    }

    #[test]
    fn abort_discards_writes() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        s.write(t1, X, b("doomed")).unwrap();
        s.abort(t1).unwrap();
        assert_eq!(s.status(TxId(1)), Some(TxStatus::Aborted));
        let t2 = s.begin(TxId(2)).unwrap();
        assert_eq!(s.read_latest(t2, X).unwrap(), b("init"));
        assert_eq!(s.version_count(X), 1);
    }

    #[test]
    fn snapshot_reads_ignore_later_commits() {
        let s = store();
        let reader = s.begin(TxId(1)).unwrap();
        let writer = s.begin(TxId(2)).unwrap();
        s.write(writer, X, b("new")).unwrap();
        s.commit(writer, false).unwrap();
        // Snapshot read: the reader began before the writer committed.
        assert_eq!(s.read_snapshot(reader, X).unwrap(), b("init"));
        // Latest read: sees the committed version.
        assert_eq!(s.read_latest(reader, X).unwrap(), b("new"));
    }

    #[test]
    fn explicit_version_reads_follow_the_version_function() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        s.write(t1, X, b("t1")).unwrap();
        s.commit(t1, false).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        s.write(t2, X, b("t2")).unwrap();
        s.commit(t2, false).unwrap();
        let t3 = s.begin(TxId(3)).unwrap();
        assert_eq!(
            s.read_version(t3, X, VersionSource::Tx(TxId(1))).unwrap(),
            b("t1"),
            "an old version can still be served"
        );
        assert_eq!(
            s.read_version(t3, X, VersionSource::Initial).unwrap(),
            b("init")
        );
        assert!(matches!(
            s.read_version(t3, Y, VersionSource::Tx(TxId(2))),
            Err(StoreError::NoSuchVersion(_, _))
        ));
        assert_eq!(s.reads_of(TxId(3)).len(), 2);
    }

    #[test]
    fn first_committer_wins_detects_write_write_conflicts() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        s.write(t1, X, b("t1")).unwrap();
        s.write(t2, X, b("t2")).unwrap();
        assert!(s.commit(t1, true).is_ok());
        let err = s.commit(t2, true).unwrap_err();
        assert!(matches!(err, StoreError::WriteConflict(e, w) if e == X && w == TxId(1)));
        assert_eq!(s.status(TxId(2)), Some(TxStatus::Aborted));
        // The loser's version is gone.
        let t3 = s.begin(TxId(3)).unwrap();
        assert_eq!(s.read_latest(t3, X).unwrap(), b("t1"));
    }

    #[test]
    fn validate_first_committer_is_read_only() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        s.write(t1, X, b("t1")).unwrap();
        s.write(t2, X, b("t2")).unwrap();
        assert!(s.validate_first_committer(t1).is_ok());
        assert!(s.validate_first_committer(t2).is_ok());
        s.commit(t1, false).unwrap();
        // Validation now fails for the loser but does NOT abort it...
        let err = s.validate_first_committer(t2).unwrap_err();
        assert!(matches!(err, StoreError::WriteConflict(e, w) if e == X && w == TxId(1)));
        assert_eq!(s.status(TxId(2)), Some(TxStatus::Active));
        // ...so the caller can still decide to commit without the check.
        assert!(s.commit(t2, false).is_ok());
    }

    #[test]
    fn disjoint_writes_commit_under_snapshot_isolation() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        s.write(t1, X, b("t1")).unwrap();
        s.write(t2, Y, b("t2")).unwrap();
        assert!(s.commit(t1, true).is_ok());
        assert!(s.commit(t2, true).is_ok());
    }

    #[test]
    fn lifecycle_errors() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        assert!(s.begin(TxId(1)).is_err(), "double begin");
        s.commit(t1, false).unwrap();
        assert!(s.read_latest(t1, X).is_err(), "read after commit");
        assert!(s.commit(t1, false).is_err(), "double commit");
        assert!(s.abort(t1).is_err(), "abort after commit");
        assert!(
            s.read_latest(TxHandle { id: TxId(9) }, X).is_err(),
            "unknown transaction"
        );
        // An aborted transaction may be re-begun.
        let t2 = s.begin(TxId(2)).unwrap();
        s.abort(t2).unwrap();
        assert!(s.begin(TxId(2)).is_ok());
    }

    #[test]
    fn version_counts_and_gc_hooks() {
        let s = store();
        for i in 1..=4u32 {
            let t = s.begin(TxId(i)).unwrap();
            s.write(t, X, b("v")).unwrap();
            s.commit(t, false).unwrap();
        }
        assert_eq!(s.version_count(X), 5);
        assert_eq!(s.total_versions(), 6);
        let reclaimed = s.prune_all(s.current_ts());
        assert_eq!(reclaimed, 4, "only the newest committed version survives");
        assert_eq!(s.version_count(X), 1);
    }

    #[test]
    fn commit_many_matches_individual_commits() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        let t3 = s.begin(TxId(3)).unwrap();
        s.write(t1, X, b("t1")).unwrap();
        s.write(t2, Y, b("t2")).unwrap();
        s.abort(t3).unwrap();
        let results = s.commit_many(&[t1, t2, t3, TxHandle { id: TxId(9) }]);
        // Consecutive timestamps in batch order; dead members are refused
        // without disturbing the rest.
        assert_eq!(results[0], Ok(1));
        assert_eq!(results[1], Ok(2));
        assert!(matches!(results[2], Err(StoreError::NotActive(tx)) if tx == TxId(3)));
        assert!(matches!(results[3], Err(StoreError::NotActive(tx)) if tx == TxId(9)));
        assert_eq!(s.status(TxId(1)), Some(TxStatus::Committed(1)));
        assert_eq!(s.status(TxId(2)), Some(TxStatus::Committed(2)));
        assert_eq!(s.current_ts(), 2);
        // The batch's versions are committed and visible.
        let r = s.begin(TxId(10)).unwrap();
        assert_eq!(s.read_latest(r, X).unwrap(), b("t1"));
        assert_eq!(s.read_latest(r, Y).unwrap(), b("t2"));
        assert_eq!(s.read_snapshot(r, X).unwrap(), b("t1"));
    }

    #[test]
    fn begin_pins_its_snapshot_against_the_gc_watermark() {
        // Regression for the watermark/snapshot-pinning race: the snapshot
        // timestamp is chosen while the transaction is registered, so a
        // watermark computed at any point around `begin` can never exceed
        // the new transaction's snapshot — its visible versions survive
        // any concurrent prune (the multi-threaded stress test hammers the
        // interleaving; this pins the single-threaded contract).
        let s = store();
        for i in 1..=3u32 {
            let t = s.begin(TxId(i)).unwrap();
            s.write(t, X, b("v")).unwrap();
            s.commit(t, false).unwrap();
        }
        let reader = s.begin(TxId(10)).unwrap();
        let watermark = crate::gc::watermark(&s);
        assert!(watermark <= 3, "active snapshot must bound the watermark");
        s.prune_all(watermark);
        assert_eq!(s.read_snapshot(reader, X).unwrap(), b("v"));
    }

    #[test]
    fn committed_state_excludes_uncommitted_versions() {
        let s = store();
        let t1 = s.begin(TxId(1)).unwrap();
        s.write(t1, X, b("committed")).unwrap();
        s.commit(t1, false).unwrap();
        let t2 = s.begin(TxId(2)).unwrap();
        s.write(t2, X, b("in-flight")).unwrap();
        let (counter, chains) = s.committed_state();
        assert_eq!(counter, 1);
        let x_chain = chains
            .iter()
            .find(|(e, _)| *e == X)
            .map(|(_, v)| v)
            .unwrap();
        // Initial version + T1's committed one; T2's in-flight write must
        // never reach a checkpoint.
        assert_eq!(x_chain.len(), 2);
        assert!(x_chain.iter().all(|&(writer, _, _)| writer != TxId(2)));
        assert_eq!(x_chain[1], (TxId(1), 1, b("committed")));
    }

    #[test]
    fn from_recovered_round_trips_committed_state() {
        let s = store();
        for i in 1..=3u32 {
            let t = s.begin(TxId(i)).unwrap();
            s.write(t, X, b(&format!("v{i}"))).unwrap();
            s.commit(t, false).unwrap();
        }
        let (counter, chains) = s.committed_state();
        let recovered = MvStore::from_recovered(counter, 0, chains);
        assert_eq!(recovered.current_ts(), 3);
        assert_eq!(recovered.committed_state(), s.committed_state());
        // The recovered store is live: reads and new commits work.
        let t = recovered.begin(TxId(10)).unwrap();
        assert_eq!(recovered.read_latest(t, X).unwrap(), b("v3"));
        assert_eq!(recovered.read_snapshot(t, X).unwrap(), b("v3"));
        recovered.write(t, Y, b("resumed")).unwrap();
        assert_eq!(recovered.commit(t, false).unwrap(), 4);
    }

    #[test]
    fn recovered_snapshots_never_sink_below_the_watermark() {
        // Regression for the checkpoint/GC coordination rule: a checkpoint
        // records the watermark it was cut at, and recovery floors the
        // commit counter there.  Without the floor, a checkpoint whose
        // counter lagged the watermark (however it came about) would issue
        // snapshots below the reclaimed horizon — readable timestamps for
        // versions that no longer exist.
        let chains = vec![(X, vec![(TxId(7), 5u64, b("survivor"))])];
        // Deliberately inconsistent inputs: counter 2 < watermark 5.
        let recovered = MvStore::from_recovered(2, 5, chains);
        assert_eq!(recovered.current_ts(), 5, "counter floored at watermark");
        let t = recovered.begin(TxId(10)).unwrap();
        // The first snapshot sits at or above the horizon and can read the
        // surviving version (a snapshot at ts 2 would have found nothing).
        assert_eq!(recovered.read_snapshot(t, X).unwrap(), b("survivor"));
        // GC at the recovered watermark reclaims nothing further.
        assert_eq!(recovered.prune_all(5), 0);
    }

    #[test]
    fn begin_at_pins_a_snapshot_in_the_past() {
        let s = store();
        for i in 1..=3u32 {
            let t = s.begin(TxId(i)).unwrap();
            s.write(t, X, b(&format!("v{i}"))).unwrap();
            s.commit(t, false).unwrap();
        }
        // A reader pinned at ts 1 sees v1, not the newest.
        let old = s.begin_at(TxId(10), 1).unwrap();
        assert_eq!(s.read_snapshot(old, X).unwrap(), b("v1"));
        // The pinned snapshot holds the GC watermark down.
        assert_eq!(crate::gc::watermark(&s), 1);
        // A future timestamp is clamped to the present.
        let clamped = s.begin_at(TxId(11), 99).unwrap();
        assert_eq!(s.read_snapshot(clamped, X).unwrap(), b("v3"));
        assert!(s.active_snapshots().iter().all(|&ts| ts <= 3));
    }

    #[test]
    fn apply_committed_installs_versions_at_the_primary_timestamps() {
        let s = store();
        assert_eq!(s.apply_committed(TxId(1), 1, &[(X, b("r1"))]), 1);
        assert_eq!(
            s.apply_committed(TxId(2), 2, &[(X, b("r2x")), (Y, b("r2y"))]),
            2
        );
        assert_eq!(s.current_ts(), 2, "counter floored at the applied ts");
        // Snapshots behave exactly as on the primary: a reader begun now
        // sees ts-2 versions, an explicit version read can still reach
        // the older one.
        let r = s.begin(TxId(10)).unwrap();
        assert_eq!(s.read_snapshot(r, X).unwrap(), b("r2x"));
        assert_eq!(s.read_latest(r, Y).unwrap(), b("r2y"));
        assert_eq!(
            s.read_version(r, X, VersionSource::Tx(TxId(1))).unwrap(),
            b("r1")
        );
        // Status of replicated writers is not tracked — they finished on
        // the primary; only the versions travel.
        assert_eq!(s.status(TxId(1)), None);
    }

    #[test]
    fn apply_committed_is_idempotent_per_writer_and_timestamp() {
        let s = store();
        assert_eq!(s.apply_committed(TxId(1), 3, &[(X, b("v"))]), 1);
        // The checkpoint-overlap shape: the same commit record re-applied.
        assert_eq!(s.apply_committed(TxId(1), 3, &[(X, b("v"))]), 0);
        assert_eq!(s.version_count(X), 2, "initial + one applied version");
        assert_eq!(s.current_ts(), 3);
    }

    #[test]
    fn apply_committed_keeps_chains_sorted_when_arriving_out_of_order() {
        // Defensive: per shard the log applies in timestamp order, but the
        // chain invariant (committed versions sorted by ts) must hold even
        // if an apply arrives late.
        let s = store();
        s.apply_committed(TxId(2), 5, &[(X, b("newer"))]);
        s.apply_committed(TxId(1), 2, &[(X, b("older"))]);
        let r = s.begin(TxId(10)).unwrap();
        assert_eq!(s.read_latest(r, X).unwrap(), b("newer"));
        assert_eq!(s.read_snapshot(r, X).unwrap(), b("newer"));
        let (_, chains) = s.committed_state();
        let x_chain = chains
            .iter()
            .find(|(e, _)| *e == X)
            .map(|(_, v)| v)
            .unwrap();
        let ts: Vec<u64> = x_chain.iter().map(|&(_, t, _)| t).collect();
        assert_eq!(ts, vec![0, 2, 5], "sorted by commit timestamp");
    }

    #[test]
    fn concurrent_access_from_threads() {
        use std::sync::Arc;
        let s = Arc::new(MvStore::with_entities([X], b("0")));
        let mut handles = Vec::new();
        for i in 1..=8u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let t = s.begin(TxId(i)).unwrap();
                let _ = s.read_latest(t, X).unwrap();
                s.write(t, X, Bytes::from(i.to_string())).unwrap();
                s.commit(t, false).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.version_count(X), 9);
        assert_eq!(s.current_ts(), 8);
    }
}
