//! Version garbage collection.
//!
//! Old versions are what a multiversion scheduler trades space for; a real
//! engine must eventually reclaim them.  A committed version can be dropped
//! once no active (or future) snapshot can read it: the *watermark* is the
//! minimum snapshot timestamp of the active transactions (or the current
//! commit timestamp when none is active), and every committed version
//! superseded by a newer version committed at or before the watermark is
//! unreachable.

use crate::store::MvStore;

/// A report of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// The watermark used.
    pub watermark: u64,
    /// Versions reclaimed in this pass.
    pub reclaimed: usize,
    /// Versions remaining after the pass.
    pub remaining: usize,
}

/// Computes the GC watermark of `store`: the minimum active snapshot
/// timestamp, or the current commit timestamp when no transaction is active.
///
/// The fallback counter is sampled *before* the active-transaction scan.
/// The order matters: every transaction registers atomically with its
/// snapshot choice ([`MvStore::begin`]), so a transaction registered
/// before the scan is seen by it (watermark ≤ its snapshot), and one
/// registering after the scan has a snapshot at least the counter value
/// at its begin — which, the counter being monotone, is at least the
/// fallback sampled earlier and at least every already-active snapshot.
/// Sampling the counter *after* the scan (the original order) left a
/// window where an empty scan plus a subsequent commit produced a
/// watermark above a just-registered snapshot, reclaiming versions that
/// snapshot was entitled to observe.
pub fn watermark(store: &MvStore) -> u64 {
    let fallback = store.current_ts();
    store
        .active_snapshots()
        .into_iter()
        .min()
        .unwrap_or(fallback)
}

/// Runs one garbage-collection pass over every version chain.
pub fn collect(store: &MvStore) -> GcReport {
    collect_with_watermark(store, watermark(store))
}

/// Runs one garbage-collection pass with an explicitly supplied watermark.
///
/// This is the entry point a background GC driver (`mvcc-engine`'s
/// `GcDriver`) uses: the driver computes the watermark once — possibly
/// tightening it with engine-level knowledge such as the oldest session
/// across shards — and hands it down.  Passing a watermark *lower* than
/// [`watermark`] is always safe (GC is monotone in the watermark); passing
/// a higher one may reclaim versions still visible to active snapshots.
pub fn collect_with_watermark(store: &MvStore, watermark: u64) -> GcReport {
    let reclaimed = store.prune_all(watermark);
    GcReport {
        watermark,
        reclaimed,
        remaining: store.total_versions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mvcc_core::{EntityId, TxId};

    const X: EntityId = EntityId(0);

    fn updated_store(updates: u32) -> MvStore {
        let store = MvStore::with_entities([X], Bytes::from_static(b"0"));
        for i in 1..=updates {
            let t = store.begin(TxId(i)).unwrap();
            store.write(t, X, Bytes::from(i.to_string())).unwrap();
            store.commit(t, false).unwrap();
        }
        store
    }

    #[test]
    fn gc_with_no_active_transactions_keeps_only_the_newest_version() {
        let store = updated_store(10);
        assert_eq!(store.version_count(X), 11);
        let report = collect(&store);
        assert_eq!(report.watermark, 10);
        assert_eq!(report.reclaimed, 10);
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn active_snapshot_pins_old_versions() {
        let store = updated_store(3);
        // A long-running reader pins the snapshot at ts=3.
        let reader = store.begin(TxId(100)).unwrap();
        for i in 4..=6u32 {
            let t = store.begin(TxId(i)).unwrap();
            store.write(t, X, Bytes::from(i.to_string())).unwrap();
            store.commit(t, false).unwrap();
        }
        assert_eq!(store.version_count(X), 7);
        let report = collect(&store);
        assert_eq!(report.watermark, 3);
        // Versions 0, 1, 2 are superseded by the one committed at 3 and can
        // go; versions 3..=6 must stay.
        assert_eq!(report.reclaimed, 3);
        assert_eq!(store.version_count(X), 4);
        // The pinned reader still sees its snapshot value.
        assert_eq!(
            store.read_snapshot(reader, X).unwrap(),
            Bytes::from_static(b"3")
        );
    }

    #[test]
    fn gc_is_idempotent() {
        let store = updated_store(5);
        let first = collect(&store);
        let second = collect(&store);
        assert!(first.reclaimed > 0);
        assert_eq!(second.reclaimed, 0);
        assert_eq!(second.remaining, first.remaining);
    }

    #[test]
    fn empty_store_gc() {
        let store = MvStore::new();
        let report = collect(&store);
        assert_eq!(report.reclaimed, 0);
        assert_eq!(report.remaining, 0);
        assert_eq!(report.watermark, 0);
    }

    #[test]
    fn collect_with_explicit_watermark_matches_prune_semantics() {
        let store = updated_store(6);
        let report = collect_with_watermark(&store, 3);
        assert_eq!(report.watermark, 3);
        // Versions committed at 1 and 2 are superseded by the one at 3.
        assert_eq!(report.reclaimed, 3);
        assert_eq!(store.version_count(X), 4);
        // A lower watermark than the store's own is safe and idempotent.
        assert_eq!(collect_with_watermark(&store, 0).reclaimed, 0);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use bytes::Bytes;
    use mvcc_core::{EntityId, TxId};
    use proptest::prelude::*;

    proptest! {
        /// A GC pass never reclaims a version still visible to any active
        /// snapshot: every pinned reader observes the same value for every
        /// entity before and after the pass, whatever the interleaving of
        /// updates and reader arrivals.
        #[test]
        fn gc_never_reclaims_a_visible_version(
            // Interleaved program: for each element, `true` starts a pinned
            // reader, `false` commits an update of entity (`e % entities`).
            program in proptest::collection::vec((proptest::bool::ANY, 0u32..4), 1..24),
        ) {
            let entities: Vec<EntityId> = (0..4).map(EntityId).collect();
            let store = MvStore::with_entities(entities.clone(), Bytes::from_static(b"init"));
            let mut readers = Vec::new();
            for (tx_num, &(start_reader, e)) in (1u32..).zip(program.iter()) {
                let tx = TxId(tx_num);
                let h = store.begin(tx).unwrap();
                if start_reader {
                    readers.push(h);
                } else {
                    store
                        .write(h, EntityId(e % 4), Bytes::from(format!("{tx}")))
                        .unwrap();
                    store.commit(h, false).unwrap();
                }
            }
            // What every pinned reader sees before GC...
            let mut before = Vec::new();
            for &r in &readers {
                for &e in &entities {
                    before.push(store.read_snapshot(r, e).unwrap());
                }
            }
            let report = collect(&store);
            prop_assert_eq!(report.watermark, watermark(&store));
            // ...is exactly what it sees after GC.
            let mut after = Vec::new();
            for &r in &readers {
                for &e in &entities {
                    after.push(store.read_snapshot(r, e).unwrap());
                }
            }
            prop_assert_eq!(before, after);
            // And a second pass reclaims nothing more (the watermark is
            // unchanged: the readers are still active).
            prop_assert_eq!(collect(&store).reclaimed, 0);
        }
    }
}
