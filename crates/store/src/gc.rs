//! Version garbage collection.
//!
//! Old versions are what a multiversion scheduler trades space for; a real
//! engine must eventually reclaim them.  A committed version can be dropped
//! once no active (or future) snapshot can read it: the *watermark* is the
//! minimum snapshot timestamp of the active transactions (or the current
//! commit timestamp when none is active), and every committed version
//! superseded by a newer version committed at or before the watermark is
//! unreachable.

use crate::store::MvStore;

/// A report of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// The watermark used.
    pub watermark: u64,
    /// Versions reclaimed in this pass.
    pub reclaimed: usize,
    /// Versions remaining after the pass.
    pub remaining: usize,
}

/// Computes the GC watermark of `store`: the minimum active snapshot
/// timestamp, or the current commit timestamp when no transaction is active.
pub fn watermark(store: &MvStore) -> u64 {
    store
        .active_snapshots()
        .into_iter()
        .min()
        .unwrap_or_else(|| store.current_ts())
}

/// Runs one garbage-collection pass over every version chain.
pub fn collect(store: &MvStore) -> GcReport {
    let wm = watermark(store);
    let reclaimed = store.prune_all(wm);
    GcReport {
        watermark: wm,
        reclaimed,
        remaining: store.total_versions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mvcc_core::{EntityId, TxId};

    const X: EntityId = EntityId(0);

    fn updated_store(updates: u32) -> MvStore {
        let store = MvStore::with_entities([X], Bytes::from_static(b"0"));
        for i in 1..=updates {
            let t = store.begin(TxId(i)).unwrap();
            store.write(t, X, Bytes::from(i.to_string())).unwrap();
            store.commit(t, false).unwrap();
        }
        store
    }

    #[test]
    fn gc_with_no_active_transactions_keeps_only_the_newest_version() {
        let store = updated_store(10);
        assert_eq!(store.version_count(X), 11);
        let report = collect(&store);
        assert_eq!(report.watermark, 10);
        assert_eq!(report.reclaimed, 10);
        assert_eq!(report.remaining, 1);
    }

    #[test]
    fn active_snapshot_pins_old_versions() {
        let store = updated_store(3);
        // A long-running reader pins the snapshot at ts=3.
        let reader = store.begin(TxId(100)).unwrap();
        for i in 4..=6u32 {
            let t = store.begin(TxId(i)).unwrap();
            store.write(t, X, Bytes::from(i.to_string())).unwrap();
            store.commit(t, false).unwrap();
        }
        assert_eq!(store.version_count(X), 7);
        let report = collect(&store);
        assert_eq!(report.watermark, 3);
        // Versions 0, 1, 2 are superseded by the one committed at 3 and can
        // go; versions 3..=6 must stay.
        assert_eq!(report.reclaimed, 3);
        assert_eq!(store.version_count(X), 4);
        // The pinned reader still sees its snapshot value.
        assert_eq!(
            store.read_snapshot(reader, X).unwrap(),
            Bytes::from_static(b"3")
        );
    }

    #[test]
    fn gc_is_idempotent() {
        let store = updated_store(5);
        let first = collect(&store);
        let second = collect(&store);
        assert!(first.reclaimed > 0);
        assert_eq!(second.reclaimed, 0);
        assert_eq!(second.remaining, first.remaining);
    }

    #[test]
    fn empty_store_gc() {
        let store = MvStore::new();
        let report = collect(&store);
        assert_eq!(report.reclaimed, 0);
        assert_eq!(report.remaining, 0);
        assert_eq!(report.watermark, 0);
    }
}
