//! Criterion benchmarks for the scheduler zoo (experiment E9): per-step
//! decision cost of every scheduler on the same random interleaving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_scheduler::{
    run_abort, MvSgtScheduler, MvtoScheduler, SerialScheduler, SgtScheduler, TimestampScheduler,
    TwoPhaseLockingScheduler,
};
use mvcc_workload::{random_interleaving, random_transaction_system, WorkloadConfig};
use std::time::Duration;

fn workload(
    transactions: usize,
    entities: usize,
) -> (mvcc_core::TransactionSystem, mvcc_core::Schedule) {
    let cfg = WorkloadConfig {
        transactions,
        steps_per_transaction: 6,
        entities,
        read_ratio: 0.8,
        zipf_theta: 0.6,
        seed: 0x5c4ed,
    };
    let sys = random_transaction_system(&cfg);
    let s = random_interleaving(&sys, 17);
    (sys, s)
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_abort_mode");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    for &(txns, entities) in &[(8usize, 8usize), (16, 16), (32, 16)] {
        let (sys, s) = workload(txns, entities);
        let label = format!("{txns}txns_{entities}ent");
        group.bench_with_input(BenchmarkId::new("serial", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = SerialScheduler::new(&sys);
                run_abort(&mut sched, s).committed.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("2pl", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = TwoPhaseLockingScheduler::new(&sys);
                run_abort(&mut sched, s).committed.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("to", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = TimestampScheduler::new();
                run_abort(&mut sched, s).committed.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("sgt", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = SgtScheduler::new();
                run_abort(&mut sched, s).committed.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mvto", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = MvtoScheduler::new();
                run_abort(&mut sched, s).committed.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("mv-sgt", &label), &s, |b, s| {
            b.iter(|| {
                let mut sched = MvSgtScheduler::new();
                run_abort(&mut sched, s).committed.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
