//! Criterion benchmarks for the Theorem 4/5 constructions and the exact OLS
//! checker (experiments E5 and E7): construction cost is polynomial, the
//! decision procedures are exponential, which is the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_bench::experiments::polygraph_corpus;
use mvcc_reductions::ols::is_ols;
use mvcc_reductions::{theorem4_schedules, theorem5_schedule};
use std::time::Duration;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_constructions");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    for (idx, p) in polygraph_corpus().into_iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("theorem4_build", idx), &p, |b, p| {
            b.iter(|| theorem4_schedules(p).s1.len())
        });
        group.bench_with_input(BenchmarkId::new("theorem5_build", idx), &p, |b, p| {
            b.iter(|| theorem5_schedule(p).len())
        });
    }
    group.finish();
}

fn bench_ols_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("ols_check");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for (idx, p) in polygraph_corpus().into_iter().enumerate().take(4) {
        let inst = theorem4_schedules(&p);
        let pair = [inst.s1, inst.s2];
        group.bench_with_input(BenchmarkId::new("is_ols_pair", idx), &pair, |b, pair| {
            b.iter(|| is_ols(pair))
        });
    }
    group.finish();
}

fn bench_section4_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("section4");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    let (s, s_prime) = mvcc_core::examples::section4_pair();
    let pair = [s, s_prime];
    group.bench_function("is_ols_counterexample", |b| b.iter(|| is_ols(&pair)));
    group.finish();
}

criterion_group!(
    benches,
    bench_constructions,
    bench_ols_check,
    bench_section4_pair
);
criterion_main!(benches);
