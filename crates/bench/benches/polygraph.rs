//! Criterion benchmarks for the polygraph substrate (experiments E5/E10):
//! acyclicity solving on random polygraphs and on the outputs of the
//! SAT→polygraph reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_graph::poly_acyclic::{brute_force_acyclic, solve_polygraph};
use mvcc_reductions::sat_to_polygraph;
use mvcc_workload::{random_polygraph, random_restricted_formula};
use std::time::Duration;

fn bench_random_polygraphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("polygraph_acyclicity");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    for &(nodes, choices) in &[(6usize, 3usize), (10, 5), (14, 8), (20, 12)] {
        let p = random_polygraph(nodes, 0.2, choices, 99);
        group.bench_with_input(
            BenchmarkId::new("backtracking", format!("{nodes}n_{choices}c")),
            &p,
            |b, p| b.iter(|| solve_polygraph(p).is_some()),
        );
        if p.choice_count() <= 10 {
            group.bench_with_input(
                BenchmarkId::new("brute_force", format!("{nodes}n_{choices}c")),
                &p,
                |b, p| b.iter(|| brute_force_acyclic(p).is_some()),
            );
        }
    }
    group.finish();
}

fn bench_sat_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_to_polygraph");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    for &(vars, clauses) in &[(3usize, 4usize), (5, 8), (8, 16)] {
        let f = random_restricted_formula(vars, clauses, 7);
        group.bench_with_input(
            BenchmarkId::new("reduce", format!("{vars}v_{clauses}c")),
            &f,
            |b, f| b.iter(|| sat_to_polygraph(f).polygraph.choice_count()),
        );
        let p = sat_to_polygraph(&f).polygraph;
        group.bench_with_input(
            BenchmarkId::new("solve_reduced", format!("{vars}v_{clauses}c")),
            &p,
            |b, p| b.iter(|| solve_polygraph(p).is_some()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_random_polygraphs, bench_sat_reduction);
criterion_main!(benches);
