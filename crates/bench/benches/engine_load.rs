//! Criterion benchmarks for the concurrent engine (experiment E12):
//! closed-loop throughput across certifiers, thread counts and contention
//! levels.  History recording is off — the measurement is the engine hot
//! path, not the log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_engine::load::run_closed_loop_with;
use mvcc_engine::CertifierKind;
use mvcc_workload::LoadProfile;
use std::time::Duration;

fn profile(threads: usize, theta: f64) -> LoadProfile {
    LoadProfile {
        threads,
        shards: threads.max(2),
        ops: 2_000,
        entities: 64,
        steps_per_transaction: 4,
        read_ratio: 0.8,
        zipf_theta: theta,
        seed: 0xbe9c,
    }
}

fn bench_certifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_load");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for kind in CertifierKind::all() {
        group.bench_with_input(BenchmarkId::new("certifier", kind), &kind, |b, &kind| {
            let p = profile(4, 0.5);
            b.iter(|| run_closed_loop_with(kind, &p, false))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_threads");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("mvto", threads),
            &threads,
            |b, &threads| {
                let p = profile(threads, 0.5);
                b.iter(|| run_closed_loop_with(CertifierKind::Mvto, &p, false))
            },
        );
    }
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_contention");
    group
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for &theta in &[0.0, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("si", format!("theta={theta}")),
            &theta,
            |b, &theta| {
                let p = profile(4, theta);
                b.iter(|| run_closed_loop_with(CertifierKind::SnapshotIsolation, &p, false))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_certifiers,
    bench_thread_scaling,
    bench_contention
);
criterion_main!(benches);
