//! Criterion benchmarks for the multiversion storage substrate
//! (experiment E11): read/write/commit throughput, version-chain length
//! sensitivity, and garbage collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_core::{EntityId, TxId};
use mvcc_store::bytes::Bytes;
use mvcc_store::{gc, MvStore};
use std::time::Duration;

fn store_with_history(entities: u32, versions_per_entity: u32) -> MvStore {
    let store = MvStore::with_entities((0..entities).map(EntityId), Bytes::from_static(b"init"));
    let mut tx = 1u32;
    for v in 0..versions_per_entity {
        for e in 0..entities {
            let h = store.begin(TxId(tx)).unwrap();
            store
                .write(h, EntityId(e), Bytes::from(format!("v{v}")))
                .unwrap();
            store.commit(h, false).unwrap();
            tx += 1;
        }
    }
    store
}

fn bench_read_write_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_ops");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(30);
    for &chain_len in &[1u32, 8, 64] {
        let store = store_with_history(16, chain_len);
        group.bench_with_input(
            BenchmarkId::new("read_latest", chain_len),
            &store,
            |b, store| {
                let mut tx = 10_000u32;
                b.iter(|| {
                    tx += 1;
                    let h = store.begin(TxId(tx)).unwrap();
                    for e in 0..16 {
                        let _ = store.read_latest(h, EntityId(e)).unwrap();
                    }
                    store.abort(h).unwrap();
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_read", chain_len),
            &store,
            |b, store| {
                let mut tx = 20_000u32;
                b.iter(|| {
                    tx += 1;
                    let h = store.begin(TxId(tx)).unwrap();
                    for e in 0..16 {
                        let _ = store.read_snapshot(h, EntityId(e)).unwrap();
                    }
                    store.abort(h).unwrap();
                })
            },
        );
    }
    let store = MvStore::with_entities((0..16).map(EntityId), Bytes::from_static(b"0"));
    let mut tx = 0u32;
    group.bench_function("write_commit", |b| {
        b.iter(|| {
            tx += 1;
            let h = store.begin(TxId(tx)).unwrap();
            store
                .write(h, EntityId(tx % 16), Bytes::from_static(b"payload"))
                .unwrap();
            store.commit(h, true).unwrap();
        })
    });
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_gc");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for &versions in &[16u32, 128] {
        group.bench_with_input(BenchmarkId::new("collect", versions), &versions, |b, &v| {
            b.iter_with_setup(
                || store_with_history(8, v),
                |store| gc::collect(&store).reclaimed,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_write_commit, bench_gc);
criterion_main!(benches);
