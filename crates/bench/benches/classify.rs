//! Criterion benchmarks for experiment E10: the polynomial classifiers
//! (CSR, MVCSR) scale with the schedule, while the exact NP-complete
//! classifiers (VSR, MVSR) are only run on small instances.
//!
//! Also covers experiment E1/E2/E3 costs: classifying the Figure 1 examples
//! and checking Theorem 1 / Theorem 2 on a fixed small schedule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvcc_classify::swaps::serial_reachable_by_swaps;
use mvcc_classify::{is_csr, is_mvcsr, is_mvsr, is_vsr, taxonomy};
use mvcc_workload::{random_interleaving, random_transaction_system, WorkloadConfig};
use std::time::Duration;

fn schedule_of(transactions: usize, steps: usize, entities: usize) -> mvcc_core::Schedule {
    let cfg = WorkloadConfig {
        transactions,
        steps_per_transaction: steps,
        entities,
        read_ratio: 0.7,
        zipf_theta: 0.3,
        seed: 0xbe9c4,
    };
    let sys = random_transaction_system(&cfg);
    random_interleaving(&sys, 42)
}

fn bench_polynomial_classifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_polynomial");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(20);
    for &(txns, steps) in &[(4usize, 4usize), (8, 4), (16, 8), (32, 8), (64, 8)] {
        let s = schedule_of(txns, steps, 16);
        group.bench_with_input(
            BenchmarkId::new("csr", format!("{txns}x{steps}")),
            &s,
            |b, s| b.iter(|| is_csr(s)),
        );
        group.bench_with_input(
            BenchmarkId::new("mvcsr", format!("{txns}x{steps}")),
            &s,
            |b, s| b.iter(|| is_mvcsr(s)),
        );
    }
    group.finish();
}

fn bench_np_classifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_np_complete");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    for &txns in &[3usize, 4, 5, 6] {
        let s = schedule_of(txns, 4, 6);
        group.bench_with_input(BenchmarkId::new("vsr", txns), &s, |b, s| {
            b.iter(|| is_vsr(s))
        });
        group.bench_with_input(BenchmarkId::new("mvsr", txns), &s, |b, s| {
            b.iter(|| is_mvsr(s))
        });
    }
    group.finish();
}

fn bench_figure1_and_theorems(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    group
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    let examples = mvcc_core::examples::figure1();
    group.bench_function("classify_all_examples", |b| {
        b.iter(|| {
            examples
                .iter()
                .map(|ex| taxonomy::classify(&ex.schedule))
                .collect::<Vec<_>>()
        })
    });
    let s4 = examples[3].schedule.clone();
    group.bench_function("theorem2_swap_reachability", |b| {
        b.iter(|| serial_reachable_by_swaps(&s4))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_polynomial_classifiers,
    bench_np_classifiers,
    bench_figure1_and_theorems
);
criterion_main!(benches);
