//! Experiment drivers: the row-computing functions behind the table
//! binaries (`figure1`, `theorem_tables`, `scheduler_comparison`).
//!
//! Keeping them in the library makes each experiment unit-testable and lets
//! the Criterion benches reuse the same code paths, so the numbers in
//! `EXPERIMENTS.md` and the benchmark results come from one implementation.

use mvcc_classify::taxonomy::{classify, Census};
use mvcc_classify::{is_csr, is_mvcsr, is_mvsr, is_vsr};
use mvcc_core::examples::{figure1, Figure1Region};
use mvcc_core::Schedule;
use mvcc_engine::CertifierKind;
use mvcc_graph::poly_acyclic::is_acyclic_polygraph;
use mvcc_graph::Polygraph;
use mvcc_reductions::ols::is_ols;
use mvcc_reductions::{theorem4_schedules, theorem5_schedule};
use mvcc_scheduler::{
    run_abort, run_prefix, MvSgtScheduler, MvtoScheduler, Scheduler, SerialScheduler, SgtScheduler,
    TimestampScheduler, TwoPhaseLockingScheduler,
};
use mvcc_workload::{random_interleaving, random_transaction_system, LoadProfile, WorkloadConfig};
use std::time::Instant;

/// One row of the Figure 1 example table (experiment E1).
#[derive(Debug, Clone)]
pub struct Figure1Row {
    /// Example number (1..=6).
    pub number: usize,
    /// The schedule in linear notation.
    pub schedule: String,
    /// Classification flags `[serial, csr, vsr, mvcsr, mvsr, dmvsr]`.
    pub flags: [bool; 6],
    /// The region computed by the classifiers.
    pub computed_region: Figure1Region,
    /// The region the paper claims.
    pub claimed_region: Figure1Region,
}

impl Figure1Row {
    /// `true` when the classifiers agree with the paper's placement.
    pub fn matches(&self) -> bool {
        self.computed_region == self.claimed_region
    }
}

/// Classifies the six example schedules of Figure 1 (experiment E1).
pub fn figure1_rows() -> Vec<Figure1Row> {
    figure1()
        .into_iter()
        .map(|ex| {
            let c = classify(&ex.schedule);
            Figure1Row {
                number: ex.number,
                schedule: ex.schedule.to_string(),
                flags: [c.serial, c.csr, c.vsr, c.mvcsr, c.mvsr, c.dmvsr],
                computed_region: c.region(),
                claimed_region: ex.region,
            }
        })
        .collect()
}

/// The census of all interleavings of a fixed small transaction system
/// (the "topography" of Figure 1 over an exhaustive population).
pub fn figure1_census() -> (usize, Census) {
    let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(y)")
        // lint: allow(unwrap) — bench harness: setup failure is fatal to the run
        .expect("census system parses")
        .tx_system();
    let all = Schedule::all_interleavings(&sys);
    let census = Census::build(all.iter());
    (all.len(), census)
}

/// One row of the scheduler-comparison table (experiment E9).
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Whether it is a multiversion scheduler.
    pub multiversion: bool,
    /// Fraction of input steps accepted in prefix-recognition mode,
    /// averaged over the repetitions.
    pub mean_prefix_ratio: f64,
    /// Fraction of runs in which the entire interleaving was accepted.
    pub full_acceptance_rate: f64,
    /// Fraction of transactions committed in abort-and-continue mode.
    pub mean_commit_ratio: f64,
}

fn scheduler_zoo(sys: &mvcc_core::TransactionSystem) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(SerialScheduler::new(sys)),
        Box::new(TwoPhaseLockingScheduler::new(sys)),
        Box::new(TimestampScheduler::new()),
        Box::new(SgtScheduler::new()),
        Box::new(MvtoScheduler::new()),
        Box::new(MvSgtScheduler::new()),
    ]
}

/// Runs the scheduler zoo over `repetitions` random interleavings of the
/// workload and aggregates acceptance statistics (experiment E9).
pub fn scheduler_comparison(config: &WorkloadConfig, repetitions: usize) -> Vec<SchedulerRow> {
    let names: Vec<(&'static str, bool)> = {
        let sys = random_transaction_system(config);
        scheduler_zoo(&sys)
            .iter()
            .map(|s| (s.name(), s.is_multiversion()))
            .collect()
    };
    let mut prefix_sum = vec![0.0f64; names.len()];
    let mut full_sum = vec![0.0f64; names.len()];
    let mut commit_sum = vec![0.0f64; names.len()];

    for rep in 0..repetitions {
        let cfg = config.with_seed(config.seed.wrapping_add(rep as u64 * 7919));
        let sys = random_transaction_system(&cfg);
        let schedule = random_interleaving(&sys, cfg.seed ^ 0x51ab);
        for (idx, mut sched) in scheduler_zoo(&sys).into_iter().enumerate() {
            let prefix = run_prefix(sched.as_mut(), &schedule);
            prefix_sum[idx] += prefix.acceptance_ratio();
            full_sum[idx] += if prefix.accepted_all { 1.0 } else { 0.0 };
            let abort = run_abort(sched.as_mut(), &schedule);
            commit_sum[idx] += abort.commit_ratio();
        }
    }

    let n = repetitions.max(1) as f64;
    names
        .into_iter()
        .enumerate()
        .map(|(idx, (scheduler, multiversion))| SchedulerRow {
            scheduler,
            multiversion,
            mean_prefix_ratio: prefix_sum[idx] / n,
            full_acceptance_rate: full_sum[idx] / n,
            mean_commit_ratio: commit_sum[idx] / n,
        })
        .collect()
}

/// One row of the classifier-scaling table (experiment E10).
#[derive(Debug, Clone)]
pub struct ClassifierRow {
    /// Workload label.
    pub label: String,
    /// Number of steps in the schedule.
    pub steps: usize,
    /// Microseconds for the CSR test.
    pub csr_us: f64,
    /// Microseconds for the MVCSR test.
    pub mvcsr_us: f64,
    /// Microseconds for the VSR test (`None` when skipped as too large).
    pub vsr_us: Option<f64>,
    /// Microseconds for the MVSR test (`None` when skipped as too large).
    pub mvsr_us: Option<f64>,
}

/// Measures the polynomial classifiers on every configuration and the
/// NP-complete ones only while the transaction count stays tractable
/// (experiment E10: the complexity separation the paper asserts).
pub fn classifier_scaling(configs: &[WorkloadConfig], np_limit_txns: usize) -> Vec<ClassifierRow> {
    configs
        .iter()
        .map(|cfg| {
            let sys = random_transaction_system(cfg);
            let s = random_interleaving(&sys, cfg.seed ^ 0xc1a5);
            let time_us = |f: &dyn Fn() -> bool| {
                let start = Instant::now();
                let _ = f();
                start.elapsed().as_secs_f64() * 1e6
            };
            let csr_us = time_us(&|| is_csr(&s));
            let mvcsr_us = time_us(&|| is_mvcsr(&s));
            let (vsr_us, mvsr_us) = if cfg.transactions <= np_limit_txns {
                (
                    Some(time_us(&|| is_vsr(&s))),
                    Some(time_us(&|| is_mvsr(&s))),
                )
            } else {
                (None, None)
            };
            ClassifierRow {
                label: cfg.label(),
                steps: s.len(),
                csr_us,
                mvcsr_us,
                vsr_us,
                mvsr_us,
            }
        })
        .collect()
}

/// One row of the Theorem 4 table (experiment E5).
#[derive(Debug, Clone)]
pub struct Theorem4Row {
    /// Polygraph shape `nodes/arcs/choices`.
    pub polygraph: String,
    /// Steps in each constructed schedule.
    pub schedule_steps: usize,
    /// Whether the polygraph is acyclic.
    pub acyclic: bool,
    /// Whether the constructed pair is OLS.
    pub ols: bool,
    /// Milliseconds spent in the exact OLS check.
    pub ols_ms: f64,
}

impl Theorem4Row {
    /// The reduction is correct when the two verdicts coincide.
    pub fn consistent(&self) -> bool {
        self.acyclic == self.ols
    }
}

/// Runs the Theorem 4 pipeline over the given polygraphs (experiment E5).
pub fn theorem4_table(polygraphs: &[Polygraph]) -> Vec<Theorem4Row> {
    polygraphs
        .iter()
        .map(|p| {
            let inst = theorem4_schedules(p);
            let acyclic = is_acyclic_polygraph(p);
            let start = Instant::now();
            let ols = is_ols(&[inst.s1.clone(), inst.s2.clone()]);
            let ols_ms = start.elapsed().as_secs_f64() * 1e3;
            Theorem4Row {
                polygraph: format!(
                    "{}n/{}a/{}c",
                    p.node_count(),
                    p.arc_count(),
                    p.choice_count()
                ),
                schedule_steps: inst.s1.len(),
                acyclic,
                ols,
                ols_ms,
            }
        })
        .collect()
}

/// One row of the Theorem 5 table (experiment E7).
#[derive(Debug, Clone)]
pub struct Theorem5Row {
    /// Polygraph shape.
    pub polygraph: String,
    /// Steps in the constructed schedule.
    pub schedule_steps: usize,
    /// Whether the polygraph is acyclic.
    pub acyclic: bool,
    /// Whether the constructed schedule is MVSR (⇔ accepted by every
    /// maximal multiversion scheduler, by Corollary 1).
    pub mvsr: bool,
}

impl Theorem5Row {
    /// The reduction is correct when the two verdicts coincide.
    pub fn consistent(&self) -> bool {
        self.acyclic == self.mvsr
    }
}

/// Runs the Theorem 5 pipeline over the given polygraphs (experiment E7).
pub fn theorem5_table(polygraphs: &[Polygraph]) -> Vec<Theorem5Row> {
    polygraphs
        .iter()
        .map(|p| {
            let s = theorem5_schedule(p);
            Theorem5Row {
                polygraph: format!(
                    "{}n/{}a/{}c",
                    p.node_count(),
                    p.arc_count(),
                    p.choice_count()
                ),
                schedule_steps: s.len(),
                acyclic: is_acyclic_polygraph(p),
                mvsr: is_mvsr(&s),
            }
        })
        .collect()
}

/// The standard small polygraph corpus used by the tables: a mix of acyclic
/// and cyclic instances that the exact checkers can handle.
pub fn polygraph_corpus() -> Vec<Polygraph> {
    use mvcc_graph::NodeId;
    let mut corpus = Vec::new();
    // Single-choice acyclic.
    let mut p = Polygraph::with_nodes(3);
    p.add_choice(NodeId(0), NodeId(1), NodeId(2));
    corpus.push(p);
    // Two chained choices.
    let mut p = Polygraph::with_nodes(6);
    p.add_choice(NodeId(0), NodeId(1), NodeId(2));
    p.add_choice(NodeId(3), NodeId(4), NodeId(5));
    p.add_arc(NodeId(2), NodeId(3));
    corpus.push(p);
    // Handcrafted cyclic polygraph (every selection closes a cycle).
    let mut p = Polygraph::with_nodes(6);
    p.add_choice(NodeId(0), NodeId(1), NodeId(2));
    p.add_choice(NodeId(3), NodeId(4), NodeId(5));
    p.add_arc(NodeId(1), NodeId(0));
    p.add_arc(NodeId(4), NodeId(3));
    p.add_arc(NodeId(2), NodeId(4));
    p.add_arc(NodeId(5), NodeId(1));
    corpus.push(p);
    // Random instances from the workload generator.
    for seed in 0..3 {
        corpus.push(mvcc_workload::random_polygraph(5, 0.25, 2, seed));
    }
    corpus
}

/// One row of the engine load table (experiment E12): one certifier under
/// one load profile.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Certifier configuration.
    pub certifier: CertifierKind,
    /// The profile that drove the run.
    pub profile: LoadProfile,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions aborted.
    pub aborted: u64,
    /// Fraction of finished transactions that aborted.
    pub abort_ratio: f64,
    /// Interpolated p99 commit latency in µs (0.0 when nothing committed).
    pub p99_latency_us: f64,
    /// `true` if the committed history was validated to lie in the
    /// certifier's class by the offline classifiers (`None` when the check
    /// was skipped because recording was off).
    pub history_in_class: Option<bool>,
}

/// Drives the whole certifier zoo through the closed-loop engine harness
/// under `profile`, one fresh engine per certifier (experiment E12:
/// throughput and abort-rate scaling vs. threads × θ × certifier).
///
/// `validate_histories` additionally records each run's admission history
/// and checks its committed projection with the offline classifiers; keep
/// the profile's `ops` small when enabling it for the MVTO row, whose
/// class check (MVSR) is the NP-complete one.
pub fn engine_load_table(profile: &LoadProfile, validate_histories: bool) -> Vec<EngineRow> {
    CertifierKind::all()
        .into_iter()
        .map(|kind| {
            let report = mvcc_engine::load::run_closed_loop_with(kind, profile, validate_histories);
            EngineRow {
                certifier: kind,
                profile: *profile,
                throughput_tps: report.throughput_tps(),
                committed: report.metrics.committed,
                aborted: report.metrics.aborted,
                abort_ratio: report.abort_ratio(),
                p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
                history_in_class: validate_histories.then(|| report.history_in_class()),
            }
        })
        .collect()
}

/// One row of the pipeline-scaling table (experiment E13): one certifier
/// at one thread count, run once with the per-step admission baseline and
/// once with the batched group-commit pipeline.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Certifier configuration.
    pub certifier: CertifierKind,
    /// Worker threads driving the closed loop.
    pub threads: usize,
    /// Committed-transaction throughput with per-step admission
    /// (pipeline off).
    pub per_step_tps: f64,
    /// Committed-transaction throughput with batched admission
    /// (pipeline on).
    pub batched_tps: f64,
    /// Mean steps per admission batch observed in the batched run
    /// (`None` if the run ruled no batch — empty traffic).
    pub mean_admission_batch: Option<f64>,
    /// Mean transactions per group-commit batch in the batched run.
    pub mean_commit_batch: Option<f64>,
}

impl PipelineRow {
    /// Batched over per-step throughput (> 1 means the pipeline wins).
    pub fn speedup(&self) -> f64 {
        if self.per_step_tps == 0.0 {
            0.0
        } else {
            self.batched_tps / self.per_step_tps
        }
    }
}

/// Runs the pipeline-on/off comparison (experiment E13): for each thread
/// count and certifier, one closed loop under
/// [`mvcc_engine::AdmissionMode::PerStep`] and one under
/// [`mvcc_engine::AdmissionMode::Batched`], histories off (throughput
/// measurement).  The profile's `threads` field is overridden per row;
/// `shards` is raised to at least the thread count so storage is never the
/// serialization point being measured.
pub fn pipeline_scaling_table(
    base: &LoadProfile,
    threads: &[usize],
    kinds: &[CertifierKind],
) -> Vec<PipelineRow> {
    use mvcc_engine::load::run_closed_loop_in_mode;
    use mvcc_engine::AdmissionMode;
    let mut rows = Vec::with_capacity(threads.len() * kinds.len());
    for &threads in threads {
        let profile = LoadProfile {
            threads,
            shards: base.shards.max(threads),
            ..*base
        };
        for &kind in kinds {
            let off = run_closed_loop_in_mode(kind, &profile, false, AdmissionMode::PerStep);
            let on = run_closed_loop_in_mode(kind, &profile, false, AdmissionMode::Batched);
            rows.push(PipelineRow {
                certifier: kind,
                threads,
                per_step_tps: off.throughput_tps(),
                batched_tps: on.throughput_tps(),
                mean_admission_batch: on.metrics.mean_admission_batch(),
                mean_commit_batch: on.metrics.mean_commit_batch(),
            });
        }
    }
    rows
}

/// One row of the durability-scaling table (experiment E14): one
/// certifier under one [`mvcc_engine::DurabilityMode`].
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    /// Certifier configuration.
    pub certifier: CertifierKind,
    /// The durability mode of the run.
    pub mode: mvcc_engine::DurabilityMode,
    /// Committed-transaction throughput.
    pub throughput_tps: f64,
    /// Transactions committed.
    pub committed: u64,
    /// WAL flushes (one per group-commit batch; 0 with durability off).
    pub wal_flushes: u64,
    /// Flushes that ended in an fsync.
    pub wal_fsyncs: u64,
    /// Total bytes logged.
    pub wal_bytes: u64,
    /// Mean transactions made durable per flush (the group-commit
    /// amortization; `None` with durability off).
    pub mean_commits_per_flush: Option<f64>,
}

/// Runs the durability on/off comparison (experiment E14): for each
/// certifier, one closed loop per [`mvcc_engine::DurabilityMode`] — Off
/// (the E13 engine), Buffered (group-append + flush-to-OS per commit
/// batch) and Fsync (one fsync per commit batch) — histories off, a
/// fresh write-ahead log directory per durable cell (created under the
/// system temp dir and removed afterwards).
///
/// `trials` runs each cell that many times and reports the
/// median-throughput run: single runs on a timeshared single-CPU host
/// are noisy enough (±30% observed) to swamp the durability signal.
pub fn durability_scaling_table(
    base: &LoadProfile,
    kinds: &[CertifierKind],
    trials: usize,
) -> Vec<DurabilityRow> {
    use mvcc_engine::load::run_closed_loop_configured;
    use mvcc_engine::{AdmissionMode, DurabilityConfig, DurabilityMode};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CELL: AtomicU64 = AtomicU64::new(0);
    let trials = trials.max(1);
    let mut rows = Vec::with_capacity(kinds.len() * 3);
    for &kind in kinds {
        for mode in [
            DurabilityMode::Off,
            DurabilityMode::Buffered,
            DurabilityMode::Fsync,
        ] {
            let mut runs = Vec::with_capacity(trials);
            for _ in 0..trials {
                let durability = if mode == DurabilityMode::Off {
                    DurabilityConfig::off()
                } else {
                    let dir = std::env::temp_dir().join(format!(
                        "mvcc-e14-{}-{}-{}",
                        std::process::id(),
                        kind.name(),
                        CELL.fetch_add(1, Ordering::Relaxed)
                    ));
                    DurabilityConfig {
                        mode,
                        dir,
                        segment_bytes: 8 << 20,
                    }
                };
                let dir = durability.is_on().then(|| durability.dir.clone());
                let report = run_closed_loop_configured(
                    kind,
                    base,
                    false,
                    AdmissionMode::Batched,
                    durability,
                );
                if let Some(dir) = dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
                let m = report.metrics.clone();
                runs.push(DurabilityRow {
                    certifier: kind,
                    mode,
                    throughput_tps: report.throughput_tps(),
                    committed: m.committed,
                    wal_flushes: m.wal_flushes,
                    wal_fsyncs: m.wal_fsyncs,
                    wal_bytes: m.wal_bytes,
                    mean_commits_per_flush: m.mean_commits_per_flush(),
                });
            }
            runs.sort_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps));
            rows.push(runs.swap_remove(runs.len() / 2));
        }
    }
    rows
}

/// One row of the read-scaling table (experiment E15): one primary plus
/// `replicas` log-shipping read replicas under concurrent write load and
/// follower-read traffic.
#[derive(Debug, Clone)]
pub struct ReplicaRow {
    /// Number of read replicas attached (0 = reads served by the primary,
    /// the baseline).
    pub replicas: usize,
    /// Committed write-transaction throughput on the primary.
    pub primary_tps: f64,
    /// Served read-only transactions per second across all readers.
    pub read_tps: f64,
    /// Read-only transactions served.
    pub reads_served: u64,
    /// Read requests refused (staleness bound unmet within the wait
    /// budget, or aborted by the primary in baseline mode).
    pub reads_refused: u64,
    /// WAL records shipped to replicas.
    pub shipped_records: u64,
    /// Largest apply lag (LSNs) observed at read-pin time.
    pub max_lag_lsn: u64,
}

/// Runs the read-scaling comparison (experiment E15): a durable primary
/// drives `base` as a write workload while `readers` threads issue
/// read-only transactions (each touching `reads_per_txn` entities)
/// through a [`mvcc_replica::ReadRouter`] under
/// [`mvcc_replica::ReadPolicy::BoundedLag`] — routed to
/// {0, 1, 2, …} replicas per cell.  With 0 replicas the router serves
/// reads from the primary itself: that cell is the contention baseline
/// the replicas are meant to relieve.
///
/// `trials` runs each cell that many times and reports the median run by
/// read throughput (same noise rationale as E14).
pub fn replica_scaling_table(
    base: &LoadProfile,
    replica_counts: &[usize],
    readers: usize,
    reads_per_txn: usize,
    trials: usize,
) -> Vec<ReplicaRow> {
    use mvcc_engine::load::drive_closed_loop;
    use mvcc_engine::{DurabilityConfig, Engine, EngineConfig};
    use mvcc_replica::{
        LogShipper, ReadPolicy, ReadRouter, Replica, ReplicaConfig, RouterConfig, ShipperConfig,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    static CELL: AtomicU64 = AtomicU64::new(0);
    let trials = trials.max(1);
    let mut rows = Vec::with_capacity(replica_counts.len());
    for &count in replica_counts {
        let mut runs: Vec<ReplicaRow> = Vec::with_capacity(trials);
        for _ in 0..trials {
            let dir = std::env::temp_dir().join(format!(
                "mvcc-e15-{}-{}",
                std::process::id(),
                CELL.fetch_add(1, Ordering::Relaxed)
            ));
            let engine = Arc::new(Engine::new(
                CertifierKind::SnapshotIsolation,
                EngineConfig {
                    shards: base.shards,
                    entities: base.entities,
                    record_history: false,
                    durability: DurabilityConfig::buffered(&dir),
                    ..EngineConfig::default()
                },
            ));
            let mut replicas = Vec::with_capacity(count);
            let mut shippers = Vec::with_capacity(count);
            for _ in 0..count {
                let mut config = ReplicaConfig::new(
                    base.shards,
                    base.entities,
                    mvcc_replica::Bytes::from_static(b"0"),
                );
                config.record_history = false;
                config.metrics = Some(engine.metrics_handle());
                // lint: allow(unwrap) — bench harness: setup failure is fatal to the run
                let replica = Arc::new(Replica::open(config, &dir).expect("open replica"));
                shippers.push(LogShipper::start(
                    Arc::clone(&replica),
                    ShipperConfig::default(),
                ));
                replicas.push(replica);
            }
            let router = Arc::new(ReadRouter::new(
                Arc::clone(&engine),
                replicas.clone(),
                RouterConfig::default(),
            ));
            let done = Arc::new(AtomicBool::new(false));
            let served = Arc::new(AtomicU64::new(0));
            let refused = Arc::new(AtomicU64::new(0));
            let mut reader_threads = Vec::with_capacity(readers);
            for _ in 0..readers {
                let router = Arc::clone(&router);
                let done = Arc::clone(&done);
                let served = Arc::clone(&served);
                let refused = Arc::clone(&refused);
                let entities = base.entities as u32;
                let span = reads_per_txn as u32;
                reader_threads.push(std::thread::spawn(move || {
                    let mut at = 0u32;
                    while !done.load(Ordering::Acquire) {
                        match router.begin_read(ReadPolicy::BoundedLag(4096)) {
                            Ok(mut read) => {
                                let mut ok = true;
                                for i in 0..span {
                                    if read.read(mvcc_core::EntityId((at + i) % entities)).is_err()
                                    {
                                        ok = false;
                                        break;
                                    }
                                }
                                at = at.wrapping_add(span);
                                if ok {
                                    read.finish();
                                    served.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    refused.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(_) => {
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }));
            }
            let started = std::time::Instant::now();
            drive_closed_loop(&engine, base);
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            done.store(true, Ordering::Release);
            for t in reader_threads {
                // lint: allow(unwrap) — bench harness: a panicked worker must fail the run
                t.join().expect("reader panicked");
            }
            // Drain each replica to the durable horizon before stopping
            // its shipper: a very short run can finish inside the
            // shipper's first poll interval, and the telemetry row
            // should reflect the whole log either way.
            for replica in &replicas {
                // lint: allow(unwrap) — bench harness: setup failure is fatal to the run
                replica.catch_up().expect("final drain");
            }
            for shipper in shippers {
                shipper.stop();
            }
            let m = engine.metrics().snapshot();
            let reads_served = served.load(Ordering::Relaxed);
            // In the 0-replica baseline the router's read-only sessions
            // commit on the primary and land in the same `committed`
            // counter as the write load; subtract them so the primary
            // column compares write throughput across cells.
            let write_commits = if count == 0 {
                m.committed.saturating_sub(reads_served)
            } else {
                m.committed
            };
            runs.push(ReplicaRow {
                replicas: count,
                primary_tps: write_commits as f64 / elapsed,
                read_tps: reads_served as f64 / elapsed,
                reads_served,
                reads_refused: refused.load(Ordering::Relaxed),
                shipped_records: m.repl_shipped_records,
                max_lag_lsn: m.repl_max_lag_lsn,
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
        runs.sort_by(|a, b| a.read_tps.total_cmp(&b.read_tps));
        rows.push(runs.swap_remove(runs.len() / 2));
    }
    rows
}

/// One row of the telemetry trajectory table (experiment E17): one
/// certifier under the closed loop with per-stage tracing on.
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Certifier configuration.
    pub certifier: CertifierKind,
    /// Worker threads driving the closed loop.
    pub threads: usize,
    /// Committed-transaction throughput.
    pub throughput_tps: f64,
    /// Interpolated p99 commit latency in µs (0.0 when nothing committed).
    pub p99_latency_us: f64,
    /// Per-stage interpolated quantiles recorded during the run
    /// (admission queue-wait and service, certify, group-commit apply,
    /// WAL flush, batch sizes, commit latency).
    pub stages: mvcc_telemetry::TelemetrySnapshot,
    /// Tail exemplars captured by the trace reservoir (0 when tracing
    /// never sampled a commit, as in telemetry-off runs).
    pub exemplar_count: usize,
    /// Fraction of captured exemplars whose dominant stage is
    /// attributable (1.0 when no exemplars were captured).
    pub attribution: f64,
    /// Committed-history windows the classification watchdog checked
    /// during the run (0 when the watchdog was off).
    pub watchdog_windows: u64,
    /// Watchdog windows that violated the certifier's class — any
    /// non-zero value here is a correctness alarm, not a perf number.
    pub watchdog_violations: u64,
}

/// One E18 cell: the scalar row plus the full span trees of the tail
/// exemplars the reservoir retained, so the trace report can explain
/// *why* the slow commits were slow instead of only counting them.
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Scalar row (throughput, stage quantiles, exemplar/watchdog counts).
    pub row: TelemetryRow,
    /// Retained tail-exemplar span trees, slowest first.
    pub exemplars: Vec<mvcc_telemetry::TraceTree>,
}

/// Runs the per-stage telemetry trajectory (experiment E17): each
/// certifier drives one closed loop with [`mvcc_engine::TelemetryMode::On`]
/// and buffered durability (so the WAL flush stages fill too), and the
/// row carries the run's full per-stage snapshot.  This is the table the
/// `telemetry_scaling` binary exports as `BENCH_7.json`.
///
/// `trials` runs each cell that many times and keeps the
/// median-throughput run (same single-CPU noise rationale as E14); the
/// stage quantiles reported are the median run's, not cross-run merges,
/// so they describe one coherent execution.
pub fn telemetry_scaling_table(
    base: &LoadProfile,
    kinds: &[CertifierKind],
    trials: usize,
) -> Vec<TelemetryRow> {
    use mvcc_engine::load::run_closed_loop_instrumented;
    use mvcc_engine::{AdmissionMode, DurabilityConfig, TelemetryMode};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CELL: AtomicU64 = AtomicU64::new(0);
    let trials = trials.max(1);
    let mut rows = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut runs = Vec::with_capacity(trials);
        for _ in 0..trials {
            let dir = std::env::temp_dir().join(format!(
                "mvcc-e17-{}-{}-{}",
                std::process::id(),
                kind.name(),
                CELL.fetch_add(1, Ordering::Relaxed)
            ));
            let report = run_closed_loop_instrumented(
                kind,
                base,
                false,
                AdmissionMode::Batched,
                DurabilityConfig::buffered(&dir),
                TelemetryMode::On,
            );
            let _ = std::fs::remove_dir_all(&dir);
            runs.push(TelemetryRow {
                certifier: kind,
                threads: base.threads,
                throughput_tps: report.throughput_tps(),
                p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
                stages: report.metrics.stages.clone(),
                exemplar_count: report.exemplars.len(),
                attribution: report.exemplar_attribution(),
                watchdog_windows: 0,
                watchdog_violations: 0,
            });
        }
        runs.sort_by(|a, b| a.throughput_tps.total_cmp(&b.throughput_tps));
        rows.push(runs.swap_remove(runs.len() / 2));
    }
    rows
}

/// Runs the causal-tracing trajectory (experiment E18): each certifier
/// drives one closed loop with tracing on, a bounded ring history, and
/// the online classification watchdog sampling committed windows while
/// the load runs.  The row set is what `telemetry_scaling --trace`
/// exports as `BENCH_9.json`; the retained exemplar trees feed the
/// "why slow" trace report.
///
/// `trials` keeps the median-throughput run per cell (same rationale as
/// E17); exemplars and watchdog counts are the median run's, so the
/// report describes one coherent execution.
pub fn trace_scaling_table(
    base: &LoadProfile,
    kinds: &[CertifierKind],
    trials: usize,
) -> Vec<TraceRun> {
    use mvcc_engine::load::run_closed_loop_traced;
    use mvcc_engine::{AdmissionMode, DurabilityConfig, TelemetryMode};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CELL: AtomicU64 = AtomicU64::new(0);
    let trials = trials.max(1);
    let mut rows = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut runs = Vec::with_capacity(trials);
        for _ in 0..trials {
            let dir = std::env::temp_dir().join(format!(
                "mvcc-e18-{}-{}-{}",
                std::process::id(),
                kind.name(),
                CELL.fetch_add(1, Ordering::Relaxed)
            ));
            let report = run_closed_loop_traced(
                kind,
                base,
                true,
                Some(512),
                AdmissionMode::Batched,
                DurabilityConfig::buffered(&dir),
                TelemetryMode::On,
                true,
            );
            let _ = std::fs::remove_dir_all(&dir);
            let watchdog = report.watchdog.unwrap_or_default();
            runs.push(TraceRun {
                row: TelemetryRow {
                    certifier: kind,
                    threads: base.threads,
                    throughput_tps: report.throughput_tps(),
                    p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
                    stages: report.metrics.stages.clone(),
                    exemplar_count: report.exemplars.len(),
                    attribution: report.exemplar_attribution(),
                    watchdog_windows: watchdog.windows,
                    watchdog_violations: watchdog.violations,
                },
                exemplars: report.exemplars,
            });
        }
        runs.sort_by(|a, b| a.row.throughput_tps.total_cmp(&b.row.throughput_tps));
        rows.push(runs.swap_remove(runs.len() / 2));
    }
    rows
}

/// One E19 cell: the scalar row plus the continuous metrics timeline the
/// health monitor recorded during the run and the alarms its anomaly
/// detector raised.  A release run of the steady closed loop must report
/// zero alarms — any entry here is a detector false positive (or a real
/// engine regression), not a perf number.
#[derive(Debug, Clone)]
pub struct TimelineRun {
    /// Scalar row (throughput, stage quantiles, exemplar/watchdog counts).
    pub row: TelemetryRow,
    /// Timeline frames the 100 ms-cadence recorder captured, oldest first.
    pub timeline: Vec<mvcc_telemetry::TimelineFrame>,
    /// Alarms the anomaly detector raised while observing those frames.
    pub alarms: Vec<mvcc_engine::Alarm>,
}

/// Windowed extrema of one run's timeline — the per-row summary block
/// `BENCH_10.json` carries so the bench trajectory can gate on worst-case
/// *windows*, not only run-wide aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSummary {
    /// Frames the recorder captured (≥ 1: stop always takes a closing sample).
    pub frames: usize,
    /// Largest single-window abort rate observed (0.0 when nothing finished).
    pub max_abort_rate: f64,
    /// Worst single-window p99 commit latency in µs.
    pub worst_p99_us: f64,
    /// Alarms raised during the run (steady-state runs must report 0).
    pub alarms: usize,
}

impl TimelineRun {
    /// Reduces the timeline to its windowed extrema.
    pub fn summary(&self) -> TimelineSummary {
        let mut max_abort_rate: f64 = 0.0;
        let mut worst_p99_us: f64 = 0.0;
        for frame in &self.timeline {
            max_abort_rate = max_abort_rate.max(frame.abort_rate);
            worst_p99_us = worst_p99_us.max(frame.commit.p99);
        }
        TimelineSummary {
            frames: self.timeline.len(),
            max_abort_rate,
            worst_p99_us,
            alarms: self.alarms.len(),
        }
    }
}

/// Runs the continuous-observability trajectory (experiment E19): each
/// certifier drives one closed loop with tracing, the watchdog, *and* the
/// health monitor sampling the metrics registry on a fixed cadence while
/// the load runs.  The row set is what `telemetry_scaling --timeline`
/// exports as `BENCH_10.json`; the median run's frames are what
/// `--timeline-out` writes as `timeline.jsonl` for `mvccstat replay`.
///
/// `trials` keeps the median-throughput run per cell (same rationale as
/// E17/E18); the timeline and alarms are the median run's, so the frames
/// describe one coherent execution.
pub fn timeline_scaling_table(
    base: &LoadProfile,
    kinds: &[CertifierKind],
    trials: usize,
) -> Vec<TimelineRun> {
    use mvcc_engine::load::run_closed_loop_monitored;
    use mvcc_engine::{AdmissionMode, DurabilityConfig, HealthConfig, TelemetryMode};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CELL: AtomicU64 = AtomicU64::new(0);
    let trials = trials.max(1);
    let mut rows = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut runs = Vec::with_capacity(trials);
        for _ in 0..trials {
            let dir = std::env::temp_dir().join(format!(
                "mvcc-e19-{}-{}-{}",
                std::process::id(),
                kind.name(),
                CELL.fetch_add(1, Ordering::Relaxed)
            ));
            let report = run_closed_loop_monitored(
                kind,
                base,
                true,
                Some(512),
                AdmissionMode::Batched,
                DurabilityConfig::buffered(&dir),
                TelemetryMode::On,
                true,
                Some(HealthConfig::default()),
            );
            let _ = std::fs::remove_dir_all(&dir);
            let watchdog = report.watchdog.unwrap_or_default();
            runs.push(TimelineRun {
                row: TelemetryRow {
                    certifier: kind,
                    threads: base.threads,
                    throughput_tps: report.throughput_tps(),
                    p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
                    stages: report.metrics.stages.clone(),
                    exemplar_count: report.exemplars.len(),
                    attribution: report.exemplar_attribution(),
                    watchdog_windows: watchdog.windows,
                    watchdog_violations: watchdog.violations,
                },
                timeline: report.timeline,
                alarms: report.alarms,
            });
        }
        runs.sort_by(|a, b| a.row.throughput_tps.total_cmp(&b.row.throughput_tps));
        rows.push(runs.swap_remove(runs.len() / 2));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_rows_all_match_the_paper() {
        let rows = figure1_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.matches()), "{rows:?}");
    }

    #[test]
    fn census_covers_every_region_population() {
        let (total, census) = figure1_census();
        assert_eq!(total, census.total());
        assert_eq!(census.containment_violations, 0);
        assert!(census.count(Figure1Region::Serial) > 0);
    }

    #[test]
    fn scheduler_comparison_shows_the_multiversion_advantage() {
        let cfg = WorkloadConfig {
            transactions: 4,
            steps_per_transaction: 3,
            entities: 4,
            read_ratio: 0.7,
            zipf_theta: 0.5,
            seed: 11,
        };
        let rows = scheduler_comparison(&cfg, 12);
        assert_eq!(rows.len(), 6);
        let get = |name: &str| rows.iter().find(|r| r.scheduler == name).unwrap().clone();
        let serial = get("serial");
        let sgt = get("sgt");
        let mv_sgt = get("mv-sgt");
        // The ordering the paper's story requires: serial <= SGT <= MV-SGT.
        assert!(serial.mean_prefix_ratio <= sgt.mean_prefix_ratio + 1e-9);
        assert!(sgt.mean_prefix_ratio <= mv_sgt.mean_prefix_ratio + 1e-9);
        assert!(serial.mean_commit_ratio <= mv_sgt.mean_commit_ratio + 1e-9);
        // Every ratio is a valid probability.
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.mean_prefix_ratio));
            assert!((0.0..=1.0).contains(&r.full_acceptance_rate));
            assert!((0.0..=1.0).contains(&r.mean_commit_ratio));
        }
    }

    #[test]
    fn classifier_scaling_runs_polynomial_tests_everywhere() {
        let configs = vec![
            WorkloadConfig {
                transactions: 3,
                steps_per_transaction: 3,
                entities: 4,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                transactions: 12,
                steps_per_transaction: 4,
                entities: 8,
                ..WorkloadConfig::default()
            },
        ];
        let rows = classifier_scaling(&configs, 6);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].vsr_us.is_some() && rows[0].mvsr_us.is_some());
        assert!(rows[1].vsr_us.is_none() && rows[1].mvsr_us.is_none());
        assert!(rows.iter().all(|r| r.csr_us >= 0.0 && r.mvcsr_us >= 0.0));
    }

    #[test]
    fn engine_load_table_covers_the_zoo_and_validates_histories() {
        let profile = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 60,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.8,
            zipf_theta: 0.5,
            seed: 3,
        };
        let rows = engine_load_table(&profile, true);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(
                row.history_in_class,
                Some(true),
                "{} history out of class",
                row.certifier
            );
            assert!(row.committed > 0, "{} never committed", row.certifier);
            assert!(row.throughput_tps > 0.0);
            assert!((0.0..=1.0).contains(&row.abort_ratio));
        }
    }

    #[test]
    fn pipeline_scaling_rows_cover_the_grid_and_batch() {
        let base = LoadProfile {
            ops: 400,
            entities: 16,
            steps_per_transaction: 3,
            read_ratio: 0.8,
            zipf_theta: 0.0,
            seed: 0xe13,
            ..LoadProfile::default()
        };
        let kinds = [CertifierKind::Sgt, CertifierKind::SnapshotIsolation];
        let rows = pipeline_scaling_table(&base, &[1, 2], &kinds);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.per_step_tps > 0.0, "{} off-run starved", row.certifier);
            assert!(row.batched_tps > 0.0, "{} on-run starved", row.certifier);
            // Batched runs always report batch telemetry (size ≥ 1).
            let mean = row.mean_admission_batch.unwrap();
            assert!(mean >= 1.0, "{} mean batch {mean}", row.certifier);
            assert!(row.mean_commit_batch.unwrap() >= 1.0);
            assert!(row.speedup() > 0.0);
        }
    }

    #[test]
    fn durability_rows_cover_the_modes_and_log_only_when_on() {
        let base = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 240,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0xe14,
        };
        let rows = durability_scaling_table(&base, &[CertifierKind::Sgt], 1);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.committed > 0, "{}/{} starved", row.certifier, row.mode);
            assert!(row.throughput_tps > 0.0);
            match row.mode {
                mvcc_engine::DurabilityMode::Off => {
                    assert_eq!(row.wal_flushes, 0);
                    assert_eq!(row.wal_bytes, 0);
                    assert_eq!(row.mean_commits_per_flush, None);
                }
                mvcc_engine::DurabilityMode::Buffered => {
                    assert!(row.wal_flushes > 0);
                    assert_eq!(row.wal_fsyncs, 0, "buffered mode never fsyncs");
                    assert!(row.wal_bytes > 0);
                    assert!(row.mean_commits_per_flush.unwrap() >= 1.0);
                }
                mvcc_engine::DurabilityMode::Fsync => {
                    assert!(row.wal_fsyncs > 0);
                    assert_eq!(row.wal_fsyncs, row.wal_flushes);
                }
            }
        }
    }

    #[test]
    fn replica_rows_serve_reads_at_every_replica_count() {
        let base = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 300,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.2, // write-heavy primary: the readers do the reading
            zipf_theta: 0.0,
            seed: 0xe15,
        };
        let rows = replica_scaling_table(&base, &[0, 1], 2, 3, 1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].replicas, 0);
        assert_eq!(rows[1].replicas, 1);
        for row in &rows {
            assert!(row.primary_tps > 0.0, "{}: primary starved", row.replicas);
            assert!(row.reads_served > 0, "{}: no reads served", row.replicas);
        }
        // Replica cells actually shipped the log; the baseline has none.
        assert_eq!(rows[0].shipped_records, 0);
        assert!(rows[1].shipped_records > 0);
    }

    #[test]
    fn theorem_tables_are_consistent_on_the_corpus() {
        let corpus = polygraph_corpus();
        assert!(corpus.len() >= 5);
        let t4 = theorem4_table(&corpus);
        assert!(t4.iter().all(|r| r.consistent()), "{t4:?}");
        assert!(t4.iter().any(|r| r.acyclic) && t4.iter().any(|r| !r.acyclic));
        let t5 = theorem5_table(&corpus);
        assert!(t5.iter().all(|r| r.consistent()), "{t5:?}");
    }
}
