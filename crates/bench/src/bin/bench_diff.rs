//! Per-certifier throughput regression gate between two E17 documents.
//!
//! `bench_diff BASELINE NEW [--max-regression FRACTION]` compares the
//! `txn_s` of every certifier row in `NEW` against the same certifier in
//! `BASELINE` and exits non-zero if any regressed by more than the
//! threshold (default 0.10 — ten percent).  Certifiers present in the
//! baseline but missing from the new document are an error too: a gate
//! that silently ignores a vanished row would pass on the worst
//! regression of all.
//!
//! CI runs this in the bench-smoke job: the committed `BENCH_7.json` is
//! the baseline trajectory, the freshly generated `BENCH_8.json` the
//! candidate.  Improvements and sub-threshold noise print but pass.
//!
//! The gate reads only `rows[].certifier` and `rows[].txn_s`, which every
//! later document schema keeps as a superset — so the same binary also
//! gates E18's `BENCH_9.json` (vs. `BENCH_8`) and E19's `BENCH_10.json`
//! (vs. the committed `BENCH_9`): the timeline-recorder overhead rides
//! the same 10% throughput threshold as everything else.

use mvcc_telemetry::json::{parse, JsonValue};
use std::process::ExitCode;

/// `(certifier, txn_s)` pairs of an E17 document.
fn throughput_rows(text: &str, path: &str) -> Result<Vec<(String, f64)>, String> {
    let doc = parse(text).map_err(|e| format!("{path}: {e}"))?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("{path}: no `rows` array"))?;
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let certifier = row
            .get("certifier")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}: row {i} has no `certifier`"))?;
        let txn_s = row
            .get("txn_s")
            .and_then(JsonValue::as_number)
            .ok_or_else(|| format!("{path}: row {i} has no numeric `txn_s`"))?;
        if !txn_s.is_finite() || txn_s <= 0.0 {
            return Err(format!("{path}: {certifier}: non-positive txn_s {txn_s}"));
        }
        out.push((certifier.to_string(), txn_s));
    }
    if out.is_empty() {
        return Err(format!("{path}: zero rows"));
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut max_regression = 0.10_f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-regression" => {
                let value = args
                    .next()
                    .ok_or_else(|| "--max-regression needs a fraction".to_string())?;
                max_regression = value
                    .parse()
                    .map_err(|e| format!("--max-regression {value}: {e}"))?;
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        return Err("usage: bench_diff BASELINE NEW [--max-regression FRACTION]".to_string());
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = throughput_rows(&read(baseline_path)?, baseline_path)?;
    let new = throughput_rows(&read(new_path)?, new_path)?;

    let mut ok = true;
    for (certifier, base_tps) in &baseline {
        let Some((_, new_tps)) = new.iter().find(|(c, _)| c == certifier) else {
            eprintln!("FAIL {certifier}: present in {baseline_path}, missing from {new_path}");
            ok = false;
            continue;
        };
        let delta = (new_tps - base_tps) / base_tps;
        let verdict = if delta < -max_regression {
            ok = false;
            "FAIL"
        } else {
            "ok  "
        };
        println!(
            "{verdict} {certifier:8} {base_tps:>12.0} -> {new_tps:>12.0} txn/s ({:+.1}%)",
            delta * 100.0
        );
    }
    if ok {
        println!(
            "bench_diff: no certifier regressed more than {:.0}% ({} vs {})",
            max_regression * 100.0,
            new_path,
            baseline_path
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::from(2)
        }
    }
}
