//! Experiments E12 and E13: engine throughput and abort-rate scaling
//! under real concurrent load — threads × Zipfian skew θ × certifier —
//! plus the batched admission pipeline on/off comparison.
//!
//! This is the paper's "enhanced performance" claim taken out of the
//! single-schedule replay harness and put under multi-threaded closed-loop
//! load: each cell runs a fresh `mvcc-engine` with one certifier from the
//! zoo and reports committed-transaction throughput, the abort breakdown
//! and tail latency.  A small validated sweep at the end re-checks the
//! committed histories with the offline classifiers.
//!
//! Run with `cargo run -p mvcc-bench --bin engine_scaling --release`.

use mvcc_bench::experiments::{engine_load_table, pipeline_scaling_table};
use mvcc_bench::Table;
use mvcc_engine::CertifierKind;
use mvcc_workload::LoadProfile;

fn print_sweep(title: &str, profiles: &[LoadProfile], validate: bool) {
    println!("### {title}\n");
    for profile in profiles {
        let rows = engine_load_table(profile, validate);
        let mut table = Table::new(
            profile.to_string(),
            &[
                "certifier",
                "class",
                "throughput (txn/s)",
                "committed",
                "aborted",
                "abort rate",
                "p99 commit (µs)",
                "history in class",
            ],
        );
        for row in rows {
            table.row(&[
                row.certifier.to_string(),
                row.certifier.class().to_string(),
                format!("{:.0}", row.throughput_tps),
                row.committed.to_string(),
                row.aborted.to_string(),
                format!("{:.1}%", row.abort_ratio * 100.0),
                format!("{:.0}", row.p99_latency_us),
                match row.history_in_class {
                    Some(true) => "yes".into(),
                    Some(false) => "NO (bug!)".into(),
                    None => "unchecked".into(),
                },
            ]);
        }
        println!("{}", table.render());
    }
}

fn main() {
    let base = LoadProfile {
        ops: 20_000,
        ..LoadProfile::default()
    };
    // Thread scaling at moderate contention.
    let thread_sweep: Vec<LoadProfile> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| LoadProfile {
            threads,
            shards: threads.max(2),
            zipf_theta: 0.5,
            ..base
        })
        .collect();
    print_sweep("E12a: thread scaling (θ = 0.5)", &thread_sweep, false);

    // Contention sweep at fixed parallelism.
    let theta_sweep: Vec<LoadProfile> = [0.0, 0.5, 0.9, 1.2]
        .into_iter()
        .map(|zipf_theta| LoadProfile {
            threads: 4,
            shards: 4,
            zipf_theta,
            ..base
        })
        .collect();
    print_sweep("E12b: contention sweep (4 threads)", &theta_sweep, false);

    // Small validated runs: the offline classifiers re-check the committed
    // histories (kept small because the MVTO check is the NP-complete one).
    let validated: Vec<LoadProfile> = [0.0, 0.9]
        .into_iter()
        .map(|zipf_theta| LoadProfile {
            threads: 4,
            shards: 2,
            ops: 120,
            entities: 8,
            steps_per_transaction: 3,
            zipf_theta,
            ..base
        })
        .collect();
    print_sweep(
        "E12c: theory checks the engine (validated histories)",
        &validated,
        true,
    );

    // E13: the batched admission pipeline on vs. off, uncontended (θ = 0)
    // thread scaling — the serialization point under test is admission
    // itself, so skew is zeroed and shards track the thread count.
    println!("### E13: admission pipeline on/off (θ = 0)\n");
    let e13_base = LoadProfile {
        ops: 20_000,
        zipf_theta: 0.0,
        seed: 0xe13,
        ..LoadProfile::default()
    };
    let kinds = CertifierKind::all();
    let rows = pipeline_scaling_table(&e13_base, &[1, 2, 4], &kinds);
    let mut table = Table::new(
        format!("{e13_base} (threads overridden per row)"),
        &[
            "certifier",
            "threads",
            "per-step (txn/s)",
            "batched (txn/s)",
            "speedup",
            "mean adm. batch",
            "mean commit batch",
        ],
    );
    for row in rows {
        table.row(&[
            row.certifier.to_string(),
            row.threads.to_string(),
            format!("{:.0}", row.per_step_tps),
            format!("{:.0}", row.batched_tps),
            format!("{:.2}×", row.speedup()),
            row.mean_admission_batch
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
            row.mean_commit_batch
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
        ]);
    }
    println!("{}", table.render());
}
