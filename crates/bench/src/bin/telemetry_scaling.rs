//! Experiments E17/E18/E19: the per-stage telemetry trajectory, the
//! causal-tracing trajectory and the continuous-observability
//! trajectory — every certifier under the closed loop with tracing on,
//! exported as `BENCH_7.json` (E17), with `--trace` as `BENCH_9.json`
//! plus the "why slow" trace report (E18), or with `--timeline` as
//! `BENCH_10.json` plus the `timeline.jsonl` frame export (E19).
//!
//! Prints the human-readable table and writes the machine-readable
//! document ([`mvcc_bench::bench_json::bench7_document`],
//! [`mvcc_bench::bench_json::bench9_document`] or
//! [`mvcc_bench::bench_json::bench10_document`]) to `--out`, then
//! re-validates what it wrote — the same schema check CI runs, so a
//! malformed document fails here first.
//!
//! Flags:
//! * `--smoke` — a small, fast configuration for CI: fewer ops, and
//!   each row is the best of five one-trial drives (a capability
//!   snapshot robust to scheduler jitter on shared runners, since the
//!   workload itself is seed-deterministic).  The schema of the output
//!   is identical to the full run.
//! * `--trace` — run E18 instead of E17: ring history, the online
//!   classification watchdog sampling committed windows under load, and
//!   tail-exemplar capture.  Changes the default `--out` to
//!   `BENCH_9.json`.
//! * `--timeline` — run E19 instead: everything E18 runs *plus* the
//!   continuous health monitor sampling the metrics registry on a fixed
//!   cadence, so each row carries a windowed timeline summary (frames,
//!   worst abort-rate window, worst p99 window, alarms).  Changes the
//!   default `--out` to `BENCH_10.json`.
//! * `--out PATH` — where to write the JSON document.
//! * `--trace-out PATH` — (E18 only) also write the exemplar /
//!   attribution trace report, schema-checked by
//!   [`mvcc_bench::bench_json::validate_trace_report`].
//! * `--timeline-out PATH` — (E19 only) also write the recorded frames
//!   of the densest row as JSONL, schema-checked by
//!   [`mvcc_bench::bench_json::validate_timeline_jsonl`] — the file
//!   `mvccstat replay` consumes.
//! * `--validate PATH` — validate an existing document and exit (no
//!   benchmark runs).  E18 documents (experiment tag `E18*`) are held
//!   to the stricter BENCH_9 schema, E19 documents (`E19*`) to the
//!   BENCH_10 schema.
//! * `--validate-trace PATH` — validate an existing trace report and
//!   exit.
//! * `--validate-timeline PATH` — validate an existing `timeline.jsonl`
//!   export and exit.
//!
//! Run with `cargo run -p mvcc-bench --bin telemetry_scaling --release`.

use mvcc_bench::bench_json::{
    bench10_document, bench7_document, bench9_document, trace_report_document, validate_bench10,
    validate_bench7, validate_bench9, validate_timeline_jsonl, validate_trace_report,
};
use mvcc_bench::experiments::{
    telemetry_scaling_table, timeline_scaling_table, trace_scaling_table, TelemetryRow,
};
use mvcc_bench::Table;
use mvcc_engine::CertifierKind;
use mvcc_telemetry::json::{self, JsonValue};
use mvcc_telemetry::Stage;
use mvcc_workload::LoadProfile;

/// Validates a trajectory document against the schema its experiment
/// tag announces: `E19*` documents must satisfy the BENCH_10 schema,
/// `E18*` the BENCH_9 schema, everything else the BENCH_7 schema.
fn validate_document(text: &str) -> Result<&'static str, String> {
    let tag = json::parse(text)?
        .get("experiment")
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or("missing or non-string key: experiment")?;
    if tag.starts_with("E19") {
        validate_bench10(text).map(|()| "E19")
    } else if tag.starts_with("E18") {
        validate_bench9(text).map(|()| "E18")
    } else {
        validate_bench7(text).map(|()| "E17")
    }
}

fn main() {
    let mut smoke = false;
    let mut trace = false;
    let mut timeline = false;
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut timeline_out: Option<String> = None;
    let mut validate_only: Option<String> = None;
    let mut validate_trace_only: Option<String> = None;
    let mut validate_timeline_only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--trace" => trace = true,
            "--timeline" => timeline = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--timeline-out" => {
                timeline_out = Some(args.next().expect("--timeline-out needs a path"));
            }
            "--validate" => validate_only = Some(args.next().expect("--validate needs a path")),
            "--validate-trace" => {
                validate_trace_only = Some(args.next().expect("--validate-trace needs a path"));
            }
            "--validate-timeline" => {
                validate_timeline_only =
                    Some(args.next().expect("--validate-timeline needs a path"));
            }
            other => panic!("unknown flag: {other}"),
        }
    }
    if let Some(path) = validate_only {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_document(&text) {
            Ok(schema) => {
                println!("{path}: valid {schema} document");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_trace_only {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_trace_report(&text) {
            Ok(()) => {
                println!("{path}: valid trace report");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = validate_timeline_only {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_timeline_jsonl(&text) {
            Ok(frames) => {
                println!("{path}: valid timeline export ({frames} frames)");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
    if trace && timeline {
        panic!("--trace and --timeline are mutually exclusive");
    }

    // Smoke rows feed the CI regression diffs against a *committed*
    // baseline, so they are capability snapshots: the best of `reps`
    // one-trial drives per certifier.  A short drive on a small shared
    // runner is jitter-dominated (a single scheduler slump halves a
    // median), but the workload is seed-deterministic, so the per-rep
    // *maximum* concentrates tightly near the configuration's capability
    // and the 10% gate measures the code, not the scheduler.  Full rows
    // stay medians — they are the representative trajectory record.
    let (ops, trials, reps, tag) = match (smoke, trace, timeline) {
        (true, false, false) => (2_000, 1, 5, "E17-smoke"),
        (false, false, false) => (20_000, 5, 1, "E17"),
        (true, true, false) => (2_000, 1, 5, "E18-smoke"),
        (false, true, false) => (20_000, 5, 1, "E18"),
        (true, false, true) => (2_000, 1, 5, "E19-smoke"),
        (false, false, true) => (20_000, 5, 1, "E19"),
        (_, true, true) => unreachable!("rejected above"),
    };
    let out = out.unwrap_or_else(|| {
        String::from(if timeline {
            "BENCH_10.json"
        } else if trace {
            "BENCH_9.json"
        } else {
            "BENCH_7.json"
        })
    });
    let base = LoadProfile {
        threads: 4,
        shards: 4,
        ops,
        zipf_theta: 0.0,
        seed: if timeline {
            0xe19
        } else if trace {
            0xe18
        } else {
            0xe17
        },
        ..LoadProfile::default()
    };
    let experiment = if timeline {
        "E19: continuous-observability trajectory"
    } else if trace {
        "E18: causal-tracing trajectory"
    } else {
        "E17: per-stage telemetry trajectory"
    };
    if smoke {
        println!("### {experiment} (4 threads, θ = 0, best of {reps} one-trial drives)\n");
    } else {
        println!("### {experiment} (4 threads, θ = 0, median of {trials})\n");
    }

    let stage_p99 = |row: &TelemetryRow, stage: Stage| {
        row.stages
            .get(stage)
            .and_then(|h| h.quantile(0.99))
            .map_or_else(|| "-".into(), |q| format!("{q:.1}"))
    };
    if timeline {
        let mut runs = timeline_scaling_table(&base, &CertifierKind::all(), trials);
        for _ in 1..reps {
            let next = timeline_scaling_table(&base, &CertifierKind::all(), trials);
            for (best, candidate) in runs.iter_mut().zip(next) {
                if candidate.row.throughput_tps > best.row.throughput_tps {
                    *best = candidate;
                }
            }
        }
        let mut table = Table::new(
            base.to_string(),
            &[
                "certifier",
                "throughput (txn/s)",
                "p99 commit (µs)",
                "frames",
                "max abort window",
                "worst p99 window (µs)",
                "alarms",
            ],
        );
        for run in &runs {
            let summary = run.summary();
            table.row(&[
                run.row.certifier.to_string(),
                format!("{:.0}", run.row.throughput_tps),
                format!("{:.0}", run.row.p99_latency_us),
                format!("{}", summary.frames),
                format!("{:.1}%", summary.max_abort_rate * 100.0),
                format!("{:.0}", summary.worst_p99_us),
                format!("{}", summary.alarms),
            ]);
        }
        println!("{}", table.render());

        let doc = bench10_document(tag, &runs);
        validate_bench10(&doc).expect("the emitted document must satisfy its own schema");
        std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {} rows to {out} (schema validated)", runs.len());
        if let Some(path) = timeline_out {
            // Export the densest row's frames: the most complete single
            // execution for `mvccstat replay` to narrate.
            let densest = runs
                .iter()
                .max_by_key(|r| r.timeline.len())
                .expect("at least one certifier row");
            let text = mvcc_telemetry::write_jsonl(&densest.timeline);
            let frames = validate_timeline_jsonl(&text)
                .expect("the emitted timeline must satisfy its own schema");
            std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!(
                "wrote {frames} timeline frames ({}) to {path} (schema validated)",
                densest.row.certifier
            );
        }
    } else if trace {
        let mut runs = trace_scaling_table(&base, &CertifierKind::all(), trials);
        for _ in 1..reps {
            let next = trace_scaling_table(&base, &CertifierKind::all(), trials);
            for (best, candidate) in runs.iter_mut().zip(next) {
                if candidate.row.throughput_tps > best.row.throughput_tps {
                    *best = candidate;
                }
            }
        }
        let mut table = Table::new(
            base.to_string(),
            &[
                "certifier",
                "throughput (txn/s)",
                "p99 commit (µs)",
                "exemplars",
                "attribution",
                "dog windows",
                "dog violations",
            ],
        );
        for run in &runs {
            table.row(&[
                run.row.certifier.to_string(),
                format!("{:.0}", run.row.throughput_tps),
                format!("{:.0}", run.row.p99_latency_us),
                format!("{}", run.row.exemplar_count),
                format!("{:.2}", run.row.attribution),
                format!("{}", run.row.watchdog_windows),
                format!("{}", run.row.watchdog_violations),
            ]);
        }
        println!("{}", table.render());

        let doc = bench9_document(tag, &runs);
        validate_bench9(&doc).expect("the emitted document must satisfy its own schema");
        std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {} rows to {out} (schema validated)", runs.len());
        if let Some(path) = trace_out {
            let report = trace_report_document(tag, &runs);
            validate_trace_report(&report)
                .expect("the emitted trace report must satisfy its own schema");
            std::fs::write(&path, &report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote trace report to {path} (schema validated)");
        }
    } else {
        let mut rows = telemetry_scaling_table(&base, &CertifierKind::all(), trials);
        for _ in 1..reps {
            let next = telemetry_scaling_table(&base, &CertifierKind::all(), trials);
            for (best, candidate) in rows.iter_mut().zip(next) {
                if candidate.throughput_tps > best.throughput_tps {
                    *best = candidate;
                }
            }
        }
        let mut table = Table::new(
            base.to_string(),
            &[
                "certifier",
                "throughput (txn/s)",
                "p99 commit (µs)",
                "adm. service p99 (µs)",
                "certify p99 (µs)",
                "gc apply p99 (µs)",
                "wal flush p99 (µs)",
            ],
        );
        for row in &rows {
            table.row(&[
                row.certifier.to_string(),
                format!("{:.0}", row.throughput_tps),
                format!("{:.0}", row.p99_latency_us),
                stage_p99(row, Stage::AdmissionService),
                stage_p99(row, Stage::Certify),
                stage_p99(row, Stage::GroupCommitApply),
                stage_p99(row, Stage::WalFlush),
            ]);
        }
        println!("{}", table.render());

        let doc = bench7_document(tag, &rows);
        validate_bench7(&doc).expect("the emitted document must satisfy its own schema");
        std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("wrote {} rows to {out} (schema validated)", rows.len());
    }
}
