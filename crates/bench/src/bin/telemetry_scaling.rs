//! Experiment E17: the per-stage telemetry trajectory — every certifier
//! under the closed loop with tracing on, exported as `BENCH_7.json`.
//!
//! Prints the human-readable table and writes the machine-readable
//! document ([`mvcc_bench::bench_json::bench7_document`]) to `--out`
//! (default `BENCH_7.json`), then re-validates what it wrote — the same
//! schema check CI runs, so a malformed document fails here first.
//!
//! Flags:
//! * `--smoke` — a small, fast configuration for CI (fewer ops, one
//!   trial); the schema of the output is identical to the full run.
//! * `--out PATH` — where to write the JSON document.
//! * `--validate PATH` — validate an existing document and exit (no
//!   benchmark runs).
//!
//! Run with `cargo run -p mvcc-bench --bin telemetry_scaling --release`.

use mvcc_bench::bench_json::{bench7_document, validate_bench7};
use mvcc_bench::experiments::telemetry_scaling_table;
use mvcc_bench::Table;
use mvcc_engine::CertifierKind;
use mvcc_telemetry::Stage;
use mvcc_workload::LoadProfile;

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_7.json");
    let mut validate_only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--validate" => validate_only = Some(args.next().expect("--validate needs a path")),
            other => panic!("unknown flag: {other}"),
        }
    }
    if let Some(path) = validate_only {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_bench7(&text) {
            Ok(()) => {
                println!("{path}: valid E17 document");
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }

    let (ops, trials, tag) = if smoke {
        (2_000, 1, "E17-smoke")
    } else {
        (20_000, 5, "E17")
    };
    let base = LoadProfile {
        threads: 4,
        shards: 4,
        ops,
        zipf_theta: 0.0,
        seed: 0xe17,
        ..LoadProfile::default()
    };
    println!("### E17: per-stage telemetry trajectory (4 threads, θ = 0, median of {trials})\n");
    let rows = telemetry_scaling_table(&base, &CertifierKind::all(), trials);
    let mut table = Table::new(
        base.to_string(),
        &[
            "certifier",
            "throughput (txn/s)",
            "p99 commit (µs)",
            "adm. service p99 (µs)",
            "certify p99 (µs)",
            "gc apply p99 (µs)",
            "wal flush p99 (µs)",
        ],
    );
    let stage_p99 = |row: &mvcc_bench::experiments::TelemetryRow, stage: Stage| {
        row.stages
            .get(stage)
            .and_then(|h| h.quantile(0.99))
            .map_or_else(|| "-".into(), |q| format!("{q:.1}"))
    };
    for row in &rows {
        table.row(&[
            row.certifier.to_string(),
            format!("{:.0}", row.throughput_tps),
            format!("{:.0}", row.p99_latency_us),
            stage_p99(row, Stage::AdmissionService),
            stage_p99(row, Stage::Certify),
            stage_p99(row, Stage::GroupCommitApply),
            stage_p99(row, Stage::WalFlush),
        ]);
    }
    println!("{}", table.render());

    let doc = bench7_document(tag, &rows);
    validate_bench7(&doc).expect("the emitted document must satisfy its own schema");
    std::fs::write(&out, &doc).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {} rows to {out} (schema validated)", rows.len());
}
