//! Experiment E15: read scaling with log-shipping replicas — one durable
//! primary under write load, follower reads routed to {0, 1, 2} replicas
//! under a `BoundedLag` policy.
//!
//! The 0-replica cell is the baseline: the router serves reads from the
//! primary itself, where they contend with the write load for the
//! admission lanes and shards.  Replica cells move that traffic onto
//! snapshot-consistent followers fed off the write-ahead log — the
//! multiversion-classes-make-read-scaling-safe claim, measured.
//!
//! Run with `cargo run -p mvcc-bench --bin replica_scaling --release`.

use mvcc_bench::experiments::replica_scaling_table;
use mvcc_bench::Table;
use mvcc_workload::LoadProfile;

fn main() {
    let base = LoadProfile {
        threads: 2,
        shards: 4,
        ops: 20_000,
        entities: 64,
        steps_per_transaction: 3,
        read_ratio: 0.2, // the primary load is the *write* half; reader
        // threads supply the read-heavy traffic through the router
        zipf_theta: 0.0,
        seed: 0xe15,
    };
    println!("### E15: read scaling with replicas (4 reader threads, bounded-lag, median of 3)\n");
    let rows = replica_scaling_table(&base, &[0, 1, 2], 4, 4, 3);
    let mut table = Table::new(
        base.to_string(),
        &[
            "replicas",
            "read txn/s",
            "vs 0 replicas",
            "primary txn/s",
            "reads served",
            "refused",
            "records shipped",
            "max lag (lsn)",
        ],
    );
    let mut baseline = 0.0f64;
    for row in rows {
        if row.replicas == 0 {
            baseline = row.read_tps;
        }
        table.row(&[
            row.replicas.to_string(),
            format!("{:.0}", row.read_tps),
            if baseline > 0.0 {
                format!("{:.2}×", row.read_tps / baseline)
            } else {
                "-".into()
            },
            format!("{:.0}", row.primary_tps),
            row.reads_served.to_string(),
            row.reads_refused.to_string(),
            row.shipped_records.to_string(),
            row.max_lag_lsn.to_string(),
        ]);
    }
    println!("{}", table.render());
}
