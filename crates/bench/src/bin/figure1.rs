//! Experiment E1: regenerate Figure 1 of the paper.
//!
//! Prints (a) the six example schedules with their computed class
//! memberships and the region of the figure they witness, and (b) a census
//! of *every* interleaving of a small transaction system plus a random
//! population, showing how the regions are inhabited — the "topography of
//! all schedules".
//!
//! Run with `cargo run -p mvcc-bench --bin figure1 --release`.

use mvcc_bench::experiments::{figure1_census, figure1_rows};
use mvcc_bench::Table;
use mvcc_classify::taxonomy::{classify, Census};
use mvcc_core::display::grid;
use mvcc_core::examples::{figure1, Figure1Region};
use mvcc_workload::{random_interleaving, random_transaction_system, WorkloadConfig};

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn main() {
    println!("Reproduction of Figure 1: the topography of all schedules\n");

    // Part (a): the six examples.
    let mut table = Table::new(
        "Figure 1 examples",
        &[
            "#",
            "schedule",
            "serial",
            "CSR",
            "SR(VSR)",
            "MVCSR",
            "MVSR",
            "DMVSR",
            "region",
            "matches paper",
        ],
    );
    for row in figure1_rows() {
        table.row(&[
            row.number.to_string(),
            row.schedule.clone(),
            yes_no(row.flags[0]).into(),
            yes_no(row.flags[1]).into(),
            yes_no(row.flags[2]).into(),
            yes_no(row.flags[3]).into(),
            yes_no(row.flags[4]).into(),
            yes_no(row.flags[5]).into(),
            format!("{:?}", row.computed_region),
            yes_no(row.matches()).into(),
        ]);
    }
    println!("{}", table.render());

    println!("Example schedules in the paper's grid layout:\n");
    for ex in figure1() {
        println!("({}) {}", ex.number, ex.region.description());
        println!("{}", grid(&ex.schedule));
    }

    // Part (b): exhaustive census of a small system.
    let (total, census) = figure1_census();
    println!("Census of all {total} interleavings of the 3-transaction census system:\n{census}\n");

    // Part (c): census over random interleavings of a larger workload
    // (classified with the exact algorithms, so the sizes stay moderate).
    let cfg = WorkloadConfig {
        transactions: 4,
        steps_per_transaction: 3,
        entities: 3,
        read_ratio: 0.6,
        zipf_theta: 0.5,
        seed: 2024,
    };
    let schedules: Vec<_> = (0..200)
        .map(|i| {
            let sys = random_transaction_system(&cfg.with_seed(cfg.seed + i));
            random_interleaving(&sys, i)
        })
        .collect();
    let census = Census::build(schedules.iter());
    println!("Census of 200 random 4-transaction interleavings:\n{census}\n");

    // Region witnesses drawn from the random population (first hit each).
    let mut witnesses = Table::new(
        "Random witnesses per region",
        &["region", "example schedule"],
    );
    for region in Figure1Region::all() {
        if let Some(s) = schedules.iter().find(|s| classify(s).region() == region) {
            witnesses.row(&[format!("{region:?}"), s.to_string()]);
        }
    }
    println!("{}", witnesses.render());
}
