//! Experiment E14: what durability costs — the engine's closed loop under
//! `DurabilityMode::{Off, Buffered, Fsync}` across the certifier zoo.
//!
//! The group-commit pipeline makes durability nearly free on the hot
//! path: one commit-lane drain batch is exactly one WAL append and one
//! flush (one fsync in fsync mode), so the per-transaction log cost is
//! amortized over the whole batch.  The table reports throughput per
//! mode plus the amortization telemetry (mean commits per flush, bytes
//! logged).
//!
//! Run with `cargo run -p mvcc-bench --bin durability_scaling --release`.

use mvcc_bench::experiments::durability_scaling_table;
use mvcc_bench::Table;
use mvcc_engine::{CertifierKind, DurabilityMode};
use mvcc_workload::LoadProfile;

fn main() {
    let base = LoadProfile {
        threads: 4,
        shards: 4,
        ops: 20_000,
        zipf_theta: 0.0,
        seed: 0xe14,
        ..LoadProfile::default()
    };
    println!("### E14: durability scaling (4 threads, θ = 0, median of 5)\n");
    // Median of 5 runs per cell: single runs on a timeshared
    // single-CPU container are too noisy to compare modes.
    let rows = durability_scaling_table(&base, &CertifierKind::all(), 5);
    let mut table = Table::new(
        base.to_string(),
        &[
            "certifier",
            "mode",
            "throughput (txn/s)",
            "vs off",
            "committed",
            "flushes (fsyncs)",
            "mean commits/flush",
            "bytes logged",
        ],
    );
    let mut off_tps = 0.0f64;
    for row in rows {
        if row.mode == DurabilityMode::Off {
            off_tps = row.throughput_tps;
        }
        table.row(&[
            row.certifier.to_string(),
            row.mode.to_string(),
            format!("{:.0}", row.throughput_tps),
            if off_tps > 0.0 {
                format!("{:.2}×", row.throughput_tps / off_tps)
            } else {
                "-".into()
            },
            row.committed.to_string(),
            format!("{} ({})", row.wal_flushes, row.wal_fsyncs),
            row.mean_commits_per_flush
                .map_or_else(|| "-".into(), |m| format!("{m:.1}")),
            row.wal_bytes.to_string(),
        ]);
    }
    println!("{}", table.render());
}
