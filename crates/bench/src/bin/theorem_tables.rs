//! Experiments E2–E8 and E10: the theorem-by-theorem tables.
//!
//! * Theorem 1/2/3 — MVCSR via the MVCG, the swap characterisation and the
//!   containment census;
//! * Theorem 4 — the polygraph → schedule-pair reduction and the exact OLS
//!   verdicts;
//! * Section 4 — the OLS counterexample pair;
//! * Theorem 5 — the polygraph → forced-read-from schedule reduction;
//! * Theorem 6 — the adaptive construction against the greedy maximal
//!   scheduler;
//! * E10 — the polynomial/NP-complete classifier cost separation.
//!
//! Run with `cargo run -p mvcc-bench --bin theorem_tables --release`.

use mvcc_bench::experiments::{
    classifier_scaling, polygraph_corpus, theorem4_table, theorem5_table,
};
use mvcc_bench::Table;
use mvcc_classify::swaps::swap_distance_to_serial;
use mvcc_classify::{is_mvcsr, is_mvsr};
use mvcc_core::examples::section4_pair;
use mvcc_graph::poly_acyclic::is_acyclic_polygraph;
use mvcc_reductions::ols::{is_ols, ols_violation};
use mvcc_reductions::theorem6::adaptive_schedule;
use mvcc_scheduler::GreedyMaximalScheduler;
use mvcc_workload::{perturbed_serial, random_transaction_system, suites, WorkloadConfig};

fn main() {
    theorem2_table();
    section4_table();
    theorem4_and_5_tables();
    theorem6_table();
    complexity_table();
}

/// Theorem 2: schedules produced by k legal switches from a serial schedule
/// are MVCSR, and the swap distance back to a serial schedule is bounded by
/// the number of switches applied.
fn theorem2_table() {
    let cfg = WorkloadConfig {
        transactions: 3,
        steps_per_transaction: 3,
        entities: 4,
        read_ratio: 0.6,
        zipf_theta: 0.0,
        seed: 7,
    };
    let sys = random_transaction_system(&cfg);
    let mut table = Table::new(
        "Theorem 2: switches of adjacent non-conflicting steps (3 txns x 3 steps)",
        &["switches applied", "MVCSR", "swap distance back to serial"],
    );
    for requested in [0usize, 1, 2, 4, 8, 16, 32] {
        let (s, applied) = perturbed_serial(&sys, requested, requested as u64 + 1);
        let distance =
            swap_distance_to_serial(&s).map_or_else(|| "unreachable".into(), |d| d.to_string());
        table.row(&[
            format!("{applied} (requested {requested})"),
            is_mvcsr(&s).to_string(),
            distance,
        ]);
    }
    println!("{}", table.render());
}

/// Section 4: the pair {s, s'} proving MVCSR is not OLS.
fn section4_table() {
    let (s, s_prime) = section4_pair();
    let mut table = Table::new(
        "Section 4: the on-line schedulability counterexample",
        &["schedule", "MVCSR", "MVSR", "in OLS pair"],
    );
    let pair = [s.clone(), s_prime.clone()];
    let ols = is_ols(&pair);
    for (name, sched) in [("s", &s), ("s'", &s_prime)] {
        table.row(&[
            format!("{name} = {sched}"),
            is_mvcsr(sched).to_string(),
            is_mvsr(sched).to_string(),
            ols.to_string(),
        ]);
    }
    println!("{}", table.render());
    if let Some(v) = ols_violation(&pair) {
        println!(
            "  -> not OLS: the serializing version functions disagree on the shared prefix of length {}\n",
            v.prefix_len
        );
    }
}

/// Theorems 4 and 5 over the polygraph corpus.
fn theorem4_and_5_tables() {
    let corpus = polygraph_corpus();
    let mut t4 = Table::new(
        "Theorem 4: polygraph -> pair of MVCSR schedules (OLS iff acyclic)",
        &[
            "polygraph",
            "steps per schedule",
            "acyclic",
            "pair OLS",
            "OLS check ms",
            "consistent",
        ],
    );
    for row in theorem4_table(&corpus) {
        t4.row(&[
            row.polygraph.clone(),
            row.schedule_steps.to_string(),
            row.acyclic.to_string(),
            row.ols.to_string(),
            format!("{:.2}", row.ols_ms),
            row.consistent().to_string(),
        ]);
    }
    println!("{}", t4.render());

    let mut t5 = Table::new(
        "Theorem 5: polygraph -> forced-read-from schedule (MVSR iff acyclic)",
        &[
            "polygraph",
            "steps",
            "acyclic",
            "schedule MVSR",
            "consistent",
        ],
    );
    for row in theorem5_table(&corpus) {
        t5.row(&[
            row.polygraph.clone(),
            row.schedule_steps.to_string(),
            row.acyclic.to_string(),
            row.mvsr.to_string(),
            row.consistent().to_string(),
        ]);
    }
    println!("{}", t5.render());
}

/// Theorem 6: the adaptive construction against the greedy maximal
/// scheduler.
fn theorem6_table() {
    let corpus = polygraph_corpus();
    let mut table = Table::new(
        "Theorem 6: adaptive construction vs. the greedy maximal scheduler",
        &[
            "polygraph",
            "acyclic",
            "schedule accepted",
            "amendments",
            "choices pinned",
            "consistent",
        ],
    );
    for p in &corpus {
        let acyclic = is_acyclic_polygraph(p);
        let out = adaptive_schedule(p, || Box::new(GreedyMaximalScheduler::new()));
        table.row(&[
            format!(
                "{}n/{}a/{}c",
                p.node_count(),
                p.arc_count(),
                p.choice_count()
            ),
            acyclic.to_string(),
            out.accepted.to_string(),
            out.amendments.to_string(),
            out.choices_pinned.to_string(),
            (out.accepted == acyclic).to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E10: classifier cost separation.
fn complexity_table() {
    let rows = classifier_scaling(&suites::e10_sizes(), 6);
    let mut table = Table::new(
        "E10: classifier cost (microseconds; NP-complete tests skipped on large instances)",
        &[
            "workload", "steps", "CSR us", "MVCSR us", "VSR us", "MVSR us",
        ],
    );
    let fmt_opt = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.1}"));
    for row in rows {
        table.row(&[
            row.label.clone(),
            row.steps.to_string(),
            format!("{:.1}", row.csr_us),
            format!("{:.1}", row.mvcsr_us),
            fmt_opt(row.vsr_us),
            fmt_opt(row.mvsr_us),
        ]);
    }
    println!("{}", table.render());
}
