//! Experiment E9: the acceptance-rate comparison behind the paper's
//! motivation — "by maintaining multiple versions of each data entity, we
//! can achieve concurrency control schemes of enhanced performance".
//!
//! For each workload configuration the whole scheduler zoo is run over the
//! same random interleavings in both execution modes of the harness;
//! single-version schedulers (serial, 2PL, TO, SGT) are compared against the
//! multiversion ones (MVTO, MV-SGT).
//!
//! Run with `cargo run -p mvcc-bench --bin scheduler_comparison --release`.

use mvcc_bench::experiments::scheduler_comparison;
use mvcc_bench::Table;
use mvcc_workload::{suites, WorkloadConfig};

fn print_sweep(title: &str, configs: &[WorkloadConfig], repetitions: usize) {
    println!("### {title} ({repetitions} random interleavings per row)\n");
    for cfg in configs {
        let rows = scheduler_comparison(cfg, repetitions);
        let mut table = Table::new(
            cfg.label(),
            &[
                "scheduler",
                "multiversion",
                "mean accepted prefix",
                "full schedules accepted",
                "mean committed txns",
            ],
        );
        for row in rows {
            table.row(&[
                row.scheduler.to_string(),
                if row.multiversion { "yes" } else { "no" }.into(),
                format!("{:.1}%", row.mean_prefix_ratio * 100.0),
                format!("{:.1}%", row.full_acceptance_rate * 100.0),
                format!("{:.1}%", row.mean_commit_ratio * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
}

fn main() {
    let repetitions = 40;
    print_sweep(
        "E9a: contention sweep",
        &suites::e9_contention_sweep(),
        repetitions,
    );
    print_sweep(
        "E9b: read-ratio sweep",
        &suites::e9_read_ratio_sweep(),
        repetitions,
    );
    print_sweep("E9c: scale sweep", &suites::e9_scale_sweep(), repetitions);
    println!(
        "Reading the tables: every multiversion scheduler should dominate its single-version\n\
         counterpart (MV-SGT >= SGT, MVTO >= TO) on every row; the gap widens with contention\n\
         (fewer entities, hotter Zipfian skew, fewer reads) -- the shape the paper's\n\
         introduction asserts."
    );
}
