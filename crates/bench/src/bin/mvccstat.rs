//! `mvccstat` — the cluster-observability ops surface: renders the
//! continuous metrics timeline (experiment E19) either live, from an
//! engine it drives itself, or offline, from a committed
//! `timeline.jsonl` export.
//!
//! Subcommands:
//! * `mvccstat live [--certifier NAME] [--threads N] [--ops N]
//!   [--interval-ms MS]` — builds an engine with telemetry and the
//!   classification watchdog on, attaches a [`HealthMonitor`], drives
//!   the closed loop on worker threads, and streams each timeline frame
//!   to stdout as the recorder captures it.  Ends with the aggregated
//!   [`ClusterHealth`] report (members, alarms, failover MTTR when one
//!   happened).
//! * `mvccstat replay PATH [--metrics]` — parses a `timeline.jsonl`
//!   export, prints every frame in the same one-row format, re-runs the
//!   [`AnomalyDetector`] over the frames (the detector is deterministic
//!   given frames, so replay reproduces exactly the alarms a live run
//!   would have raised), and renders the final cluster-health report.
//!   With `--metrics`, also prints the Prometheus-style text exposition
//!   of the newest frame.
//!
//! Run with `cargo run -p mvcc-bench --bin mvccstat --release -- live`.

use mvcc_engine::load::drive_closed_loop;
use mvcc_engine::{
    AnomalyDetector, CertifierKind, ClusterHealth, DetectorConfig, DurabilityConfig, Engine,
    EngineConfig, HealthConfig, HealthMonitor, TelemetryMode, TimelineFrame,
};
use mvcc_telemetry::{metrics_text, parse_jsonl};
use mvcc_workload::LoadProfile;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mvccstat live [--certifier NAME] [--threads N] [--ops N] [--interval-ms MS]\n  \
         mvccstat replay PATH [--metrics]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("live") => live(args),
        Some("replay") => replay(args),
        _ => usage(),
    }
}

/// Streams frames from a monitored live run: engine + watchdog + health
/// monitor, closed loop on worker threads, frames printed as captured.
fn live(mut args: impl Iterator<Item = String>) {
    let mut certifier = CertifierKind::Sgt;
    let mut threads = 4usize;
    let mut ops = 200_000usize;
    let mut interval_ms = 100u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--certifier" => {
                let name = args.next().unwrap_or_else(|| usage());
                certifier = CertifierKind::all()
                    .into_iter()
                    .find(|k| k.name() == name)
                    .unwrap_or_else(|| {
                        eprintln!(
                            "unknown certifier {name}; known: {}",
                            CertifierKind::all()
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    });
            }
            "--threads" => threads = parse_num(args.next()),
            "--ops" => ops = parse_num(args.next()),
            "--interval-ms" => interval_ms = parse_num(args.next()) as u64,
            _ => usage(),
        }
    }
    let profile = LoadProfile {
        threads,
        shards: 4,
        ops,
        zipf_theta: 0.0,
        seed: 0x57a7,
        ..LoadProfile::default()
    };
    // A buffered WAL in a temp directory so the lsn/fsync columns carry
    // real positions — removed again on exit.
    let wal_dir = std::env::temp_dir().join(format!("mvccstat-live-{}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).unwrap_or_else(|e| panic!("cannot create WAL dir: {e}"));
    let engine = Arc::new(Engine::new(
        certifier,
        EngineConfig {
            shards: profile.shards,
            entities: profile.entities,
            record_history: true,
            history_capacity: Some(512),
            durability: DurabilityConfig::buffered(&wal_dir),
            telemetry: TelemetryMode::On,
            ..EngineConfig::default()
        },
    ));
    let monitor = HealthMonitor::start(
        &engine,
        Vec::new(),
        HealthConfig {
            interval: Duration::from_millis(interval_ms),
            ..HealthConfig::default()
        },
    );
    println!("mvccstat live: {certifier}, {threads} threads, {ops} ops, {interval_ms} ms cadence");
    let driver = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || drive_closed_loop(&engine, &profile))
    };
    // Stream frames as the recorder captures them: poll the shared ring
    // at the sampling cadence and print every frame not yet shown.
    let ring = monitor.ring();
    let mut printed: Option<u64> = None;
    let mut show_new = |frames: &[TimelineFrame]| {
        for frame in frames {
            if printed.map_or(true, |last| frame.seq > last) {
                printed = Some(frame.seq);
                println!("{frame}");
            }
        }
    };
    loop {
        let done = driver.is_finished();
        show_new(&ring.frames());
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    let elapsed = driver.join().expect("load driver panicked");
    let events = engine
        .metrics_handle()
        .telemetry()
        .map(|t| t.flight().events())
        .unwrap_or_default();
    let (frames, alarms) = monitor.stop();
    // The closing frame lands at stop, after the last poll; show it too.
    show_new(&frames);
    println!();
    // lint: allow(unwrap) — the recorder always takes a closing sample
    let last = frames.last().unwrap();
    print!(
        "{}",
        ClusterHealth::from_frame(last, alarms, &events).render()
    );
    println!(
        "run: {} frames in {:.2} s",
        frames.len(),
        elapsed.as_secs_f64()
    );
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// Replays a committed `timeline.jsonl`: frames rendered one per row,
/// the detector re-run over them, and the final health report.
fn replay(mut args: impl Iterator<Item = String>) {
    let mut path: Option<String> = None;
    let mut metrics = false;
    for arg in args.by_ref() {
        match arg.as_str() {
            "--metrics" => metrics = true,
            other if path.is_none() => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let frames: Vec<TimelineFrame> = match parse_jsonl(&text) {
        Ok(frames) => frames,
        Err(e) => {
            eprintln!("{path}: malformed timeline: {e}");
            std::process::exit(1);
        }
    };
    if frames.is_empty() {
        eprintln!("{path}: no frames");
        std::process::exit(1);
    }
    println!("mvccstat replay: {path} ({} frames)", frames.len());
    for frame in &frames {
        println!("{frame}");
    }
    let alarms = AnomalyDetector::replay(&frames, DetectorConfig::default());
    // lint: allow(unwrap) — non-empty checked above
    let last = frames.last().unwrap();
    println!();
    print!("{}", ClusterHealth::from_frame(last, alarms, &[]).render());
    if metrics {
        println!();
        print!("{}", metrics_text(last));
    }
}

fn parse_num(arg: Option<String>) -> usize {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}
