//! Minimal plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: ToString>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["alpha", "1"]);
        t.push(&["b", "10000"]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("alpha"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push(&["only one"]);
    }
}
