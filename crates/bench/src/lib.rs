//! # mvcc-bench
//!
//! The experiment harness: Criterion micro-benchmarks (under `benches/`) and
//! table-printing binaries (under `src/bin/`) that regenerate the paper's
//! Figure 1 and the derived experiment tables E1–E12 described in
//! `DESIGN.md` / `EXPERIMENTS.md`.
//!
//! This library crate holds the small pieces shared by the binaries: plain
//! text table rendering and the experiment drivers that compute rows (so
//! they can be unit-tested without running the binaries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_json;
pub mod experiments;
pub mod table;

pub use table::Table;
