//! The machine-readable bench trajectory (experiment E17): builds and
//! validates the `BENCH_7.json` document the `telemetry_scaling` binary
//! emits.
//!
//! The document is the bridge between the bench harness and anything
//! that wants to track the repo's performance over time without parsing
//! rendered tables: one JSON object per run, one row per certifier, each
//! row carrying the per-stage interpolated quantiles of
//! [`mvcc_telemetry::TelemetrySnapshot::to_json`].  The schema is
//! deliberately small and checked by [`validate_bench7`] — CI runs the
//! binary in smoke mode and fails on malformed output, so the document
//! can be trusted downstream.

use crate::experiments::TelemetryRow;
use mvcc_telemetry::json::{self, JsonValue};

/// Renders the E17 trajectory document: `{"experiment": …, "rows":
/// [{"certifier", "threads", "txn_s", "p99_commit_us", "stages"}…]}`.
/// `experiment` names the run (`"E17"`, or a variant tag for smoke runs).
pub fn bench7_document(experiment: &str, rows: &[TelemetryRow]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"experiment\": ");
    json::write_string(&mut out, experiment);
    out.push_str(", \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"certifier\": ");
        json::write_string(&mut out, row.certifier.name());
        out.push_str(", \"threads\": ");
        json::write_number(&mut out, row.threads as f64);
        out.push_str(", \"txn_s\": ");
        json::write_number(&mut out, row.throughput_tps);
        out.push_str(", \"p99_commit_us\": ");
        json::write_number(&mut out, row.p99_latency_us);
        out.push_str(", \"stages\": ");
        out.push_str(&row.stages.to_json());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Checks a `BENCH_7.json` document against the E17 schema: the top-level
/// keys are present and well-typed, every row carries `certifier` /
/// `threads` / `txn_s` / `stages`, and every non-empty stage's
/// interpolated quantiles are monotone (p50 ≤ p95 ≤ p99 ≤ p999).
/// Returns the first violation as an error message.
pub fn validate_bench7(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    doc.get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string key: experiment")?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array key: rows")?;
    for (i, row) in rows.iter().enumerate() {
        let certifier = row
            .get("certifier")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("row {i}: missing or non-string key: certifier"))?;
        for key in ["threads", "txn_s", "p99_commit_us"] {
            row.get(key).and_then(JsonValue::as_number).ok_or_else(|| {
                format!("row {i} ({certifier}): missing or non-number key: {key}")
            })?;
        }
        let stages = row
            .get("stages")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("row {i} ({certifier}): missing or non-object key: stages"))?;
        for (stage, snapshot) in stages {
            let count = snapshot
                .get("count")
                .and_then(JsonValue::as_number)
                .ok_or_else(|| format!("row {i} ({certifier}) stage {stage}: missing count"))?;
            if count == 0.0 {
                continue;
            }
            let quantile = |key: &str| {
                snapshot
                    .get(key)
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| format!("row {i} ({certifier}) stage {stage}: missing {key}"))
            };
            let (p50, p95, p99, p999) = (
                quantile("p50")?,
                quantile("p95")?,
                quantile("p99")?,
                quantile("p999")?,
            );
            if !(p50 <= p95 && p95 <= p99 && p99 <= p999) {
                return Err(format!(
                    "row {i} ({certifier}) stage {stage}: quantiles not monotone: \
                     p50={p50} p95={p95} p99={p99} p999={p999}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_engine::CertifierKind;
    use mvcc_telemetry::TelemetrySnapshot;

    fn row(kind: CertifierKind) -> TelemetryRow {
        TelemetryRow {
            certifier: kind,
            threads: 2,
            throughput_tps: 1234.5,
            p99_latency_us: 88.0,
            stages: TelemetrySnapshot::empty(),
        }
    }

    #[test]
    fn an_emitted_document_validates() {
        let rows: Vec<TelemetryRow> = CertifierKind::all().into_iter().map(row).collect();
        let doc = bench7_document("E17-test", &rows);
        validate_bench7(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("experiment").and_then(JsonValue::as_str),
            Some("E17-test")
        );
        assert_eq!(
            parsed
                .get("rows")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            6
        );
    }

    #[test]
    fn a_live_run_round_trips_with_stage_quantiles() {
        use mvcc_engine::load::run_closed_loop_instrumented;
        use mvcc_engine::{AdmissionMode, DurabilityConfig, TelemetryMode};
        use mvcc_workload::LoadProfile;
        let profile = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 120,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0xb7,
        };
        let report = run_closed_loop_instrumented(
            CertifierKind::Sgt,
            &profile,
            false,
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::On,
        );
        let rows = vec![TelemetryRow {
            certifier: CertifierKind::Sgt,
            threads: profile.threads,
            throughput_tps: report.throughput_tps(),
            p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
            stages: report.metrics.stages.clone(),
        }];
        assert!(
            !rows[0].stages.is_empty(),
            "a telemetry-on run must record stages"
        );
        let doc = bench7_document("E17-live", &rows);
        validate_bench7(&doc).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected_with_the_violation_named() {
        assert!(validate_bench7("not json").is_err());
        assert!(validate_bench7("{\"rows\": []}")
            .unwrap_err()
            .contains("experiment"));
        assert!(validate_bench7("{\"experiment\": \"E17\"}")
            .unwrap_err()
            .contains("rows"));
        let bad_row = "{\"experiment\": \"E17\", \"rows\": [{\"certifier\": \"sgt\"}]}";
        assert!(validate_bench7(bad_row).unwrap_err().contains("threads"));
        let bad_quantiles = "{\"experiment\": \"E17\", \"rows\": [{\"certifier\": \"sgt\", \
             \"threads\": 2, \"txn_s\": 10.0, \"p99_commit_us\": 5.0, \"stages\": \
             {\"certify\": {\"unit\": \"us\", \"count\": 3, \"mean\": 2.0, \
             \"p50\": 9.0, \"p95\": 4.0, \"p99\": 5.0, \"p999\": 6.0}}}]}";
        assert!(validate_bench7(bad_quantiles)
            .unwrap_err()
            .contains("not monotone"));
    }
}
